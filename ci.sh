#!/usr/bin/env bash
# Tier-1 verification plus a bench smoke pass.
#
#   ./ci.sh            build + test + bench smoke
#   TH_THREADS=4 ./ci.sh   same, with the execution layer at 4 lanes
#
# TH_BENCH_FAST=1 shrinks the Criterion warm-up/measurement budgets so
# the bench pass is a compile-and-run smoke, not a measurement.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --release

# Bench smoke: the thermal kernel comparison and the pipeline report at a
# tiny instruction budget, just to prove both run end to end.
TH_BENCH_FAST=1 cargo bench -p th-bench --bench thermal_sweep
cargo run --release -p th-bench --bin bench_report -- 8000 10

echo "ci.sh: all checks passed"
