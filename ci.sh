#!/usr/bin/env bash
# Tier-1 verification plus a bench smoke pass and a perf-regression guard.
#
#   ./ci.sh            build + test + bench smoke + perf guard
#   TH_THREADS=4 ./ci.sh   same, with the execution layer at 4 lanes
#
# TH_BENCH_FAST=1 shrinks the Criterion warm-up/measurement budgets so
# the bench pass is a compile-and-run smoke, not a measurement.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q --release

# Lint gate: the workspace (including tests, benches, and examples)
# must be clippy-clean.
cargo clippy --workspace --all-targets -- -D warnings

# One pass of the suite with the execution layer at 4 lanes: the
# determinism contract says every result is identical to the 1-lane
# default the first `cargo test` above used.
TH_THREADS=4 cargo test -q --release

# Sweep orchestrator gate: a fault-injected selftest sweep must retry,
# degrade the permanently failing shard without aborting its siblings,
# and — rerun into the same directory with the faults lifted — resume
# every finished shard from its checkpoint and recompute only the
# degraded one.
sweep_dir=$(mktemp -d)/selftest
sweep_bin=$PWD/target/release/sweep
TH_SWEEP_FAULT='selftest-2:1,selftest-5:inf' "$sweep_bin" selftest --dir "$sweep_dir" --quiet
if ! grep -q '"id": "selftest-5", "status": "degraded"' "$sweep_dir"/shards/selftest-5.json; then
    echo "ci.sh: FAIL - fault-injected shard did not degrade" >&2
    exit 1
fi
"$sweep_bin" selftest --dir "$sweep_dir" --quiet
if ! grep -q '"id": "selftest-5", "status": "done"' "$sweep_dir"/shards/selftest-5.json; then
    echo "ci.sh: FAIL - resumed sweep did not recompute the degraded shard" >&2
    exit 1
fi
retries=$(grep -c '"event": "shard_retry"' "$sweep_dir"/telemetry.jsonl || true)
if [ "$retries" -lt 1 ]; then
    echo "ci.sh: FAIL - fault injection produced no visible retries" >&2
    exit 1
fi
rm -rf "$(dirname "$sweep_dir")"
echo "sweep gate: fault-injected selftest degraded, resumed, and recovered"

# Bench smoke: the thermal kernel comparison, just to prove it runs end
# to end.
TH_BENCH_FAST=1 cargo bench -p th-bench --bench thermal_sweep

# Perf-regression guard: rerun bench_report at the committed report's own
# budget in a scratch directory (so the repo's BENCH_pipeline.json is
# never dirtied) and compare the fig8 sequential time against the
# committed number. Wall-clock on shared CI hosts is noisy, so only a
# >1.5x slowdown fails; faster is always fine.
committed=BENCH_pipeline.json
budget=$(grep -o '"budget_insts": *[0-9]*' "$committed" | grep -o '[0-9]*')
rows=$(grep -o '"fig10_rows": *[0-9]*' "$committed" | grep -o '[0-9]*')
guard_dir=$(mktemp -d)
trap 'rm -rf "$guard_dir"' EXIT
bench_bin=$PWD/target/release/bench_report
(cd "$guard_dir" && TH_THREADS=1 "$bench_bin" "$budget" "$rows")
old=$(grep -o '"name": "fig8", "seq_s": *[0-9.]*' "$committed" | grep -o '[0-9.]*$')
new=$(grep -o '"name": "fig8", "seq_s": *[0-9.]*' "$guard_dir/BENCH_pipeline.json" | grep -o '[0-9.]*$')
if ! awk -v old="$old" -v new="$new" 'BEGIN {
    ratio = new / old
    printf "perf guard: fig8 seq %.2fs fresh vs %.2fs committed (%.2fx)\n", new, old, ratio
    exit ratio > 1.5 ? 1 : 0
}'; then
    echo "ci.sh: FAIL - fig8 sequential time regressed more than 1.5x" >&2
    exit 1
fi

# Same guard for the closed-loop co-simulation smoke that bench_report
# just ran (30 intervals of perform/price/heat/react).
old=$(grep -o '"cosim": {"intervals": [0-9]*, "total_s": *[0-9.]*' "$committed" | grep -o '[0-9.]*$')
new=$(grep -o '"cosim": {"intervals": [0-9]*, "total_s": *[0-9.]*' "$guard_dir/BENCH_pipeline.json" | grep -o '[0-9.]*$')
if ! awk -v old="$old" -v new="$new" 'BEGIN {
    ratio = new / old
    printf "perf guard: cosim smoke %.2fs fresh vs %.2fs committed (%.2fx)\n", new, old, ratio
    exit ratio > 1.5 ? 1 : 0
}'; then
    echo "ci.sh: FAIL - closed-loop co-simulation time regressed more than 1.5x" >&2
    exit 1
fi

# Herding guard: the fresh report's *measured* (activity-ledger) top-die
# register-file fraction must not drop below what the modeled
# reconstruction claims — if it does, either the ledger lost recording
# sites or herding stopped steering accesses to the top die.
rf_line=$(grep -o '"unit": "RegFile[^}]*' "$guard_dir/BENCH_pipeline.json" | head -1)
measured=$(echo "$rf_line" | grep -o '"measured_top_die": *[0-9.]*' | grep -o '[0-9.]*$')
modeled=$(echo "$rf_line" | grep -o '"modeled_top_die": *[0-9.]*' | grep -o '[0-9.]*$')
if [ -z "$measured" ] || [ -z "$modeled" ]; then
    echo "ci.sh: FAIL - herding block missing from BENCH_pipeline.json" >&2
    exit 1
fi
if ! awk -v m="$measured" -v o="$modeled" 'BEGIN {
    printf "herding guard: RF top-die %.1f%% measured vs %.1f%% modeled\n", 100*m, 100*o
    exit m + 0.005 < o ? 1 : 0
}'; then
    echo "ci.sh: FAIL - measured RF top-die fraction fell below the modeled baseline" >&2
    exit 1
fi

echo "ci.sh: all checks passed"
