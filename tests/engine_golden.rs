//! Workload-level engine equivalence plus a golden-stats fixture.
//!
//! The equivalence suite in `crates/sim/tests/engine_equivalence.rs`
//! covers synthetic kernels and random programs; this test drives the
//! *real* experiment workloads through both engines on the paper's two
//! headline configurations, and pins one fig8 workload's counters to
//! hard-coded values so an accidental behavior change in **either**
//! engine (not just a divergence between them) fails loudly.

use th_sim::{CoreEngine, SimConfig, SimStats, Simulator};
use th_workloads::{all_workloads, workload_by_name};

fn run(mut cfg: SimConfig, engine: CoreEngine, w: &th_workloads::Workload, budget: u64) -> SimStats {
    cfg.engine = engine;
    Simulator::new(cfg)
        .run_with_warmup(&w.program, budget / 5, budget)
        .expect("runs")
        .stats
}

#[test]
fn engines_agree_on_every_experiment_workload() {
    let budget = 3_000;
    for w in all_workloads() {
        for cfg in [SimConfig::baseline(), SimConfig::three_d(3.93)] {
            let scan = run(cfg, CoreEngine::Scan, &w, budget);
            let event = run(cfg, CoreEngine::Event, &w, budget);
            assert_eq!(scan, event, "engines diverged on {}", w.name);
        }
    }
}

/// gzip-like on the 3D thermal-herding configuration at the fig8 budget.
/// Regenerate by running this test and copying the printed `got` array —
/// but only after deliberately changing pipeline behavior; both engines
/// must always match this fixture bit for bit.
#[test]
fn golden_stats_gzip_like_three_d() {
    const GOLDEN: [u64; 16] =
        [1989, 3200, 3200, 3179, 3176, 266, 0, 534, 266, 14, 4, 0, 1188, 1134, 69, 53206];
    let w = workload_by_name("gzip-like").expect("workload");
    for engine in [CoreEngine::Scan, CoreEngine::Event] {
        let s = run(SimConfig::three_d(3.93), engine, &w, 4_000);
        let got = [
            s.cycles,
            s.committed,
            s.fetched,
            s.dispatched,
            s.issued,
            s.cond_branches,
            s.cond_mispredicts,
            s.loads,
            s.stores,
            s.store_forwards,
            s.dcache_misses,
            s.fetch_stall_cycles,
            s.ifq_full_stalls,
            s.rob_full_stalls,
            s.rs_full_stalls,
            s.rs_occupancy_cycles_per_die.iter().sum::<u64>(),
        ];
        assert_eq!(got, GOLDEN, "golden stats drifted under {engine:?}");
    }
}
