//! Co-simulation determinism: the full closed-loop trace — temperatures,
//! clocks, fetch widths, IPC, and power split per interval — must be
//! bit-identical at any `th-exec` thread count, and zero-activity tails
//! must cool monotonically (the property lives in `th-cosim`'s own
//! tests; here we pin the cross-crate fan-out).

use th_cosim::{CoSimConfig, PolicyKind};
use th_exec::Pool;
use thermal_herding::experiments::dtm;
use thermal_herding::Variant;
use th_workloads::workload_by_name;

/// A scaled-down closed-loop pair, fanned over `pool`.
fn traces_with_pool(pool: &Pool) -> Vec<dtm::DtmTrace> {
    let w = workload_by_name("mpeg2-like").unwrap();
    let cfg = CoSimConfig::sampled(0.02, 20_000, 10);
    pool.map(&[Variant::ThreeDNoTh, Variant::ThreeD], |&v| {
        dtm::run_variant_scaled(v, &w, 376.0, 10, PolicyKind::Dvfs.build(376.0), cfg)
    })
}

#[test]
fn closed_loop_trace_is_bit_identical_across_thread_counts() {
    let seq = traces_with_pool(&Pool::new(1));
    let par = traces_with_pool(&Pool::new(4));

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.variant, b.variant);
        assert_eq!(
            a.report.intervals.len(),
            b.report.intervals.len(),
            "{}: interval counts differ",
            a.variant
        );
        for (i, (x, y)) in a.report.intervals.iter().zip(&b.report.intervals).enumerate() {
            assert_eq!(x.committed, y.committed, "{} interval {i}: committed", a.variant);
            assert_eq!(x.cycles, y.cycles, "{} interval {i}: cycles", a.variant);
            assert_eq!(x.fetch_width, y.fetch_width, "{} interval {i}: fetch width", a.variant);
            for (name, u, v) in [
                ("t_s", x.t_s, y.t_s),
                ("peak_k", x.peak_k, y.peak_k),
                ("clock_ghz", x.clock_ghz, y.clock_ghz),
                ("dynamic_w", x.dynamic_w, y.dynamic_w),
                ("clock_w", x.clock_w, y.clock_w),
                ("leakage_w", x.leakage_w, y.leakage_w),
            ] {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{} interval {i}: {name} differs: {u} vs {v}",
                    a.variant
                );
            }
            assert_eq!(x.die_peak_k.len(), y.die_peak_k.len());
            for (d, (u, v)) in x.die_peak_k.iter().zip(&y.die_peak_k).enumerate() {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{} interval {i}: die {d} peak differs",
                    a.variant
                );
            }
        }
        // Final per-unit state must match too (order and bits).
        assert_eq!(a.report.unit_peaks_k.len(), b.report.unit_peaks_k.len());
        for ((ua, ta), (ub, tb)) in a.report.unit_peaks_k.iter().zip(&b.report.unit_peaks_k) {
            assert_eq!(ua, ub);
            assert_eq!(ta.to_bits(), tb.to_bits(), "{}: unit {ua:?} peak differs", a.variant);
        }
        for ((ua, wa), (ub, wb)) in a.report.unit_leakage_w.iter().zip(&b.report.unit_leakage_w) {
            assert_eq!(ua, ub);
            assert_eq!(wa.to_bits(), wb.to_bits(), "{}: unit {ua:?} leakage differs", a.variant);
        }
    }
}
