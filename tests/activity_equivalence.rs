//! Ledger-vs-modeled pricing equivalence (the `TH_ACTIVITY` contract).
//!
//! The measured activity ledger replaces the statistical reconstruction
//! on the default pricing path; the reconstruction survives as a
//! reference oracle. The two must stay close on the experiment
//! workloads: the only *systematic* difference is the capture-fraction
//! heuristic (the modeled path books safely-mispredicted low results as
//! partially gated, where the ledger knows exactly which accesses were
//! gated), plus small documented deltas in D-cache/scheduler/LSQ
//! bookkeeping (see DESIGN.md §11). Empirically the total dynamic-power
//! gap is ≤ ~5 % on every workload (worst: `yacr2`-like and `blast`-like
//! at 5.1 %, where mispredicted-width results are common; most workloads
//! sit below 0.5 %). The bound asserted here is 8 % — headroom over the
//! measured worst case without letting a real regression through.

use thermal_herding::{run_chip, Variant};
use th_power::{ActivitySource, PowerModel};
use th_sim::SimStats;
use th_stack3d::ActivityMatrix;
use th_workloads::all_workloads;

/// Documented tolerance between ledger-priced and modeled dynamic power.
const DYNAMIC_W_TOLERANCE: f64 = 0.08;

#[test]
fn ledger_and_modeled_watts_agree_on_experiment_workloads() {
    let model = PowerModel::new();
    let runs = th_exec::pool().map(&all_workloads(), |w| {
        run_chip(Variant::ThreeD, w, 40_000).expect("workload runs")
    });
    for r in &runs {
        let mut ledger_cfg = r.variant.power_config();
        ledger_cfg.activity = ActivitySource::Ledger;
        let mut modeled_cfg = ledger_cfg;
        modeled_cfg.activity = ActivitySource::Modeled;
        assert_eq!(
            ledger_cfg.resolve_activity(&r.chip_stats),
            ActivitySource::Ledger,
            "{}: run recorded no ledger",
            r.workload
        );
        let ledger = model.compute(&r.chip_stats, r.cycles(), &ledger_cfg);
        let modeled = model.compute(&r.chip_stats, r.cycles(), &modeled_cfg);
        let rel = (ledger.dynamic_w() - modeled.dynamic_w()).abs() / modeled.dynamic_w();
        assert!(
            rel < DYNAMIC_W_TOLERANCE,
            "{}: ledger {:.2} W vs modeled {:.2} W ({:.1}% apart)",
            r.workload,
            ledger.dynamic_w(),
            modeled.dynamic_w(),
            100.0 * rel
        );
    }
}

#[test]
fn empty_ledger_falls_back_to_the_modeled_oracle() {
    // Hand-built stats (no simulation) carry no ledger; pricing must
    // silently use the reconstruction instead of returning zeros.
    let stats = SimStats { cycles: 1000, rf_reads_full: 500, ..Default::default() };
    let cfg = Variant::ThreeD.power_config();
    assert_eq!(cfg.resolve_activity(&stats), ActivitySource::Modeled);
}

#[test]
fn ledger_merge_is_associative_and_commutative_under_fanout() {
    // The experiment drivers fan runs out over the th-exec pool and fold
    // the per-run stats in reduction order; any grouping or order must
    // produce the same chip-level ledger.
    let runs = th_exec::pool().map(&all_workloads(), |w| {
        run_chip(Variant::ThreeD, w, 20_000).expect("workload runs")
    });
    let ledgers: Vec<&ActivityMatrix> = runs.iter().map(|r| &r.core_stats.activity).collect();
    assert!(ledgers.len() >= 3, "need at least three runs to exercise grouping");

    let fold = |order: &[usize]| {
        let mut acc = ActivityMatrix::new();
        for &i in order {
            acc.merge(ledgers[i]);
        }
        acc
    };
    let forward = fold(&(0..ledgers.len()).collect::<Vec<_>>());
    let reverse = fold(&(0..ledgers.len()).rev().collect::<Vec<_>>());
    assert_eq!(forward, reverse, "merge is not commutative");

    // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c), folded pairwise from both ends.
    let mut left = ledgers[0].clone();
    left.merge(ledgers[1]);
    left.merge(ledgers[2]);
    let mut bc = ledgers[1].clone();
    bc.merge(ledgers[2]);
    let mut right = ledgers[0].clone();
    right.merge(&bc);
    assert_eq!(left, right, "merge is not associative");
}
