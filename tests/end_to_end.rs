//! End-to-end integration tests: assemble → simulate → price power →
//! solve thermals, across crates.

use th_isa::parse_asm;
use th_sim::{SimConfig, Simulator};
use th_workloads::{all_workloads, workload_by_name};
use thermal_herding::{run_chip, thermal_analysis, Variant};

#[test]
fn asm_text_to_timing_pipeline() {
    let p = parse_asm(
        "
        .data v 3, 1, 4, 1, 5, 9, 2, 6
            la   x5, v
            li   x6, 8
            li   x10, 0
        loop:
            ld   x1, 0(x5)
            add  x10, x10, x1
            addi x5, x5, 8
            addi x6, x6, -1
            bne  x6, x0, loop
            halt
        ",
    )
    .expect("assembles");
    let r = Simulator::new(SimConfig::baseline()).run(&p, 1_000).expect("runs");
    // 3 setup (li/li are 1 inst each, la is 4) + 8×5 loop + halt.
    assert_eq!(r.stats.committed, 47);
    assert!(r.stats.cycles > 0);
}

#[test]
fn timing_matches_functional_instruction_count() {
    // The timing model must commit exactly the instructions the golden
    // model executes, for every bundled workload.
    for w in all_workloads().into_iter().take(6) {
        let mut m = th_isa::Machine::new(&w.program);
        let summary = m.run(w.inst_budget).expect("functional run");
        let r = Simulator::new(SimConfig::baseline())
            .run(&w.program, w.inst_budget)
            .expect("timing run");
        assert_eq!(
            r.stats.committed, summary.instructions,
            "{}: timing committed {} vs functional {}",
            w.name, r.stats.committed, summary.instructions
        );
    }
}

#[test]
fn every_variant_runs_every_suite_representative() {
    for name in ["gzip-like", "swim-like", "mpeg2-like", "susan-like", "treeadd-like", "blast-like"]
    {
        let w = workload_by_name(name).unwrap();
        for &variant in Variant::figure8() {
            let r = run_chip(variant, &w, 60_000).expect("runs");
            assert!(r.ipc() > 0.0, "{name} at {variant}: zero IPC");
            assert!(r.power.total_w() > 30.0 && r.power.total_w() < 150.0);
        }
    }
}

#[test]
fn chip_to_thermal_round_trip() {
    let w = workload_by_name("gzip-like").unwrap();
    for variant in [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD] {
        let run = run_chip(variant, &w, 60_000).expect("runs");
        let t = thermal_analysis(&run, 20).expect("solves");
        assert!(t.peak_k() > th_thermal::AMBIENT_K);
        assert!(t.peak_k() < 460.0, "{variant}: {:.1} K", t.peak_k());
        // Hotter-than-ambient cells exist on every active die.
        let dies = if variant.is_three_d() { 4 } else { 1 };
        for die in 0..dies {
            let layer = t.map.layer_of_power_index(die).expect("active layer");
            assert!(t.map.layer_max(layer) > th_thermal::AMBIENT_K + 1.0);
        }
    }
}

#[test]
fn herding_only_ever_reduces_power() {
    // For every workload, 3D+TH must cost no more than 3D-noTH, which
    // must cost no more than planar.
    for w in all_workloads().into_iter().take(8) {
        let base = run_chip(Variant::Base, &w, 50_000).unwrap().power.total_w();
        let noth = run_chip(Variant::ThreeDNoTh, &w, 50_000).unwrap().power.total_w();
        let th = run_chip(Variant::ThreeD, &w, 50_000).unwrap().power.total_w();
        assert!(noth < base, "{}: 3D {noth:.1} !< planar {base:.1}", w.name);
        assert!(th <= noth + 0.5, "{}: TH {th:.1} > noTH {noth:.1}", w.name);
    }
}

#[test]
fn warmup_reduces_cold_start_artifacts() {
    let w = workload_by_name("susan-like").unwrap();
    let cold = Simulator::new(SimConfig::baseline()).run(&w.program, w.inst_budget).unwrap();
    let warm = Simulator::new(SimConfig::baseline())
        .run_with_warmup(&w.program, w.inst_budget / 5, w.inst_budget)
        .unwrap();
    assert!(
        warm.stats.dram_per_kilo_inst() < cold.stats.dram_per_kilo_inst(),
        "warm {} !< cold {}",
        warm.stats.dram_per_kilo_inst(),
        cold.stats.dram_per_kilo_inst()
    );
    assert!(warm.ipc() >= cold.ipc());
}
