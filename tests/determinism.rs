//! Parallel determinism: the experiment drivers must produce
//! byte-identical results at any thread count. The fan-out layer claims
//! work dynamically but reduces in item order, and the red-black thermal
//! kernel's color passes are order-independent, so nothing downstream may
//! observe the thread count.

use th_exec::Pool;
use thermal_herding::experiments::{fig8, fig9};

const BUDGET: u64 = 15_000;

#[test]
fn fig8_is_bit_identical_across_thread_counts() {
    let seq = fig8::run_with_pool(BUDGET, &Pool::new(1));
    let par = fig8::run_with_pool(BUDGET, &Pool::new(4));

    assert_eq!(seq.rows.len(), par.rows.len());
    for (a, b) in seq.rows.iter().zip(&par.rows) {
        assert_eq!(a.workload, b.workload);
        for i in 0..5 {
            assert_eq!(
                a.ipc[i].to_bits(),
                b.ipc[i].to_bits(),
                "{}: IPC differs at point {i}: {} vs {}",
                a.workload,
                a.ipc[i],
                b.ipc[i]
            );
            assert_eq!(
                a.ipns[i].to_bits(),
                b.ipns[i].to_bits(),
                "{}: IPns differs at point {i}",
                a.workload
            );
        }
    }
    for (a, b) in seq.groups.iter().zip(&par.groups) {
        assert_eq!(a.suite, b.suite);
        for i in 0..5 {
            assert_eq!(a.ipc[i].to_bits(), b.ipc[i].to_bits());
            assert_eq!(a.ipns[i].to_bits(), b.ipns[i].to_bits());
        }
    }
    assert_eq!(
        seq.width_accuracy.to_bits(),
        par.width_accuracy.to_bits(),
        "width accuracy differs: {} vs {}",
        seq.width_accuracy,
        par.width_accuracy
    );
}

#[test]
fn fig9_power_is_bit_identical_across_thread_counts() {
    let seq = fig9::run_with_pool(BUDGET, &Pool::new(1));
    let par = fig9::run_with_pool(BUDGET, &Pool::new(3));

    for (a, b) in seq.bars.iter().zip(&par.bars) {
        assert_eq!(a.variant, b.variant);
        assert_eq!(
            a.total_w().to_bits(),
            b.total_w().to_bits(),
            "{}: total power differs",
            a.variant
        );
    }
    for (a, b) in seq.savings.iter().zip(&par.savings) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.base_w.to_bits(), b.base_w.to_bits(), "{}", a.workload);
        assert_eq!(a.three_d_w.to_bits(), b.three_d_w.to_bits(), "{}", a.workload);
    }
}
