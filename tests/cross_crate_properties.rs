//! Cross-crate property tests: invariants that span the simulator, the
//! power model, and the thermal solver.

use proptest::prelude::*;
use th_isa::{Assembler, Machine, Reg};
use th_sim::{SimConfig, Simulator};
use th_workloads::workload_by_name;
use thermal_herding::{run_chip, thermal_analysis_scaled, Variant};

/// Builds a random straight-line program that the proptest strategies
/// drive through both the golden model and the timing model.
fn random_program(ops: &[(u8, u8, u8, i32)]) -> th_isa::Program {
    let mut a = Assembler::new(0x1000);
    a.data_zeros("buf", 4096);
    a.la(Reg::X30, "buf");
    for &(kind, rd, rs, imm) in ops {
        let rd = Reg::x(1 + rd % 28);
        let rs = Reg::x(1 + rs % 28);
        let imm = imm % 1000;
        match kind % 8 {
            0 => a.addi(rd, rs, imm),
            1 => a.add(rd, rs, rd),
            2 => a.xor(rd, rs, rd),
            3 => a.slli(rd, rs, (imm.unsigned_abs() % 63) as i32),
            4 => a.mul(rd, rs, rd),
            5 => a.sd(rs, (imm.abs() % 500) * 8, Reg::X30),
            6 => a.ld(rd, (imm.abs() % 500) * 8, Reg::X30),
            _ => a.slt(rd, rs, rd),
        }
    }
    a.halt();
    a.assemble().expect("random program assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The timing model commits exactly the golden model's instruction
    /// stream and leaves identical architectural results, for random
    /// programs, on every design point.
    #[test]
    fn timing_model_is_architecturally_transparent(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i32>()), 1..120)
    ) {
        let program = random_program(&ops);
        let mut golden = Machine::new(&program);
        let summary = golden.run(100_000).unwrap();
        prop_assert!(summary.halted);

        for cfg in [SimConfig::baseline(), SimConfig::thermal_herding(), SimConfig::three_d(3.93)] {
            let r = Simulator::new(cfg).run(&program, 100_000).unwrap();
            prop_assert_eq!(r.stats.committed, summary.instructions);
        }
    }

    /// Width-misprediction penalties may slow the pipeline but never
    /// change the committed instruction count, and herding never *adds*
    /// IPC beyond the penalty-free baseline at the same clock.
    #[test]
    fn herding_costs_cycles_not_correctness(
        ops in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i32>()), 1..100)
    ) {
        let program = random_program(&ops);
        let base = Simulator::new(SimConfig::baseline()).run(&program, 100_000).unwrap();
        let th = Simulator::new(SimConfig::thermal_herding()).run(&program, 100_000).unwrap();
        prop_assert_eq!(base.stats.committed, th.stats.committed);
        prop_assert!(th.stats.cycles >= base.stats.cycles,
            "herding produced a faster pipeline: {} < {}", th.stats.cycles, base.stats.cycles);
    }
}

/// Thermal linearity across the whole stack: scaling a chip's power
/// scales every cell's rise above ambient by the same factor.
#[test]
fn thermal_rise_is_linear_in_power() {
    let w = workload_by_name("gzip-like").unwrap();
    let r = run_chip(Variant::ThreeD, &w, 40_000).unwrap();
    let a = thermal_analysis_scaled(&r, 16, 1.0).unwrap();
    let b = thermal_analysis_scaled(&r, 16, 2.0).unwrap();
    let ambient = th_thermal::AMBIENT_K;
    for (ta, tb) in a.map.temps().iter().zip(b.map.temps()) {
        let (ra, rb) = (ta - ambient, tb - ambient);
        assert!((rb - 2.0 * ra).abs() < 1e-3 * (1.0 + rb.abs()), "{ta} vs {tb}");
    }
}

/// Power accounting: the per-unit dynamic breakdown plus clock and
/// leakage always reproduces the reported total.
#[test]
fn power_breakdown_sums_to_total() {
    for name in ["gzip-like", "mcf-like", "mpeg2-like"] {
        let w = workload_by_name(name).unwrap();
        for variant in [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD] {
            let r = run_chip(variant, &w, 40_000).unwrap();
            let sum: f64 = r.power.per_unit.iter().map(|(_, w)| w).sum::<f64>()
                + r.power.clock_w
                + r.power.leakage_w;
            assert!((sum - r.power.total_w()).abs() < 1e-9);
        }
    }
}
