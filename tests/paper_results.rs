//! The paper's headline numbers, asserted as regression tests.
//!
//! These use reduced instruction budgets so the whole file runs in
//! ~a minute in release mode; the bands are therefore looser than the
//! full-budget numbers reported by the `fig8`/`fig9`/`fig10` binaries
//! (recorded in EXPERIMENTS.md). They pin the *shape*: who wins, by
//! roughly what factor, and where the extremes sit.

use th_workloads::workload_by_name;
use thermal_herding::{experiments, run_chip, thermal_analysis, Variant};

/// §5.1.1 / Table 2: a 47.9 % clock-frequency increase.
#[test]
fn frequency_gain() {
    let t2 = experiments::table2::run();
    assert!(
        (t2.frequency.gain() - 0.479).abs() < 0.01,
        "clock gain {:.3} (paper 0.479)",
        t2.frequency.gain()
    );
    let sched = t2.table.row("Scheduler").unwrap();
    assert!((sched.improvement_pct() - 32.0).abs() < 2.0);
    let alu = t2.table.row("ALU + Bypass").unwrap();
    assert!((alu.improvement_pct() - 36.0).abs() < 2.0);
}

/// Figure 8(c) extremes: `mcf` at the bottom (paper 1.07×), the best
/// case far above (paper 1.77×), and compute-bound media near the clock
/// gain (≈1.48×).
#[test]
fn speedup_extremes() {
    let budget = 250_000;
    let speedup = |name: &str| {
        let w = workload_by_name(name).unwrap();
        let b = run_chip(Variant::Base, &w, budget).unwrap();
        let d = run_chip(Variant::ThreeD, &w, budget).unwrap();
        d.ipns() / b.ipns()
    };
    let mcf = speedup("mcf-like");
    assert!((1.02..1.15).contains(&mcf), "mcf speedup {mcf:.2} (paper 1.07)");
    let mpeg2 = speedup("mpeg2-like");
    assert!((1.35..1.60).contains(&mpeg2), "mpeg2 speedup {mpeg2:.2}");
    let perimeter = speedup("perimeter-like");
    assert!(perimeter > 1.5, "best-case speedup {perimeter:.2} (paper max 1.77)");
    assert!(perimeter > mpeg2 && mpeg2 > mcf, "ordering violated");
}

/// Figure 9: 90 W baseline, ≈19 % 3D reduction, ≈29 % with herding.
#[test]
fn power_distribution() {
    let w = workload_by_name("mpeg2-like").unwrap();
    let base = run_chip(Variant::Base, &w, u64::MAX).unwrap().power.total_w();
    let noth = run_chip(Variant::ThreeDNoTh, &w, u64::MAX).unwrap().power.total_w();
    let th = run_chip(Variant::ThreeD, &w, u64::MAX).unwrap().power.total_w();
    assert!((base - 90.0).abs() < 2.0, "baseline {base:.1} W (paper 90)");
    assert!((noth - 72.7).abs() < 3.0, "3D {noth:.1} W (paper 72.7)");
    assert!((th - 64.3).abs() < 3.0, "3D+TH {th:.1} W (paper 64.3)");
}

/// §5.2: per-application savings between roughly 15 % and 30 %, with the
/// compute-intensive image kernel near the top and the memory-bound
/// mixed-width kernel near the bottom.
#[test]
fn power_savings_range() {
    let saving = |name: &str| {
        let w = workload_by_name(name).unwrap();
        let b = run_chip(Variant::Base, &w, u64::MAX).unwrap().power.total_w();
        let d = run_chip(Variant::ThreeD, &w, u64::MAX).unwrap().power.total_w();
        1.0 - d / b
    };
    let susan = saving("susan-like");
    let yacr2 = saving("yacr2-like");
    assert!((0.25..0.34).contains(&susan), "susan saving {susan:.3} (paper 0.30)");
    assert!((0.12..0.22).contains(&yacr2), "yacr2 saving {yacr2:.3} (paper 0.15)");
    assert!(susan > yacr2 + 0.05, "savings spread collapsed");
}

/// Figure 10: planar ≈360 K at the scheduler; stacking adds ≈+17 K
/// without herding and less with it.
#[test]
fn thermal_deltas() {
    let w = workload_by_name("mpeg2-like").unwrap();
    let rows = 24;
    let base = thermal_analysis(&run_chip(Variant::Base, &w, u64::MAX).unwrap(), rows).unwrap();
    let noth =
        thermal_analysis(&run_chip(Variant::ThreeDNoTh, &w, u64::MAX).unwrap(), rows).unwrap();
    let th = thermal_analysis(&run_chip(Variant::ThreeD, &w, u64::MAX).unwrap(), rows).unwrap();

    assert!((base.peak_k() - 360.0).abs() < 5.0, "planar peak {:.1} (paper 360)", base.peak_k());
    let d_noth = noth.peak_k() - base.peak_k();
    let d_th = th.peak_k() - base.peak_k();
    assert!((12.0..25.0).contains(&d_noth), "3D increase {d_noth:.1} K (paper +17)");
    assert!((7.0..18.0).contains(&d_th), "3D+TH increase {d_th:.1} K (paper +12)");
    assert!(d_th < d_noth, "herding must reduce the increase");
}

/// §3.8: ~97 % of instructions have their widths correctly predicted.
#[test]
fn width_prediction_accuracy() {
    let mut correct = 0u64;
    let mut total = 0u64;
    for name in ["gzip-like", "mpeg2-like", "susan-like", "crafty-like", "swalign-like"] {
        let w = workload_by_name(name).unwrap();
        let r = run_chip(Variant::ThreeD, &w, 200_000).unwrap();
        correct += r.core_stats.width_pred.correct_low + r.core_stats.width_pred.correct_full;
        total += r.core_stats.width_pred.predictions;
    }
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.94, "width accuracy {acc:.3} (paper ~0.97)");
}

/// §5.3: the iso-power 4×-density stack runs far hotter than any real
/// configuration (paper: 418 K vs 377 K).
#[test]
fn iso_power_density_study() {
    let w = workload_by_name("mpeg2-like").unwrap();
    let base = run_chip(Variant::Base, &w, u64::MAX).unwrap();
    let mut iso = run_chip(Variant::ThreeDNoTh, &w, u64::MAX).unwrap();
    let noth_peak = thermal_analysis(&iso, 24).unwrap().peak_k();
    iso.power = base.power.clone();
    iso.chip_stats = base.chip_stats.clone();
    let iso_peak =
        thermal_herding::thermal_analysis_scaled(&iso, 24, 1.0).unwrap().peak_k();
    assert!(
        iso_peak > noth_peak + 10.0,
        "iso-power {iso_peak:.1} K should far exceed 3D-noTH {noth_peak:.1} K"
    );
    assert!(iso_peak > 390.0, "iso-power peak {iso_peak:.1} K (paper 418)");
}
