//! Render ASCII thermal maps of every die for one workload on one design
//! point — the visual counterpart of the paper's Figure 10.
//!
//! ```text
//! cargo run --release -p thermal-herding --example hotspot_map [workload] [base|3d|3d-noth]
//! ```

use th_workloads::workload_by_name;
use thermal_herding::{run_chip, thermal_analysis, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "mpeg2-like".into());
    let variant = match std::env::args().nth(2).as_deref() {
        Some("base") => Variant::Base,
        Some("3d-noth") => Variant::ThreeDNoTh,
        _ => Variant::ThreeD,
    };
    let w = workload_by_name(&workload)
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;

    println!("simulating {} on {} ...", w.name, variant);
    let run = run_chip(variant, &w, u64::MAX)?;
    let analysis = thermal_analysis(&run, 40)?;
    let map = &analysis.map;

    let t_min = map.temps().iter().copied().fold(f64::INFINITY, f64::min);
    let t_max = map.max_temp();
    println!(
        "chip power {:.1} W; temperature range {:.1}..{:.1} K (' ' cold .. '@' hot)\n",
        run.power.total_w(),
        t_min,
        t_max
    );

    let dies = if variant.is_three_d() { 4 } else { 1 };
    for die in 0..dies {
        let layer = map
            .layer_of_power_index(die)
            .expect("every die has an active layer");
        // Scale the ramp to this layer's own range so intra-die structure
        // is visible (the sink-to-die drop would otherwise flatten it).
        let (lo, hi) = (map.layer_min(layer), map.layer_max(layer));
        println!("die {die} (active layer {layer}, {lo:.1}..{hi:.1} K):");
        println!("{}", map.render_layer(layer, lo, hi));
    }

    println!("hottest blocks:");
    let mut peaks = analysis.unit_peaks.clone();
    peaks.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (unit, t) in peaks.iter().take(6) {
        println!("  {:<10} {:>6.1} K", unit.label(), t);
    }
    Ok(())
}
