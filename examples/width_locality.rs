//! Survey the value-width phenomena the paper's techniques exploit,
//! across every bundled workload: operand width distributions (§3),
//! width-prediction accuracy (§3.8), partial-address-memoization hit
//! rates (§3.5), and the L1-D partial value encoding mix (§3.6).
//!
//! ```text
//! cargo run --release -p thermal-herding --example width_locality
//! ```

use th_sim::{SimConfig, Simulator};
use th_width::UpperEncoding;
use th_workloads::all_workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7}",
        "workload", "low-int%", "wpred%", "unsafe%", "pam%", "zeros", "ones", "addr", "expl"
    );
    let cfg = SimConfig::thermal_herding();
    for w in all_workloads() {
        let r = Simulator::new(cfg)
            .run_with_warmup(&w.program, w.inst_budget / 5, w.inst_budget)?;
        let s = &r.stats;
        let enc = &s.dcache_encodings;
        let enc_total = enc.total().max(1) as f64;
        let frac = |e: UpperEncoding| 100.0 * enc.counts[e.code() as usize] as f64 / enc_total;
        println!(
            "{:<16} {:>8.1}% {:>8.1}% {:>8.2}% {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            w.name,
            100.0 * s.low_width_fraction(),
            100.0 * s.width_pred.accuracy(),
            100.0 * s.width_pred.unsafe_rate(),
            100.0 * s.pam.match_rate(),
            frac(UpperEncoding::Zeros),
            frac(UpperEncoding::Ones),
            frac(UpperEncoding::AddrUpper),
            frac(UpperEncoding::Explicit),
        );
    }
    println!(
        "\nlow-int%  = integer operations whose operands and result fit in 16 bits"
    );
    println!("wpred%    = width predictor accuracy (paper §3.8: ~97%)");
    println!("unsafe%   = predictions that stalled the pipeline (predicted low, was full)");
    println!("pam%      = LSQ address broadcasts herded to the top die (§3.5)");
    println!("zeros/ones/addr/expl = L1-D partial value encoding mix on predicted-low loads (§3.6)");
    Ok(())
}
