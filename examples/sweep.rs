//! The sweep orchestrator end to end: run a fault-injected selftest
//! sweep, watch shards retry and degrade, kill nothing — then "resume"
//! the same directory and see every finished shard load from its
//! checkpoint instead of recomputing.
//!
//! ```text
//! cargo run --release -p th-sweep --example sweep [run-dir]
//! ```
//!
//! The run directory (default: a fresh temp dir) keeps the manifest, the
//! `telemetry.jsonl` event stream, and one checkpoint per shard —
//! inspect them afterwards. `TH_THREADS` bounds the fan-out; the merged
//! metrics are bit-identical at any thread count.

use std::path::PathBuf;
use th_sweep::{presets, run_sweep, FaultPlan, SweepOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("th-sweep-example-{}", std::process::id()))
    });
    let pool = th_exec::Pool::new(th_exec::threads_from_env().max(1));
    let spec = presets::selftest();

    // First pass: shard 2 fails once then recovers (one retry visible in
    // the telemetry); shard 5 fails every attempt — including via a
    // panic — and is recorded degraded without aborting its siblings.
    let mut opts = SweepOptions {
        fault: FaultPlan::parse("selftest-2:1,selftest-5:inf!").expect("valid plan"),
        backoff: std::time::Duration::from_millis(1),
        verbose: true,
        ..SweepOptions::default()
    };
    println!("first pass (faults injected into selftest-2 and selftest-5):");
    let first = run_sweep(&spec, &dir, &opts, &pool)?;
    for r in &first.records {
        println!(
            "  {:<12} {:<8} attempts={} {}",
            r.id,
            if r.error.is_some() { "degraded" } else { "done" },
            r.attempts,
            r.error.as_deref().unwrap_or(""),
        );
    }
    println!("  -> {} done, {} degraded\n", first.done(), first.degraded());

    // Second pass, same directory, faults lifted: the seven finished
    // shards resume from their checkpoints; only the degraded one runs.
    opts.fault = FaultPlan::default();
    println!("second pass (same directory, faults lifted):");
    let second = run_sweep(&spec, &dir, &opts, &pool)?;
    println!(
        "  -> resumed {} shard(s) from checkpoints, recomputed {}, all {} done",
        second.resumed,
        second.executed,
        second.done(),
    );

    // The resumed metrics are the checkpointed bits, exactly.
    for (a, b) in first.records.iter().zip(&second.records) {
        if a.error.is_none() {
            assert_eq!(a.metrics, b.metrics, "{} changed across resume", a.id);
        }
    }
    println!("  -> resumed metrics are bit-identical to the first pass");
    println!("\nrun directory: {}", dir.display());
    Ok(())
}
