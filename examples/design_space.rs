//! Walk the design space around the paper's 4-die point: how the clock
//! gain, chip power, and peak temperature respond to the reservation
//! station size, the width-predictor size, and the heat-sink quality.
//! This is the "what would I change if I adopted this library" tour.
//!
//! ```text
//! cargo run --release -p thermal-herding --example design_space
//! ```

use th_sim::{SimConfig, Simulator};
use th_stack3d::{derive_frequency, BlockDelayModel};
use th_workloads::workload_by_name;
use thermal_herding::{run_chip, thermal_analysis, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = derive_frequency(&BlockDelayModel::new());
    println!(
        "critical-loop frequency derivation: {:.2} GHz -> {:.2} GHz (+{:.1}%)\n",
        plan.base_ghz,
        plan.three_d_ghz,
        100.0 * plan.gain()
    );

    // --- RS size sweep at the 3D point (Table 1 uses 32 entries). ---
    let w = workload_by_name("mpeg2-like").expect("exists");
    println!("RS size sweep (3D, {}):", w.name);
    println!("{:>8} {:>8} {:>14}", "entries", "IPC", "top-die allocs");
    for rs_size in [16usize, 32, 64] {
        let mut cfg = SimConfig::three_d(plan.three_d_ghz);
        cfg.core.rs_size = rs_size;
        let r = Simulator::new(cfg)
            .run_with_warmup(&w.program, w.inst_budget / 5, w.inst_budget)?;
        println!(
            "{rs_size:>8} {:>8.2} {:>13.1}%",
            r.ipc(),
            100.0 * r.stats.rs_top_die_fraction()
        );
    }

    // --- Width predictor size at the 3D point. ---
    println!("\nwidth predictor sweep (3D, {}):", w.name);
    println!("{:>8} {:>10} {:>10}", "entries", "accuracy", "IPC");
    for entries in [512usize, 4096, 32768] {
        let mut cfg = SimConfig::three_d(plan.three_d_ghz);
        cfg.herding.predictor_entries = entries;
        let r = Simulator::new(cfg)
            .run_with_warmup(&w.program, w.inst_budget / 5, w.inst_budget)?;
        println!(
            "{entries:>8} {:>9.1}% {:>10.2}",
            100.0 * r.stats.width_pred.accuracy(),
            r.ipc()
        );
    }

    // --- Frequency-for-power trade (§5.3, Black et al.): run the 3D
    //     design at reduced clocks and watch power and heat fall. ---
    println!("\nfrequency-for-power trade (3D+TH, {}):", w.name);
    println!("{:>10} {:>10} {:>10} {:>10}", "clock", "inst/ns", "power", "peak K");
    for scale in [1.0, 0.9, 0.8] {
        let clock = plan.three_d_ghz * scale;
        let mut run = run_chip(Variant::ThreeD, &w, u64::MAX)?;
        // Reprice the same activity at the scaled clock.
        let mut pcfg = Variant::ThreeD.power_config();
        pcfg.clock_ghz = clock;
        run.power =
            th_power::PowerModel::new().compute(&run.chip_stats, run.cycles(), &pcfg);
        run.clock_ghz = clock;
        let t = thermal_analysis(&run, 32)?;
        println!(
            "{:>7.2}GHz {:>10.2} {:>9.1}W {:>10.1}",
            clock,
            run.ipc() * clock,
            run.power.total_w(),
            t.peak_k()
        );
    }
    Ok(())
}
