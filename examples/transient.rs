//! Transient thermal behaviour: how fast the stack heats up when a hot
//! program phase starts — the time scale dynamic thermal management has
//! to work with. Compares the planar baseline, 3D without herding, and
//! 3D with herding on the peak-power workload.
//!
//! ```text
//! cargo run --release -p thermal-herding --example transient [workload]
//! ```

use th_workloads::workload_by_name;
use thermal_herding::{run_chip, transient_heatup, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = std::env::args().nth(1).unwrap_or_else(|| "mpeg2-like".into());
    let w = workload_by_name(&workload)
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;

    let dt = 0.05; // 50 ms steps
    let steps = 60; // 3 s of heat-up

    println!("heat-up traces running {} (50 ms implicit-Euler steps):\n", w.name);
    let mut traces = Vec::new();
    for variant in [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD] {
        let run = run_chip(variant, &w, u64::MAX)?;
        let trace = transient_heatup(&run, 24, dt, steps)?;
        traces.push((variant, run.power.total_w(), trace));
    }

    println!("{:>8} {:>12} {:>12} {:>12}", "time", "Base", "3D-noTH", "3D+TH");
    for i in (0..=steps).step_by(5) {
        print!("{:>6.2} s", traces[0].2[i].0);
        for (_, _, trace) in &traces {
            print!(" {:>10.1} K", trace[i].1);
        }
        println!();
    }

    println!();
    for (variant, power, trace) in &traces {
        let end = trace.last().unwrap().1;
        let start = trace[0].1;
        // Time to cover 90% of the rise.
        let target = start + 0.9 * (end - start);
        let t90 = trace
            .iter()
            .find(|(_, t)| *t >= target)
            .map(|(time, _)| *time)
            .unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>5.1} W: {:.1} K -> {:.1} K, 90% of the rise in {:.2} s",
            variant.label(),
            power,
            start,
            end,
            t90
        );
    }
    println!(
        "\nThe herded 3D design heats to a lower ceiling; DTM headroom scales\n\
         with the gap to the no-herding stack."
    );
    Ok(())
}
