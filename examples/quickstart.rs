//! Quickstart: assemble a small TH64 program, run it on the planar
//! baseline and the full 3D Thermal Herding processor, and compare
//! performance, power, and peak temperature.
//!
//! ```text
//! cargo run --release -p thermal-herding --example quickstart
//! ```

use th_isa::parse_asm;
use th_sim::{SimConfig, Simulator};
use th_workloads::{workload_by_name, Workload};
use thermal_herding::{run_chip, thermal_analysis, Variant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The simulator runs real programs: write one in TH64 asm. ---
    let program = parse_asm(
        "
        # dot product of two small integer vectors
        .data a 1, 2, 3, 4, 5, 6, 7, 8
        .data b 8, 7, 6, 5, 4, 3, 2, 1
            la   x5, a
            la   x6, b
            li   x7, 8
            li   x10, 0
        loop:
            ld   x1, 0(x5)
            ld   x2, 0(x6)
            mul  x3, x1, x2
            add  x10, x10, x3
            addi x5, x5, 8
            addi x6, x6, 8
            addi x7, x7, -1
            bne  x7, x0, loop
            halt
        ",
    )?;
    let result = Simulator::new(SimConfig::baseline()).run(&program, 10_000)?;
    println!(
        "dot-product demo: {} instructions in {} cycles (IPC {:.2})\n",
        result.stats.committed,
        result.stats.cycles,
        result.ipc()
    );

    // --- 2. The paper's evaluation: a workload on two design points. ---
    let workload: Workload =
        workload_by_name("mpeg2-like").expect("bundled workload exists");
    println!("running {} on Base and 3D ...", workload.name);
    let base = run_chip(Variant::Base, &workload, u64::MAX)?;
    let three_d = run_chip(Variant::ThreeD, &workload, u64::MAX)?;

    println!("                {:>12} {:>12}", "Base", "3D+TH");
    println!("clock (GHz)     {:>12.2} {:>12.2}", base.clock_ghz, three_d.clock_ghz);
    println!("IPC             {:>12.2} {:>12.2}", base.ipc(), three_d.ipc());
    println!("inst/ns         {:>12.2} {:>12.2}", base.ipns(), three_d.ipns());
    println!(
        "chip power (W)  {:>12.1} {:>12.1}",
        base.power.total_w(),
        three_d.power.total_w()
    );
    println!(
        "\nspeedup {:.2}x, power saving {:.1}%",
        three_d.ipns() / base.ipns(),
        100.0 * (1.0 - three_d.power.total_w() / base.power.total_w())
    );

    // --- 3. Thermal analysis of both designs. ---
    let t_base = thermal_analysis(&base, 32)?;
    let t_3d = thermal_analysis(&three_d, 32)?;
    println!(
        "\npeak temperature: planar {:.1} K ({}), 3D {:.1} K ({})",
        t_base.peak_k(),
        t_base.hottest_unit().0,
        t_3d.peak_k(),
        t_3d.hottest_unit().0
    );
    println!(
        "width prediction accuracy: {:.1}%",
        100.0 * three_d.core_stats.width_pred.accuracy()
    );
    Ok(())
}
