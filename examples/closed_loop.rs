//! Closed-loop DTM: the full co-simulation — pipeline, phase-coupled
//! power with temperature-dependent leakage, transient thermal solve,
//! and a DTM policy reacting every interval — on the unherded and herded
//! 3D designs under one thermal cap.
//!
//! ```text
//! cargo run --release -p thermal-herding --example closed_loop \
//!     [policy] [cap-kelvin] [workload]
//! ```
//!
//! `policy` is one of `none`, `dvfs`, `fetch`, `herding` (default
//! `dvfs`). Set `TH_COSIM_INTERVAL` (microseconds) to change the control
//! interval, and `TH_THREADS` to bound the fan-out — the trace is
//! bit-identical at any thread count.

use th_cosim::{CoSimConfig, PolicyKind};
use th_workloads::workload_by_name;
use thermal_herding::experiments::dtm;
use thermal_herding::Variant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let policy_name = std::env::args().nth(1).unwrap_or_else(|| "dvfs".into());
    let kind = PolicyKind::by_name(&policy_name)
        .ok_or_else(|| format!("unknown policy `{policy_name}` (none|dvfs|fetch|herding)"))?;
    let cap_k: f64 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(376.0);
    let workload = std::env::args().nth(3).unwrap_or_else(|| "mpeg2-like".into());
    let w = workload_by_name(&workload)
        .ok_or_else(|| format!("unknown workload `{workload}`"))?;

    let cfg = CoSimConfig::sampled(dtm::DTM_INTERVAL_S, dtm::DTM_SLICE_CYCLES, dtm::DTM_STEPS)
        .apply_env();
    println!(
        "closed-loop DTM [{}]: {cap_k:.0} K cap on {}, {:.1} ms interval x {} steps\n",
        kind.name(),
        w.name,
        cfg.interval_s * 1e3,
        cfg.steps,
    );

    let traces = th_exec::pool().map(&[Variant::ThreeDNoTh, Variant::ThreeD], |&v| {
        dtm::run_variant_scaled(v, &w, cap_k, 24, kind.build(cap_k), cfg)
    });

    for t in &traces {
        println!("{} ({} nominal {:.2} GHz):", t.variant.label(), t.report.policy, t.nominal_ghz());
        println!("{}", t.report);
    }

    let (noth, th) = (&traces[0], &traces[1]);
    println!(
        "under a {:.0} K cap, herding throttles {:.1}% of intervals vs {:.1}% unherded \
         and delivers {:+.1}% throughput",
        cap_k,
        100.0 * th.throttled_fraction(),
        100.0 * noth.throttled_fraction(),
        100.0 * (th.delivered_ginst() / noth.delivered_ginst() - 1.0),
    );
    Ok(())
}
