//! Event-sourced per-(unit, die) activity ledger.
//!
//! The pipeline records, at the moment each access executes, exactly
//! which dies of which unit it drove. The power model then prices watts
//! straight from these measured counters instead of reconstructing the
//! placement from aggregate statistics ("capture fraction" heuristics).
//!
//! # Die-touch semantics
//!
//! Each cell of the matrix holds two counters:
//!
//! * **`low`** — width-gated accesses: the access touched *only* this
//!   die (in the significance-partitioned datapath, always die 0, the
//!   one adjacent to the heat sink). Each gated access adds 1 to the
//!   die it landed on and is priced at the unit's low-access energy.
//! * **`full`** — die-touches of full-width accesses: a full access
//!   drives all four dies of the folded stack and adds 1 to *every*
//!   die it drives. Pricing divides the row sum by [`DIES`] to recover
//!   full-access equivalents, so the geometry (how many dies a full
//!   access spans) stays the ledger's concern and the per-access energy
//!   stays the price list's.
//!
//! Planar and non-herded 3D runs record everything as full die-touches;
//! whether gating *happens* in the machine is decided where the access
//! executes, so the ledger is a faithful trace, not a model.

use crate::blocks::Unit;
use crate::DIES;

/// Activity of one `(unit, die)` cell: gated (low) accesses that landed
/// on this die, and die-touches of full-width accesses that drove it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActivityCell {
    /// Width-gated accesses that touched only this die.
    pub low: u64,
    /// Die-touches by full-width accesses (one per die driven).
    pub full: u64,
}

/// Counters keyed by `(Unit, die)`, recorded at every pipeline access
/// site and carried in the simulator's statistics block with
/// snapshot/delta/merge semantics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ActivityMatrix {
    cells: [[ActivityCell; DIES]; Unit::COUNT],
}

impl ActivityMatrix {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one gated access to `unit` landing on `die` alone.
    #[inline]
    pub fn record_low(&mut self, unit: Unit, die: usize) {
        self.cells[unit.index()][die].low += 1;
    }

    /// Records `n` gated accesses to `unit` on `die`.
    #[inline]
    pub fn add_low(&mut self, unit: Unit, die: usize, n: u64) {
        self.cells[unit.index()][die].low += n;
    }

    /// Records one full-width access to `unit` driving every die.
    #[inline]
    pub fn record_full(&mut self, unit: Unit) {
        for d in 0..DIES {
            self.cells[unit.index()][d].full += 1;
        }
    }

    /// Records `n` full-width accesses to `unit`, each driving every die.
    #[inline]
    pub fn add_full(&mut self, unit: Unit, n: u64) {
        for d in 0..DIES {
            self.cells[unit.index()][d].full += n;
        }
    }

    /// Records `n` die-touches of full-width class on one specific die —
    /// for units whose full accesses do *not* span the stack uniformly
    /// (e.g. scheduler entries resident on their allocation die).
    #[inline]
    pub fn add_full_on(&mut self, unit: Unit, die: usize, n: u64) {
        self.cells[unit.index()][die].full += n;
    }

    /// The per-die cells of one unit.
    #[inline]
    pub fn row(&self, unit: Unit) -> &[ActivityCell; DIES] {
        &self.cells[unit.index()]
    }

    /// Total gated accesses recorded for `unit` (sum over dies).
    pub fn low_total(&self, unit: Unit) -> u64 {
        self.row(unit).iter().map(|c| c.low).sum()
    }

    /// Total full-width die-touches recorded for `unit` (sum over dies).
    /// Divide by [`DIES`] for full-access equivalents when every full
    /// access spans the whole stack.
    pub fn full_touches(&self, unit: Unit) -> u64 {
        self.row(unit).iter().map(|c| c.full).sum()
    }

    /// True if no activity has been recorded anywhere.
    pub fn is_empty(&self) -> bool {
        self.cells.iter().flatten().all(|c| c.low == 0 && c.full == 0)
    }

    /// Adds another ledger's counters into this one. Associative and
    /// commutative, so parallel fan-out/reduce order never matters.
    pub fn merge(&mut self, other: &ActivityMatrix) {
        for (row, orow) in self.cells.iter_mut().zip(other.cells.iter()) {
            for (c, oc) in row.iter_mut().zip(orow.iter()) {
                c.low += oc.low;
                c.full += oc.full;
            }
        }
    }

    /// Subtracts an earlier snapshot of the same run, leaving the
    /// activity accumulated since it was taken.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `prefix` is componentwise ≤ `self`.
    pub fn subtract_prefix(&mut self, prefix: &ActivityMatrix) {
        for (row, prow) in self.cells.iter_mut().zip(prefix.cells.iter()) {
            for (c, pc) in row.iter_mut().zip(prow.iter()) {
                debug_assert!(c.low >= pc.low && c.full >= pc.full, "activity underflow");
                c.low -= pc.low;
                c.full -= pc.full;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_low_lands_on_one_die() {
        let mut m = ActivityMatrix::new();
        m.record_low(Unit::RegFile, 0);
        m.record_low(Unit::RegFile, 0);
        assert_eq!(m.row(Unit::RegFile)[0], ActivityCell { low: 2, full: 0 });
        assert_eq!(m.low_total(Unit::RegFile), 2);
        assert_eq!(m.full_touches(Unit::RegFile), 0);
    }

    #[test]
    fn record_full_touches_every_die() {
        let mut m = ActivityMatrix::new();
        m.record_full(Unit::DCache);
        m.add_full(Unit::DCache, 2);
        for d in 0..DIES {
            assert_eq!(m.row(Unit::DCache)[d].full, 3, "die {d}");
        }
        assert_eq!(m.full_touches(Unit::DCache), 12);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = ActivityMatrix::new();
        a.record_low(Unit::Lsq, 0);
        a.record_full(Unit::ICache);
        let mut b = ActivityMatrix::new();
        b.add_full_on(Unit::Scheduler, 2, 5);
        let mut c = ActivityMatrix::new();
        c.add_low(Unit::IntExec, 0, 7);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut a_bc = b.clone();
        a_bc.merge(&c);
        a_bc.merge(&a);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn subtract_prefix_inverts_merge() {
        let mut a = ActivityMatrix::new();
        a.record_low(Unit::Rob, 0);
        a.add_full(Unit::Bypass, 4);
        let snap = a.clone();
        a.record_full(Unit::Bypass);
        a.record_low(Unit::Rob, 0);
        let mut delta = a.clone();
        delta.subtract_prefix(&snap);
        assert_eq!(delta.low_total(Unit::Rob), 1);
        assert_eq!(delta.full_touches(Unit::Bypass), DIES as u64);
        let mut rebuilt = snap;
        rebuilt.merge(&delta);
        assert_eq!(rebuilt, a);
    }

    #[test]
    fn empty_detection() {
        let mut m = ActivityMatrix::new();
        assert!(m.is_empty());
        m.record_low(Unit::Btb, 0);
        assert!(!m.is_empty());
    }
}
