//! Per-block 2D vs 3D latency model — the substitute for the paper's
//! HSpice runs, regenerating Table 2.
//!
//! Each block is modelled as a logic chain (FO4 units) plus a critical wire
//! (repeated-wire delay). Folding a block across four dies shortens the
//! wire by a block-specific factor — `0.25` for entry-stacked broadcast
//! structures whose bus length divides by the die count, `≈0.5` for
//! area-folded arrays whose dimensions shrink by `√4` — and adds d2d via
//! crossings on the critical path.

use crate::blocks::Unit;
use crate::tech;
use std::fmt;

/// Physical parameters of one block's critical path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockDelaySpec {
    /// Display name (Table 2 row label).
    pub name: &'static str,
    /// Corresponding floorplan unit, when the row maps to exactly one.
    pub unit: Option<Unit>,
    /// Logic depth in FO4 units.
    pub gates_fo4: f64,
    /// Critical wire length in the planar implementation, millimetres.
    pub wire_mm_2d: f64,
    /// Multiplier applied to the wire length in the 4-die implementation.
    pub wire_scale_3d: f64,
    /// d2d interfaces crossed on the 3D critical path.
    pub d2d_crossings: u32,
    /// Whether this block is one of the two cycle-time-critical loops
    /// (wakeup-select and ALU+bypass, §5.1.1 — bold in Table 2).
    pub critical_loop: bool,
}

/// Computed 2D and 3D latencies for one block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockDelay {
    /// Planar latency in picoseconds.
    pub t2d_ps: f64,
    /// 4-die 3D latency in picoseconds.
    pub t3d_ps: f64,
}

impl BlockDelay {
    /// Fractional improvement, `(t2d - t3d) / t2d`.
    pub fn improvement(&self) -> f64 {
        (self.t2d_ps - self.t3d_ps) / self.t2d_ps
    }
}

impl BlockDelaySpec {
    /// Evaluates the spec under the technology constants.
    pub fn evaluate(&self) -> BlockDelay {
        let gates = self.gates_fo4 * tech::FO4_PS;
        let t2d_ps = gates + crate::wire::repeated_delay_ps(self.wire_mm_2d);
        let t3d_ps = gates
            + crate::wire::repeated_delay_ps(self.wire_mm_2d * self.wire_scale_3d)
            + self.d2d_crossings as f64 * tech::D2D_VIA_PS;
        BlockDelay { t2d_ps, t3d_ps }
    }
}

/// The full set of modelled blocks.
///
/// Parameter choices (logic depth, wire length) are representative of
/// 65 nm implementations of the Table 1 structures; the two critical loops
/// are calibrated so their improvements match the paper's 32 % / 36 %.
#[derive(Clone, Debug)]
pub struct BlockDelayModel {
    specs: Vec<BlockDelaySpec>,
}

impl Default for BlockDelayModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockDelayModel {
    /// Builds the model with the calibrated 65 nm parameters.
    pub fn new() -> BlockDelayModel {
        let specs = vec![
            // The wakeup-select loop: 32-entry RS, tag broadcast bus plus
            // select tree. Entry-stacking divides the bus length by the die
            // count; the broadcast fans out across 3 interfaces.
            BlockDelaySpec {
                name: "Scheduler (wakeup-select)",
                unit: Some(Unit::Scheduler),
                gates_fo4: 8.0,
                wire_mm_2d: 3.12,
                wire_scale_3d: 0.25,
                d2d_crossings: 3,
                critical_loop: true,
            },
            // ALU + full result-bypass loop. The bypass wire dominates; the
            // word-partitioned adder itself only gains a few percent
            // because only the last carry levels' wires shrink while the
            // carry crosses all three interfaces (§5.1.1: "the adder only
            // accounts for 3% out of the 36% benefit").
            BlockDelaySpec {
                name: "ALU + Bypass",
                unit: Some(Unit::Bypass),
                gates_fo4: 7.5,
                wire_mm_2d: 3.8,
                wire_scale_3d: 0.25,
                d2d_crossings: 4,
                critical_loop: true,
            },
            BlockDelaySpec {
                name: "Integer adder (64-bit)",
                unit: Some(Unit::IntExec),
                gates_fo4: 7.0,
                wire_mm_2d: 0.6,
                wire_scale_3d: 0.25,
                d2d_crossings: 3,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "Register file",
                unit: Some(Unit::RegFile),
                gates_fo4: 6.0,
                wire_mm_2d: 1.6,
                wire_scale_3d: 0.40,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "L1 data cache (32KB)",
                unit: Some(Unit::DCache),
                gates_fo4: 8.0,
                wire_mm_2d: 2.2,
                wire_scale_3d: 0.45,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "L1 instruction cache (32KB)",
                unit: Some(Unit::ICache),
                gates_fo4: 8.0,
                wire_mm_2d: 2.2,
                wire_scale_3d: 0.45,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "L2 cache (4MB)",
                unit: Some(Unit::L2),
                gates_fo4: 10.0,
                wire_mm_2d: 9.0,
                wire_scale_3d: 0.35,
                d2d_crossings: 2,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "BTB (2K-entry)",
                unit: Some(Unit::Btb),
                gates_fo4: 6.0,
                wire_mm_2d: 1.2,
                wire_scale_3d: 0.40,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "Branch predictor (10KB)",
                unit: Some(Unit::Bpred),
                gates_fo4: 5.0,
                wire_mm_2d: 0.9,
                wire_scale_3d: 0.50,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "TLBs (CAM)",
                unit: Some(Unit::Dtlb),
                gates_fo4: 7.0,
                wire_mm_2d: 0.8,
                wire_scale_3d: 0.40,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "ROB (96-entry)",
                unit: Some(Unit::Rob),
                gates_fo4: 6.0,
                wire_mm_2d: 1.8,
                wire_scale_3d: 0.30,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "Load/store queues",
                unit: Some(Unit::Lsq),
                gates_fo4: 8.0,
                wire_mm_2d: 1.4,
                wire_scale_3d: 0.30,
                d2d_crossings: 1,
                critical_loop: false,
            },
            BlockDelaySpec {
                name: "Rename / dependency check",
                unit: Some(Unit::Rename),
                gates_fo4: 9.0,
                wire_mm_2d: 1.0,
                wire_scale_3d: 0.40,
                d2d_crossings: 1,
                critical_loop: false,
            },
        ];
        BlockDelayModel { specs }
    }

    /// All block specs.
    pub fn specs(&self) -> &[BlockDelaySpec] {
        &self.specs
    }

    /// Looks up a spec by its floorplan unit.
    pub fn for_unit(&self, unit: Unit) -> Option<&BlockDelaySpec> {
        self.specs.iter().find(|s| s.unit == Some(unit))
    }

    /// Evaluates every block, producing Table 2.
    pub fn table2(&self) -> Table2 {
        Table2 {
            rows: self
                .specs
                .iter()
                .map(|s| {
                    let d = s.evaluate();
                    Table2Row {
                        name: s.name,
                        critical_loop: s.critical_loop,
                        t2d_ps: d.t2d_ps,
                        t3d_ps: d.t3d_ps,
                    }
                })
                .collect(),
        }
    }
}

/// One row of the regenerated Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table2Row {
    /// Block name.
    pub name: &'static str,
    /// Whether the row is one of the bold cycle-time-critical loops.
    pub critical_loop: bool,
    /// Planar latency (ps).
    pub t2d_ps: f64,
    /// 3D latency (ps).
    pub t3d_ps: f64,
}

impl Table2Row {
    /// Percentage improvement of the 3D implementation.
    pub fn improvement_pct(&self) -> f64 {
        100.0 * (self.t2d_ps - self.t3d_ps) / self.t2d_ps
    }
}

/// The regenerated Table 2: per-block 2D and 3D latencies.
#[derive(Clone, Debug)]
pub struct Table2 {
    /// All rows, in presentation order.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// The rows marked as cycle-time-critical loops.
    pub fn critical_rows(&self) -> impl Iterator<Item = &Table2Row> {
        self.rows.iter().filter(|r| r.critical_loop)
    }

    /// Finds a row by (prefix of) its name.
    pub fn row(&self, prefix: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.name.starts_with(prefix))
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<34} {:>9} {:>9} {:>8}", "Block", "2D (ps)", "3D (ps)", "Improv.")?;
        writeln!(f, "{}", "-".repeat(64))?;
        for r in &self.rows {
            let marker = if r.critical_loop { "*" } else { " " };
            writeln!(
                f,
                "{marker}{:<33} {:>9.1} {:>9.1} {:>7.1}%",
                r.name,
                r.t2d_ps,
                r.t3d_ps,
                r.improvement_pct()
            )?;
        }
        write!(f, "(* = cycle-time-critical loop)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_block_improves_in_3d() {
        for row in BlockDelayModel::new().table2().rows {
            assert!(
                row.t3d_ps < row.t2d_ps,
                "{} got slower in 3D: {} -> {}",
                row.name,
                row.t2d_ps,
                row.t3d_ps
            );
        }
    }

    #[test]
    fn critical_loops_match_paper_improvements() {
        // §5.1.1: "We observe a 32% improvement in the latency of the
        // wakeup-select loop" and "a 36% latency improvement in the
        // ALU+Bypass loop".
        let t2 = BlockDelayModel::new().table2();
        let sched = t2.row("Scheduler").unwrap();
        assert!(
            (sched.improvement_pct() - 32.0).abs() < 1.5,
            "wakeup-select improvement {:.1}% not ≈32%",
            sched.improvement_pct()
        );
        let alu = t2.row("ALU + Bypass").unwrap();
        assert!(
            (alu.improvement_pct() - 36.0).abs() < 1.5,
            "ALU+bypass improvement {:.1}% not ≈36%",
            alu.improvement_pct()
        );
    }

    #[test]
    fn adder_alone_gains_little() {
        // §5.1.1: the partitioned adder contributes only ≈3 percentage
        // points of the 36% — its own improvement is small.
        let t2 = BlockDelayModel::new().table2();
        let adder = t2.row("Integer adder").unwrap();
        assert!(
            adder.improvement_pct() < 10.0,
            "adder improvement {:.1}% too large",
            adder.improvement_pct()
        );
    }

    #[test]
    fn large_arrays_gain_most() {
        // §5.1.1: "large arrays (caches, register files, TLBs) observe
        // substantial latency improvements"; the L2 is the largest array
        // and should improve more than small logic blocks.
        let t2 = BlockDelayModel::new().table2();
        let l2 = t2.row("L2 cache").unwrap().improvement_pct();
        let bpred = t2.row("Branch predictor").unwrap().improvement_pct();
        assert!(l2 > 35.0, "L2 improvement {l2:.1}%");
        assert!(l2 > bpred);
    }

    #[test]
    fn critical_loop_latencies_are_about_one_cycle() {
        // The loops that set the clock should be within ~15% of the
        // 2.66 GHz cycle time in 2D.
        let cycle = tech::baseline_cycle_ps();
        for row in BlockDelayModel::new().table2().critical_rows() {
            assert!(
                (row.t2d_ps - cycle).abs() / cycle < 0.15,
                "{}: 2D latency {:.0}ps vs cycle {:.0}ps",
                row.name,
                row.t2d_ps,
                cycle
            );
        }
    }

    #[test]
    fn unit_lookup() {
        let m = BlockDelayModel::new();
        assert_eq!(m.for_unit(Unit::Scheduler).unwrap().name, "Scheduler (wakeup-select)");
        assert!(m.for_unit(Unit::Clock).is_none());
    }

    #[test]
    fn table_renders() {
        let s = BlockDelayModel::new().table2().to_string();
        assert!(s.contains("Scheduler"));
        assert!(s.contains("critical"));
    }
}
