//! 65 nm technology constants.
//!
//! Values are representative of published 65 nm data (ITRS 2005 and Intel
//! process disclosures) rather than extracted from a proprietary kit; only
//! the *relative* 2D/3D behaviour matters for the reproduced experiments.

/// Delay of one fanout-of-4 inverter at 65 nm, in picoseconds.
///
/// The common rule of thumb is FO4 ≈ 0.36–0.5 ps per nm of drawn gate
/// length; 25 ps at 65 nm sits in the published range and makes the
/// 2.66 GHz baseline cycle ≈ 15 FO4, matching contemporary
/// high-performance pipelines.
pub const FO4_PS: f64 = 25.0;

/// Delay per millimetre of optimally repeated intermediate-layer wire, in
/// picoseconds (≈ 55–65 ps/mm is typical for 65 nm copper interconnect).
pub const REPEATED_WIRE_PS_PER_MM: f64 = 60.0;

/// Resistance of intermediate-layer wire, ohms per millimetre.
pub const WIRE_R_OHM_PER_MM: f64 = 1_250.0;

/// Capacitance of intermediate-layer wire, picofarads per millimetre.
pub const WIRE_C_PF_PER_MM: f64 = 0.20;

/// Delay to cross one die-to-die interface, in picoseconds.
///
/// Prior work (cited in §2.1) reports the d2d via delay as "less than one
/// FO4". The via itself is only 5–20 µm of metal, so its RC is negligible;
/// the 0.2 FO4 charged here covers the landing pad load on a
/// minimally-loaded face-to-face connection.
pub const D2D_VIA_PS: f64 = FO4_PS * 0.2;

/// Face-to-face d2d via pitch, micrometres (§4).
pub const F2F_VIA_PITCH_UM: f64 = 1.0;

/// Backside (through-silicon) via pitch, micrometres (§4).
pub const BACKSIDE_VIA_PITCH_UM: f64 = 2.0;

/// Distance crossed between two die faces, micrometres (§4).
pub const F2F_CROSSING_UM: f64 = 5.0;

/// Distance crossed at a back-to-back interface, micrometres (§4).
pub const B2B_CROSSING_UM: f64 = 20.0;

/// Fraction of a d2d interface layer occupied by copper via material when
/// fully populated at half-pitch via width (§4: "25 % copper occupancy
/// (75 % air)").
pub const D2D_COPPER_FRACTION: f64 = 0.25;

/// Baseline planar clock frequency, GHz (§4).
pub const BASELINE_GHZ: f64 = 2.66;

/// Baseline cycle time in picoseconds.
pub fn baseline_cycle_ps() -> f64 {
    1_000.0 / BASELINE_GHZ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_cycle_matches_frequency() {
        assert!((baseline_cycle_ps() - 375.94).abs() < 0.01);
    }

    #[test]
    fn cycle_is_a_realistic_fo4_count() {
        let fo4s = baseline_cycle_ps() / FO4_PS;
        assert!(fo4s > 12.0 && fo4s < 20.0, "cycle = {fo4s} FO4");
    }

    #[test]
    fn via_is_sub_fo4() {
        const { assert!(D2D_VIA_PS < FO4_PS) }
    }
}
