//! Wire delay formulas.
//!
//! Two regimes matter for the block model:
//!
//! * **Unrepeated** wires follow the distributed-RC (Elmore) quadratic:
//!   `t = 0.377 · r · c · L²`. Used for short intra-block segments.
//! * **Repeated** wires (with optimally inserted buffers) are linear in
//!   length. Long broadcast buses and bypass wires are always repeated in
//!   high-performance designs, so the block model charges
//!   [`repeated_delay_ps`] for them.

use crate::tech;

/// Distributed-RC delay of an unrepeated wire of `mm` millimetres, in ps.
///
/// ```
/// use th_stack3d::wire::unrepeated_delay_ps;
/// // Quadratic: doubling length quadruples delay.
/// let d1 = unrepeated_delay_ps(1.0);
/// let d2 = unrepeated_delay_ps(2.0);
/// assert!((d2 / d1 - 4.0).abs() < 1e-9);
/// ```
pub fn unrepeated_delay_ps(mm: f64) -> f64 {
    0.377 * tech::WIRE_R_OHM_PER_MM * tech::WIRE_C_PF_PER_MM * mm * mm
}

/// Delay of an optimally repeated wire of `mm` millimetres, in ps (linear).
pub fn repeated_delay_ps(mm: f64) -> f64 {
    tech::REPEATED_WIRE_PS_PER_MM * mm
}

/// Energy of driving a wire of `mm` millimetres once, in picojoules,
/// assuming full-swing switching at `vdd` volts.
///
/// `E = C · V²` (the ½ appears twice per cycle for charge and discharge;
/// activity factors are applied by the power model).
pub fn wire_energy_pj(mm: f64, vdd: f64) -> f64 {
    tech::WIRE_C_PF_PER_MM * mm * vdd * vdd
}

/// Crossover length below which an unrepeated wire is faster than a
/// repeated one (repeater insertion only pays off for long wires).
pub fn repeater_crossover_mm() -> f64 {
    // Solve 0.377·r·c·L² = k·L  =>  L = k / (0.377·r·c)
    tech::REPEATED_WIRE_PS_PER_MM / (0.377 * tech::WIRE_R_OHM_PER_MM * tech::WIRE_C_PF_PER_MM)
}

/// Best achievable delay for a wire of `mm` millimetres: unrepeated when
/// short, repeated when long.
pub fn best_delay_ps(mm: f64) -> f64 {
    unrepeated_delay_ps(mm).min(repeated_delay_ps(mm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn repeated_is_linear() {
        assert!((repeated_delay_ps(2.0) - 2.0 * repeated_delay_ps(1.0)).abs() < 1e-9);
    }

    #[test]
    fn crossover_is_sub_millimetre() {
        let x = repeater_crossover_mm();
        assert!(x > 0.1 && x < 1.5, "crossover = {x} mm");
    }

    #[test]
    fn energy_scales_with_vdd_squared() {
        let e1 = wire_energy_pj(1.0, 1.0);
        let e2 = wire_energy_pj(1.0, 1.2);
        assert!((e2 / e1 - 1.44).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn best_delay_picks_minimum(mm in 0.01f64..20.0) {
            let b = best_delay_ps(mm);
            prop_assert!(b <= unrepeated_delay_ps(mm) + 1e-12);
            prop_assert!(b <= repeated_delay_ps(mm) + 1e-12);
        }

        #[test]
        fn delays_monotonic_in_length(a in 0.01f64..10.0, b in 0.01f64..10.0) {
            prop_assume!(a < b);
            prop_assert!(best_delay_ps(a) <= best_delay_ps(b));
        }
    }
}
