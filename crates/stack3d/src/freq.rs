//! Clock frequency derivation (§5.1.1).
//!
//! "Previous work has identified the instruction scheduling logic
//! (wakeup-select loop) and the arithmetic unit and result bypass loops to
//! be particularly important in determining a processor's maximum clock
//! frequency." The 3D clock scales by the *worst* (largest) 3D/2D latency
//! ratio among those loops: both must still fit in one cycle.

use crate::delay::BlockDelayModel;
use crate::tech;

/// The clock plan for the planar baseline and the 3D processor.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrequencyPlan {
    /// Planar baseline frequency, GHz (2.66 per §4).
    pub base_ghz: f64,
    /// 3D frequency, GHz.
    pub three_d_ghz: f64,
}

impl FrequencyPlan {
    /// Fractional frequency gain of the 3D design (paper: 0.479).
    pub fn gain(&self) -> f64 {
        self.three_d_ghz / self.base_ghz - 1.0
    }

    /// Cycle time of the baseline, picoseconds.
    pub fn base_cycle_ps(&self) -> f64 {
        1_000.0 / self.base_ghz
    }

    /// Cycle time of the 3D design, picoseconds.
    pub fn three_d_cycle_ps(&self) -> f64 {
        1_000.0 / self.three_d_ghz
    }
}

/// Derives the 3D clock frequency from the critical loops of the delay
/// model.
///
/// ```
/// use th_stack3d::{derive_frequency, BlockDelayModel};
/// let plan = derive_frequency(&BlockDelayModel::new());
/// assert!((plan.base_ghz - 2.66).abs() < 1e-9);
/// // The paper reports a 47.9% frequency increase (§5.1.1).
/// assert!((plan.gain() - 0.479).abs() < 0.02, "gain = {}", plan.gain());
/// ```
pub fn derive_frequency(model: &BlockDelayModel) -> FrequencyPlan {
    let worst_ratio = model
        .table2()
        .critical_rows()
        .map(|r| r.t3d_ps / r.t2d_ps)
        .fold(0.0f64, f64::max);
    assert!(worst_ratio > 0.0, "delay model has no critical loops");
    FrequencyPlan { base_ghz: tech::BASELINE_GHZ, three_d_ghz: tech::BASELINE_GHZ / worst_ratio }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_matches_paper() {
        let plan = derive_frequency(&BlockDelayModel::new());
        assert!(
            (plan.gain() - 0.479).abs() < 0.01,
            "frequency gain {:.3} differs from the paper's 0.479",
            plan.gain()
        );
        // 2.66 GHz -> ≈3.93 GHz.
        assert!((plan.three_d_ghz - 3.93).abs() < 0.05, "3D clock {:.3} GHz", plan.three_d_ghz);
    }

    #[test]
    fn cycle_times_consistent() {
        let plan = derive_frequency(&BlockDelayModel::new());
        assert!(plan.three_d_cycle_ps() < plan.base_cycle_ps());
        assert!((plan.base_cycle_ps() * plan.base_ghz - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn limited_by_scheduler_not_bypass() {
        // The ALU+bypass loop improves more (36% vs 32%), so the
        // wakeup-select loop must be the frequency limiter.
        let t2 = BlockDelayModel::new().table2();
        let sched = t2.row("Scheduler").unwrap();
        let alu = t2.row("ALU + Bypass").unwrap();
        assert!(sched.t3d_ps / sched.t2d_ps > alu.t3d_ps / alu.t2d_ps);
    }
}
