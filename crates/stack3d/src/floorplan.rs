//! Block-level floorplans for the planar dual-core die and the folded
//! 4-die stack (Figure 7).
//!
//! The planar floorplan is a best-effort Core 2-class layout: two cores
//! side by side above a shared 4 MB L2. The 3D floorplan keeps the same
//! relative layout with every linear dimension halved (the "~4× footprint
//! reduction due to the partitioned implementation of individual circuit
//! blocks on four die", §4) and replicates each block's placement on all
//! four dies — per-die *power* assignment is the power model's job.
//!
//! The clock network is modelled as a distributed block covering the whole
//! die (its power is spread over the full floorplan), so it is exempt from
//! the overlap check.

use crate::blocks::Unit;
use crate::DIES;

/// An axis-aligned rectangle in millimetres.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Creates a rectangle.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Rect {
        Rect { x, y, w, h }
    }

    /// Area in mm².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Whether two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// Area of the intersection with `other` (0 if disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.x + self.w).min(other.x + other.w) - self.x.max(other.x);
        let h = (self.y + self.h).min(other.y + other.h) - self.y.max(other.y);
        if w > 0.0 && h > 0.0 {
            w * h
        } else {
            0.0
        }
    }

    /// Translates by `(dx, dy)`.
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect { x: self.x + dx, y: self.y + dy, ..*self }
    }

    /// Scales all coordinates and dimensions by `s`.
    pub fn scaled(&self, s: f64) -> Rect {
        Rect { x: self.x * s, y: self.y * s, w: self.w * s, h: self.h * s }
    }
}

/// One placed block instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// Which block.
    pub unit: Unit,
    /// Which core instance (`None` for shared blocks: L2, clock).
    pub core: Option<usize>,
    /// Which die (0 = adjacent to the heat sink).
    pub die: usize,
    /// Position on that die.
    pub rect: Rect,
}

/// A floorplan: die dimensions plus all block placements.
#[derive(Clone, Debug)]
pub struct Floorplan {
    width_mm: f64,
    height_mm: f64,
    dies: usize,
    placements: Vec<Placement>,
}

/// Per-core block layout within a `5.5 × 5.6 mm` core tile, expressed in
/// core-local coordinates.
fn core_layout() -> Vec<(Unit, Rect)> {
    use Unit::*;
    vec![
        // Front-end row.
        (ICache, Rect::new(0.0, 0.0, 2.6, 1.6)),
        (Itlb, Rect::new(2.6, 0.0, 0.8, 1.6)),
        (Bpred, Rect::new(3.4, 0.0, 1.2, 1.6)),
        (Btb, Rect::new(4.6, 0.0, 0.9, 1.6)),
        // Decode / rename / ROB row.
        (Decode, Rect::new(0.0, 1.6, 2.0, 1.2)),
        (Rename, Rect::new(2.0, 1.6, 1.4, 1.2)),
        (Rob, Rect::new(3.4, 1.6, 2.1, 1.2)),
        // Out-of-order backend row.
        (Scheduler, Rect::new(0.0, 2.8, 1.3, 1.4)),
        (RegFile, Rect::new(1.3, 2.8, 1.9, 1.4)),
        (IntExec, Rect::new(3.2, 2.8, 1.4, 1.4)),
        (Bypass, Rect::new(4.6, 2.8, 0.9, 1.4)),
        // Memory / FP row.
        (FpExec, Rect::new(0.0, 4.2, 1.6, 1.4)),
        (Lsq, Rect::new(1.6, 4.2, 1.2, 1.4)),
        (Dtlb, Rect::new(2.8, 4.2, 0.7, 1.4)),
        (DCache, Rect::new(3.5, 4.2, 2.0, 1.4)),
    ]
}

const CORE_W: f64 = 5.5;
const CORE_H: f64 = 5.6;
const L2_H: f64 = 6.0;

impl Floorplan {
    /// The planar dual-core floorplan (Figure 7a): two `5.5 × 5.6 mm`
    /// cores side by side above an `11 × 6 mm` shared L2.
    pub fn planar_dual_core() -> Floorplan {
        let width = 2.0 * CORE_W;
        let height = CORE_H + L2_H;
        let mut placements = Vec::new();
        for core in 0..2 {
            let dx = core as f64 * CORE_W;
            for (unit, rect) in core_layout() {
                placements.push(Placement {
                    unit,
                    core: Some(core),
                    die: 0,
                    rect: rect.translated(dx, 0.0),
                });
            }
        }
        placements.push(Placement {
            unit: Unit::L2,
            core: None,
            die: 0,
            rect: Rect::new(0.0, CORE_H, width, L2_H),
        });
        // Distributed clock network: covers the whole die.
        placements.push(Placement {
            unit: Unit::Clock,
            core: None,
            die: 0,
            rect: Rect::new(0.0, 0.0, width, height),
        });
        Floorplan { width_mm: width, height_mm: height, dies: 1, placements }
    }

    /// The folded 4-die floorplan (Figure 7b): the planar layout with all
    /// linear dimensions halved, replicated on every die.
    pub fn stacked_dual_core() -> Floorplan {
        let planar = Floorplan::planar_dual_core();
        let scale = 0.5;
        let mut placements = Vec::new();
        for die in 0..DIES {
            for p in &planar.placements {
                placements.push(Placement { die, rect: p.rect.scaled(scale), ..*p });
            }
        }
        Floorplan {
            width_mm: planar.width_mm * scale,
            height_mm: planar.height_mm * scale,
            dies: DIES,
            placements,
        }
    }

    /// Die width in millimetres.
    pub fn width_mm(&self) -> f64 {
        self.width_mm
    }

    /// Die height in millimetres.
    pub fn height_mm(&self) -> f64 {
        self.height_mm
    }

    /// Number of dies carrying placements.
    pub fn dies(&self) -> usize {
        self.dies
    }

    /// Die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.width_mm * self.height_mm
    }

    /// All placements.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Placements on one die.
    pub fn die_placements(&self, die: usize) -> impl Iterator<Item = &Placement> {
        self.placements.iter().filter(move |p| p.die == die)
    }

    /// Finds the placement of `unit` for `core` on `die`.
    pub fn find(&self, unit: Unit, core: Option<usize>, die: usize) -> Option<&Placement> {
        self.placements.iter().find(|p| p.unit == unit && p.core == core && p.die == die)
    }

    /// Validates that no two non-distributed blocks on the same die
    /// overlap and that everything lies within the die outline.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for p in &self.placements {
            if p.rect.x < -1e-9
                || p.rect.y < -1e-9
                || p.rect.x + p.rect.w > self.width_mm + 1e-9
                || p.rect.y + p.rect.h > self.height_mm + 1e-9
            {
                return Err(format!("{} (core {:?}, die {}) exceeds the die outline", p.unit, p.core, p.die));
            }
        }
        for die in 0..self.dies {
            let on_die: Vec<&Placement> =
                self.die_placements(die).filter(|p| p.unit != Unit::Clock).collect();
            for (i, a) in on_die.iter().enumerate() {
                for b in &on_die[i + 1..] {
                    // Blocks that merely abut can register a sliver of
                    // overlap from floating-point translation; only a
                    // positive area counts.
                    if a.rect.intersection_area(&b.rect) > 1e-9 {
                        return Err(format!(
                            "{} (core {:?}) overlaps {} (core {:?}) on die {die}",
                            a.unit, a.core, b.unit, b.core
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planar_floorplan_is_valid() {
        Floorplan::planar_dual_core().validate().unwrap();
    }

    #[test]
    fn stacked_floorplan_is_valid() {
        Floorplan::stacked_dual_core().validate().unwrap();
    }

    #[test]
    fn stacked_footprint_is_quarter_of_planar() {
        let p = Floorplan::planar_dual_core();
        let s = Floorplan::stacked_dual_core();
        assert!((s.die_area_mm2() - p.die_area_mm2() / 4.0).abs() < 1e-9);
    }

    #[test]
    fn planar_area_is_core2_class() {
        // Core 2 (Conroe, 65 nm) was ≈143 mm²; our dual-core + 4MB L2
        // estimate should be in the same class.
        let area = Floorplan::planar_dual_core().die_area_mm2();
        assert!(area > 100.0 && area < 180.0, "die area {area} mm²");
    }

    #[test]
    fn every_unit_placed_per_core() {
        let p = Floorplan::planar_dual_core();
        for core in 0..2 {
            for unit in Unit::per_core() {
                assert!(
                    p.find(unit, Some(core), 0).is_some(),
                    "{unit} missing from core {core}"
                );
            }
        }
        assert!(p.find(Unit::L2, None, 0).is_some());
        assert!(p.find(Unit::Clock, None, 0).is_some());
    }

    #[test]
    fn stacked_replicates_on_all_dies() {
        let s = Floorplan::stacked_dual_core();
        for die in 0..DIES {
            assert!(s.find(Unit::Scheduler, Some(0), die).is_some(), "die {die}");
            assert!(s.find(Unit::L2, None, die).is_some());
        }
    }

    #[test]
    fn rect_geometry() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        let c = Rect::new(5.0, 5.0, 1.0, 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!((a.intersection_area(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.intersection_area(&c), 0.0);
        assert!((a.area() - 4.0).abs() < 1e-12);
        assert!((a.scaled(0.5).area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn caches_are_the_largest_core_blocks() {
        let p = Floorplan::planar_dual_core();
        let ic = p.find(Unit::ICache, Some(0), 0).unwrap().rect.area();
        let sched = p.find(Unit::Scheduler, Some(0), 0).unwrap().rect.area();
        assert!(ic > sched);
    }
}
