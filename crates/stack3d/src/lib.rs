//! # 3D die-stack modelling: geometry, circuit delay, and floorplans.
//!
//! The paper derived its circuit latencies (Table 2) from HSpice runs of
//! 65 nm Predictive Technology Model netlists, with Intel 130 nm wire data
//! extrapolated to 65 nm. HSpice and those netlists are not available, so
//! this crate substitutes an **analytical delay model**: logic depth in FO4
//! units plus repeated-wire delay, with 3D folding shortening intra-block
//! wires and die-to-die (d2d) vias adding a sub-FO4 crossing penalty. The
//! model reproduces the *relative* 2D→3D latency ratios the paper reports,
//! which is what the 47.9 % frequency claim rests on.
//!
//! Contents:
//!
//! * [`tech`] — 65 nm technology constants (FO4, wire RC, d2d vias).
//! * [`wire`] — distributed-RC and repeated-wire delay formulas.
//! * [`Unit`] — the processor blocks shared by the delay, power, and
//!   floorplan models.
//! * [`ActivityMatrix`] — the event-sourced per-(unit, die) access
//!   ledger recorded by the pipeline and priced by `th-power`.
//! * [`BlockDelayModel`] / [`Table2`] — per-block 2D vs 3D latencies and
//!   the paper's Table 2.
//! * [`derive_frequency`] — clock frequency from the two critical loops
//!   (wakeup-select and ALU+bypass, §5.1.1).
//! * [`DieStack`] — the physical layer stack consumed by `th-thermal`.
//! * [`Floorplan`] — block placements for the planar dual-core die and the
//!   folded 4-die stack.

#![deny(missing_docs)]

mod activity;
mod blocks;
mod delay;
mod floorplan;
mod freq;
mod stack;
pub mod tech;
pub mod wire;

pub use activity::{ActivityCell, ActivityMatrix};
pub use blocks::Unit;
pub use delay::{BlockDelay, BlockDelayModel, BlockDelaySpec, Table2, Table2Row};
pub use floorplan::{Floorplan, Placement, Rect};
pub use freq::{derive_frequency, FrequencyPlan};
pub use stack::{BondStyle, DieStack, LayerKind, LayerSpec};

/// Number of dies in the evaluated stack.
pub const DIES: usize = 4;
