//! Physical die-stack description consumed by the thermal model.
//!
//! The evaluated processor is a 4-die stack (§2.2) bonded
//! face-to-face / back-to-back (Figure 1), thinned to ≈10 µm per inner die,
//! with the heat sink above die 0 and a phase-change metallic-alloy TIM
//! between the stack and the heat spreader (§4).

use std::fmt;

/// How two adjacent dies are bonded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BondStyle {
    /// Face-to-face: top-metal to top-metal, ≈5 µm crossing, 1 µm via pitch.
    FaceToFace,
    /// Back-to-back: through thinned bulk silicon, ≈20 µm crossing,
    /// 2 µm via pitch.
    BackToBack,
}

/// The material role of one layer in the vertical stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Bulk silicon of a die.
    Silicon,
    /// Active device layer of a die (where power is dissipated); the
    /// payload is the die index, 0 = closest to the heat sink.
    Active(usize),
    /// d2d bond interface: 25 % copper / 75 % air composite (§4).
    BondInterface,
    /// Thermal interface material (phase-change metallic alloy, §4).
    Tim,
    /// Copper heat spreader.
    Spreader,
}

/// One layer of the vertical stack, ordered from the heat sink downward.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerSpec {
    /// What the layer is made of / used for.
    pub kind: LayerKind,
    /// Layer thickness in micrometres.
    pub thickness_um: f64,
}

/// A vertical die stack: the ordered list of physical layers between the
/// heat sink and the bottom of the package.
///
/// ```
/// use th_stack3d::DieStack;
/// let stack = DieStack::four_die();
/// assert_eq!(stack.die_count(), 4);
/// // Die 0's active layer sits above die 3's.
/// assert!(stack.active_depth_um(0) < stack.active_depth_um(3));
/// ```
#[derive(Clone, Debug)]
pub struct DieStack {
    layers: Vec<LayerSpec>,
    die_count: usize,
}

impl DieStack {
    /// The paper's 4-die stack: from the heat sink downward —
    /// spreader, TIM, then (die 0 bulk, die 0 active), F2F interface,
    /// (die 1 active, die 1 thinned bulk), B2B interface,
    /// (die 2 thinned bulk, die 2 active), F2F interface,
    /// (die 3 active, die 3 bulk carrier).
    pub fn four_die() -> DieStack {
        use LayerKind::*;
        let layers = vec![
            LayerSpec { kind: Spreader, thickness_um: 1_000.0 },
            LayerSpec { kind: Tim, thickness_um: 50.0 },
            LayerSpec { kind: Silicon, thickness_um: 100.0 }, // die 0 bulk
            LayerSpec { kind: Active(0), thickness_um: 2.0 },
            LayerSpec { kind: BondInterface, thickness_um: 5.0 }, // F2F
            LayerSpec { kind: Active(1), thickness_um: 2.0 },
            LayerSpec { kind: Silicon, thickness_um: 10.0 }, // die 1 thinned
            LayerSpec { kind: BondInterface, thickness_um: 20.0 }, // B2B
            LayerSpec { kind: Silicon, thickness_um: 10.0 }, // die 2 thinned
            LayerSpec { kind: Active(2), thickness_um: 2.0 },
            LayerSpec { kind: BondInterface, thickness_um: 5.0 }, // F2F
            LayerSpec { kind: Active(3), thickness_um: 2.0 },
            LayerSpec { kind: Silicon, thickness_um: 50.0 }, // die 3 carrier
        ];
        DieStack { layers, die_count: 4 }
    }

    /// A planar (single-die) stack for the 2D baseline.
    pub fn planar() -> DieStack {
        use LayerKind::*;
        let layers = vec![
            LayerSpec { kind: Spreader, thickness_um: 1_000.0 },
            LayerSpec { kind: Tim, thickness_um: 50.0 },
            LayerSpec { kind: Silicon, thickness_um: 300.0 },
            LayerSpec { kind: Active(0), thickness_um: 2.0 },
            LayerSpec { kind: Silicon, thickness_um: 50.0 },
        ];
        DieStack { layers, die_count: 1 }
    }

    /// Layers ordered from the heat sink downward.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Number of active dies.
    pub fn die_count(&self) -> usize {
        self.die_count
    }

    /// Depth (µm below the TIM top surface) of die `die`'s active layer
    /// midpoint. Smaller depth ⇒ closer to the heat sink.
    ///
    /// # Panics
    ///
    /// Panics if `die >= die_count`.
    pub fn active_depth_um(&self, die: usize) -> f64 {
        assert!(die < self.die_count, "die {die} out of range");
        let mut depth = 0.0;
        for layer in &self.layers {
            if let LayerKind::Active(d) = layer.kind {
                if d == die {
                    return depth + layer.thickness_um / 2.0;
                }
            }
            depth += layer.thickness_um;
        }
        unreachable!("active layer for die {die} missing from stack");
    }

    /// Total stack thickness in micrometres.
    pub fn total_thickness_um(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness_um).sum()
    }
}

impl fmt::Display for DieStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}-die stack ({:.0} um total):", self.die_count, self.total_thickness_um())?;
        for layer in &self.layers {
            writeln!(f, "  {:>8.1} um  {:?}", layer.thickness_um, layer.kind)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_die_has_all_actives_in_order() {
        let s = DieStack::four_die();
        assert_eq!(s.die_count(), 4);
        let depths: Vec<f64> = (0..4).map(|d| s.active_depth_um(d)).collect();
        for pair in depths.windows(2) {
            assert!(pair[0] < pair[1], "dies out of depth order: {depths:?}");
        }
    }

    #[test]
    fn inner_dies_are_thinned() {
        // §2.1: dies are thinned to ≈10 µm; §4 models 12 µm as current
        // practice. Our inner bulk layers use 10 µm.
        let s = DieStack::four_die();
        let thin_layers: Vec<_> = s
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::Silicon && l.thickness_um <= 10.0)
            .collect();
        assert_eq!(thin_layers.len(), 2);
    }

    #[test]
    fn planar_stack_is_single_die() {
        let s = DieStack::planar();
        assert_eq!(s.die_count(), 1);
        assert!(s.active_depth_um(0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_die_index_panics() {
        let _ = DieStack::planar().active_depth_um(1);
    }

    #[test]
    fn bond_interfaces_alternate_f2f_b2b() {
        let s = DieStack::four_die();
        let bonds: Vec<f64> = s
            .layers()
            .iter()
            .filter(|l| l.kind == LayerKind::BondInterface)
            .map(|l| l.thickness_um)
            .collect();
        assert_eq!(bonds, vec![5.0, 20.0, 5.0]); // F2F, B2B, F2F (§4)
    }

    #[test]
    fn stack_is_thinner_than_a_millimetre_excluding_spreader() {
        let s = DieStack::four_die();
        let without_spreader: f64 = s
            .layers()
            .iter()
            .filter(|l| l.kind != LayerKind::Spreader)
            .map(|l| l.thickness_um)
            .sum();
        assert!(without_spreader < 1_000.0);
    }
}
