//! The processor blocks shared by the delay, power, thermal, and floorplan
//! models.

use std::fmt;

/// A microarchitectural block of the modelled core (plus the shared L2 and
/// the clock network).
///
/// This is the unit of accounting for everything physical: Table 2
/// latencies, per-block power, floorplan placement, and thermal maps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// L1 instruction cache (32 KB, 8-way).
    ICache,
    /// Instruction TLB (128-entry, 4-way).
    Itlb,
    /// Branch target buffer (2K-entry, 4-way) plus indirect BTB.
    Btb,
    /// Branch direction predictor (10 KB hybrid).
    Bpred,
    /// Decode plus the instruction fetch queue.
    Decode,
    /// Register rename and dependency-check logic.
    Rename,
    /// Reorder buffer (96 entries) including the physical registers.
    Rob,
    /// Instruction scheduler / reservation stations (32 entries) —
    /// the wakeup-select loop lives here.
    Scheduler,
    /// Architected/physical register file read/write ports.
    RegFile,
    /// Integer execution cluster (ALUs, shifters, multiplier).
    IntExec,
    /// Floating-point cluster (add, mul, div/sqrt).
    FpExec,
    /// Result bypass network.
    Bypass,
    /// Load and store queues (32/20 entries).
    Lsq,
    /// L1 data cache (32 KB, 8-way).
    DCache,
    /// Data TLB (256-entry, 4-way).
    Dtlb,
    /// Unified L2 cache (4 MB, 16-way; shared between the two cores).
    L2,
    /// Clock generation and distribution network.
    Clock,
}

impl Unit {
    /// Number of modelled units (`Unit::all().len()`), usable in array
    /// type positions.
    pub const COUNT: usize = 17;

    /// Every modelled unit.
    pub fn all() -> &'static [Unit] {
        use Unit::*;
        &[
            ICache, Itlb, Btb, Bpred, Decode, Rename, Rob, Scheduler, RegFile, IntExec, FpExec,
            Bypass, Lsq, DCache, Dtlb, L2, Clock,
        ]
    }

    /// Dense index of this unit in [`Unit::all`] order, `0..COUNT`.
    pub fn index(self) -> usize {
        use Unit::*;
        match self {
            ICache => 0,
            Itlb => 1,
            Btb => 2,
            Bpred => 3,
            Decode => 4,
            Rename => 5,
            Rob => 6,
            Scheduler => 7,
            RegFile => 8,
            IntExec => 9,
            FpExec => 10,
            Bypass => 11,
            Lsq => 12,
            DCache => 13,
            Dtlb => 14,
            L2 => 15,
            Clock => 16,
        }
    }

    /// Units that exist once per core (everything except the shared L2 and
    /// the global clock network).
    pub fn per_core() -> impl Iterator<Item = Unit> {
        Unit::all().iter().copied().filter(|u| !matches!(u, Unit::L2 | Unit::Clock))
    }

    /// Short display label used in tables and thermal maps.
    pub fn label(self) -> &'static str {
        use Unit::*;
        match self {
            ICache => "I-cache",
            Itlb => "I-TLB",
            Btb => "BTB",
            Bpred => "BPred",
            Decode => "Decode",
            Rename => "Rename",
            Rob => "ROB",
            Scheduler => "Scheduler",
            RegFile => "RegFile",
            IntExec => "IntExec",
            FpExec => "FPExec",
            Bypass => "Bypass",
            Lsq => "LSQ",
            DCache => "D-cache",
            Dtlb => "D-TLB",
            L2 => "L2",
            Clock => "Clock",
        }
    }

    /// Whether this unit's datapath is significance-partitioned (16 bits
    /// per die) in the 3D design, making it a direct Thermal Herding
    /// target (§3.1–§3.6).
    pub fn is_width_partitioned(self) -> bool {
        use Unit::*;
        matches!(self, RegFile | IntExec | Bypass | Lsq | DCache | Rob)
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_dense_and_matches_all_order() {
        assert_eq!(Unit::all().len(), Unit::COUNT);
        for (i, &u) in Unit::all().iter().enumerate() {
            assert_eq!(u.index(), i, "{u} out of order");
        }
    }

    #[test]
    fn all_units_have_unique_labels() {
        let mut seen = std::collections::HashSet::new();
        for &u in Unit::all() {
            assert!(seen.insert(u.label()), "duplicate label {}", u.label());
        }
    }

    #[test]
    fn per_core_excludes_shared() {
        let per_core: Vec<_> = Unit::per_core().collect();
        assert!(!per_core.contains(&Unit::L2));
        assert!(!per_core.contains(&Unit::Clock));
        assert_eq!(per_core.len(), Unit::all().len() - 2);
    }

    #[test]
    fn herding_targets_match_paper_sections() {
        // §3.1 register file, §3.2 arithmetic, §3.3 bypass, §3.5 LSQ,
        // §3.6 data cache, plus the ROB's physical registers (§5.3).
        assert!(Unit::RegFile.is_width_partitioned());
        assert!(Unit::IntExec.is_width_partitioned());
        assert!(Unit::Bypass.is_width_partitioned());
        assert!(Unit::Lsq.is_width_partitioned());
        assert!(Unit::DCache.is_width_partitioned());
        assert!(Unit::Rob.is_width_partitioned());
        // Front-end blocks are herded differently (memoization), not
        // width-partitioned.
        assert!(!Unit::ICache.is_width_partitioned());
        assert!(!Unit::Bpred.is_width_partitioned());
    }
}
