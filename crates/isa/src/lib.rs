//! # TH64: the instruction set for the Thermal Herding reproduction.
//!
//! The original paper evaluated its 3D microarchitecture with
//! SimpleScalar/MASE running Alpha binaries. Neither the toolchain nor the
//! SPEC binaries are available here, so this crate defines **TH64**, a small
//! 64-bit load/store RISC architecture that plays the same role: it gives the
//! cycle-level simulator in `th-sim` a real dynamic instruction stream with
//! real 64-bit values, so operand-width distributions, partial-address
//! locality, and branch behaviour are *measured* rather than assumed.
//!
//! The crate provides:
//!
//! * [`Reg`] — a unified 64-entry register namespace (`x0..x31` integer,
//!   `f0..f31` floating point), with `x0` hardwired to zero.
//! * [`Inst`]/[`Op`] — the instruction representation and opcode set.
//! * [`encode`]/[`decode`] — a fixed 64-bit binary encoding with a lossless
//!   round trip (property tested).
//! * [`Assembler`] — a programmatic builder with labels and fixups, plus a
//!   text assembler ([`parse_asm`]).
//! * [`Memory`] — a sparse, paged, little-endian memory image.
//! * [`Machine`] — the functional interpreter ("golden model"). The
//!   out-of-order timing model consumes the [`DynInst`] records it produces.
//!
//! ## Quick example
//!
//! ```
//! use th_isa::{Assembler, Machine, Program, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new(0x1000);
//! a.li(Reg::X1, 0);
//! a.li(Reg::X2, 10);
//! a.label("loop");
//! a.addi(Reg::X1, Reg::X1, 1);
//! a.bne(Reg::X1, Reg::X2, "loop");
//! a.halt();
//! let program: Program = a.assemble()?;
//!
//! let mut m = Machine::new(&program);
//! let summary = m.run(1_000)?;
//! assert_eq!(m.reg(Reg::X1), 10);
//! assert!(summary.halted);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod asm;
mod encode;
mod inst;
mod interp;
mod mem;
mod parse;
mod program;
mod reg;

pub use asm::{AsmError, Assembler};
pub use encode::{decode, encode, DecodeError};
pub use inst::{FuClass, Inst, Op, OpClass};
pub use interp::{DynInst, Machine, RunSummary, Trap};
pub use mem::Memory;
pub use parse::{parse_asm, ParseError};
pub use program::{DataSegment, Program};
pub use reg::Reg;
