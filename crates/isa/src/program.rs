//! Assembled program images.

use crate::inst::Inst;
use crate::mem::Memory;
use std::collections::HashMap;

/// A block of initialised data placed in memory before execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataSegment {
    /// Base address of the segment.
    pub base: u64,
    /// Raw little-endian bytes.
    pub bytes: Vec<u8>,
}

/// An assembled TH64 program: a text segment, initialised data segments, and
/// the label map produced by the assembler.
///
/// Programs are the unit of work handed to both the functional interpreter
/// ([`crate::Machine`]) and the cycle-level simulator in `th-sim`.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// Address of the first instruction.
    pub entry: u64,
    /// Instructions, contiguous from [`Program::entry`].
    pub text: Vec<Inst>,
    /// Initialised data segments.
    pub data: Vec<DataSegment>,
    /// Label name → address (text labels and data labels).
    pub labels: HashMap<String, u64>,
}

impl Program {
    /// Fetches the instruction at `pc`, or `None` if `pc` is outside the
    /// text segment or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if pc < self.entry || !(pc - self.entry).is_multiple_of(Inst::SIZE) {
            return None;
        }
        self.text.get(((pc - self.entry) / Inst::SIZE) as usize)
    }

    /// Address one past the last instruction.
    pub fn text_end(&self) -> u64 {
        self.entry + self.text.len() as u64 * Inst::SIZE
    }

    /// Looks up a label address.
    pub fn label(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Builds a fresh memory image with all data segments (and the encoded
    /// text, so indirect reads of code behave sensibly) loaded.
    pub fn build_memory(&self) -> Memory {
        let mut mem = Memory::new();
        for (i, inst) in self.text.iter().enumerate() {
            mem.write_u64(self.entry + i as u64 * Inst::SIZE, crate::encode(inst));
        }
        for seg in &self.data {
            mem.write_slice(seg.base, &seg.bytes);
        }
        mem
    }

    /// Static instruction count.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// Whether the text segment is empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Op};
    use crate::reg::Reg;

    fn sample() -> Program {
        Program {
            entry: 0x1000,
            text: vec![
                Inst::rri(Op::Addi, Reg::X1, Reg::X0, 1),
                Inst::rri(Op::Addi, Reg::X2, Reg::X0, 2),
                Inst::halt(),
            ],
            data: vec![DataSegment { base: 0x8000, bytes: vec![9, 8, 7] }],
            labels: [("start".to_string(), 0x1000u64)].into_iter().collect(),
        }
    }

    #[test]
    fn fetch_in_range() {
        let p = sample();
        assert_eq!(p.fetch(0x1000).unwrap().op, Op::Addi);
        assert_eq!(p.fetch(0x1010).unwrap().op, Op::Halt);
        assert!(p.fetch(0x0ff8).is_none());
        assert!(p.fetch(0x1018).is_none());
        assert!(p.fetch(0x1004).is_none(), "misaligned fetch must fail");
        assert_eq!(p.text_end(), 0x1018);
    }

    #[test]
    fn memory_image_contains_text_and_data() {
        let p = sample();
        let mem = p.build_memory();
        assert_eq!(crate::decode(mem.read_u64(0x1000)).unwrap(), p.text[0]);
        assert_eq!(mem.read_u8(0x8000), 9);
        assert_eq!(mem.read_u8(0x8002), 7);
    }

    #[test]
    fn label_lookup() {
        let p = sample();
        assert_eq!(p.label("start"), Some(0x1000));
        assert_eq!(p.label("missing"), None);
    }
}
