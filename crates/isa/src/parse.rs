//! Text assembler for TH64.
//!
//! A small line-oriented syntax, enough to write tests and examples in
//! readable assembly:
//!
//! ```text
//! # comments run to end of line
//! .entry 0x1000          ; set the text base (default 0x1000)
//! .data  table 1, 2, 3   ; u64 array in the data segment
//! .zeros buf 64          ; zeroed bytes
//!
//!         li   x1, 0
//!         la   x2, table
//! loop:   ld   x3, 0(x2)
//!         add  x1, x1, x3
//!         addi x2, x2, 8
//!         addi x4, x4, 1
//!         slti x5, x4, 3
//!         bne  x5, x0, loop
//!         halt
//! ```

use crate::asm::{AsmError, Assembler};
use crate::inst::{Inst, Op, OpClass};
use crate::program::Program;
use crate::reg::{parse_reg, Reg};
use std::fmt;

/// Error produced by [`parse_asm`], with a 1-based source line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError { line: 0, message: e.to_string() }
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok().or_else(|| u64::from_str_radix(hex, 16).ok().map(|v| v as i64))?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { value.wrapping_neg() } else { value })
}

fn parse_reg_or(line: usize, s: &str) -> Result<Reg, ParseError> {
    parse_reg(s.trim()).ok_or_else(|| err(line, format!("expected register, found `{s}`")))
}

fn parse_imm_or(line: usize, s: &str) -> Result<i32, ParseError> {
    let v = parse_int(s).ok_or_else(|| err(line, format!("expected integer, found `{s}`")))?;
    i32::try_from(v).map_err(|_| err(line, format!("immediate `{s}` out of 32-bit range")))
}

/// Parses `imm(base)` memory operand syntax.
fn parse_mem_operand(line: usize, s: &str) -> Result<(i32, Reg), ParseError> {
    let s = s.trim();
    let open = s.find('(').ok_or_else(|| err(line, format!("expected `imm(reg)`, found `{s}`")))?;
    let close = s.rfind(')').ok_or_else(|| err(line, "missing `)`"))?;
    let imm_str = &s[..open];
    let imm = if imm_str.trim().is_empty() { 0 } else { parse_imm_or(line, imm_str)? };
    let base = parse_reg_or(line, &s[open + 1..close])?;
    Ok((imm, base))
}

/// Assembles TH64 source text into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown mnemonics, malformed
/// operands, or (with line 0) label errors surfaced by the assembler.
///
/// ```
/// use th_isa::{parse_asm, Machine, Reg};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_asm("
///     li   x1, 6
///     li   x2, 7
///     mul  x3, x1, x2
///     halt
/// ")?;
/// let mut m = Machine::new(&p);
/// m.run(100)?;
/// assert_eq!(m.reg(Reg::X3), 42);
/// # Ok(())
/// # }
/// ```
pub fn parse_asm(src: &str) -> Result<Program, ParseError> {
    // First pass: find `.entry` so the assembler starts at the right base.
    let mut entry = 0x1000u64;
    for line in src.lines() {
        let line = strip_comment(line).trim();
        if let Some(rest) = line.strip_prefix(".entry") {
            entry = parse_int(rest)
                .ok_or_else(|| err(0, "malformed .entry"))?
                .try_into()
                .map_err(|_| err(0, ".entry must be non-negative"))?;
        }
    }

    let mut a = Assembler::new(entry);
    for (lineno, raw) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let mut line = strip_comment(raw).trim();
        // Leading labels (possibly several).
        while let Some(colon) = line.find(':') {
            let (label, rest) = line.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(err(lineno, format!("malformed label `{label}`")));
            }
            a.label(label);
            line = rest[1..].trim();
        }
        if line.is_empty() {
            continue;
        }
        if let Some(directive) = line.strip_prefix('.') {
            parse_directive(&mut a, lineno, directive)?;
            continue;
        }
        parse_instruction(&mut a, lineno, line)?;
    }
    a.assemble().map_err(ParseError::from)
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find(['#', ';']).unwrap_or(line.len());
    &line[..cut]
}

fn parse_directive(a: &mut Assembler, lineno: usize, directive: &str) -> Result<(), ParseError> {
    let (name, rest) = directive.split_once(char::is_whitespace).unwrap_or((directive, ""));
    match name {
        "entry" => Ok(()), // handled in the pre-pass
        "data" => {
            let (label, values) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(lineno, ".data needs a label and values"))?;
            let vals: Result<Vec<u64>, _> = values
                .split(',')
                .map(|v| {
                    parse_int(v)
                        .map(|i| i as u64)
                        .ok_or_else(|| err(lineno, format!("bad value `{}`", v.trim())))
                })
                .collect();
            a.data_u64s(label.trim(), &vals?);
            Ok(())
        }
        "zeros" => {
            let (label, len) = rest
                .trim()
                .split_once(char::is_whitespace)
                .ok_or_else(|| err(lineno, ".zeros needs a label and a length"))?;
            let len = parse_int(len)
                .and_then(|v| usize::try_from(v).ok())
                .ok_or_else(|| err(lineno, "bad .zeros length"))?;
            a.data_zeros(label.trim(), len);
            Ok(())
        }
        other => Err(err(lineno, format!("unknown directive `.{other}`"))),
    }
}

fn parse_instruction(a: &mut Assembler, lineno: usize, line: &str) -> Result<(), ParseError> {
    let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let operands: Vec<&str> =
        rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let nops = operands.len();
    let want = |n: usize| -> Result<(), ParseError> {
        if nops == n {
            Ok(())
        } else {
            Err(err(lineno, format!("`{mnemonic}` expects {n} operands, found {nops}")))
        }
    };

    // Pseudo-instructions first.
    match mnemonic {
        "li" => {
            want(2)?;
            let rd = parse_reg_or(lineno, operands[0])?;
            let v = parse_int(operands[1])
                .ok_or_else(|| err(lineno, format!("bad constant `{}`", operands[1])))?;
            a.li(rd, v);
            return Ok(());
        }
        "la" => {
            want(2)?;
            let rd = parse_reg_or(lineno, operands[0])?;
            a.la(rd, operands[1]);
            return Ok(());
        }
        "mv" => {
            want(2)?;
            let rd = parse_reg_or(lineno, operands[0])?;
            let rs = parse_reg_or(lineno, operands[1])?;
            a.mv(rd, rs);
            return Ok(());
        }
        "jmp" | "j" => {
            want(1)?;
            a.jmp(operands[0]);
            return Ok(());
        }
        "call" => {
            want(1)?;
            a.call(operands[0]);
            return Ok(());
        }
        "ret" => {
            want(0)?;
            a.ret();
            return Ok(());
        }
        _ => {}
    }

    let op = *Op::all()
        .iter()
        .find(|o| o.mnemonic() == mnemonic)
        .ok_or_else(|| err(lineno, format!("unknown mnemonic `{mnemonic}`")))?;

    match op.class() {
        OpClass::Misc => {
            want(0)?;
            a.emit(Inst { op, rd: Reg::X0, rs1: Reg::X0, rs2: Reg::X0, imm: 0 });
        }
        OpClass::Load => {
            want(2)?;
            let rd = parse_reg_or(lineno, operands[0])?;
            let (imm, base) = parse_mem_operand(lineno, operands[1])?;
            a.emit(Inst { op, rd, rs1: base, rs2: Reg::X0, imm });
        }
        OpClass::Store => {
            want(2)?;
            let src = parse_reg_or(lineno, operands[0])?;
            let (imm, base) = parse_mem_operand(lineno, operands[1])?;
            a.emit(Inst { op, rd: Reg::X0, rs1: base, rs2: src, imm });
        }
        OpClass::Control => match op {
            Op::Jal => {
                want(2)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                // Accept a numeric byte displacement or a label.
                if let Some(disp) = parse_int(operands[1]) {
                    let imm = i32::try_from(disp)
                        .map_err(|_| err(lineno, "jump displacement out of range"))?;
                    a.emit(Inst { op, rd, rs1: Reg::X0, rs2: Reg::X0, imm });
                } else {
                    a.jal(rd, operands[1]);
                }
            }
            Op::Jalr => {
                want(2)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                let (imm, base) = parse_mem_operand(lineno, operands[1])?;
                a.jalr(rd, base, imm);
                let _ = base;
            }
            _ => {
                want(3)?;
                let rs1 = parse_reg_or(lineno, operands[0])?;
                let rs2 = parse_reg_or(lineno, operands[1])?;
                // Allow numeric displacement or label.
                if let Some(disp) = parse_int(operands[2]) {
                    let imm = i32::try_from(disp)
                        .map_err(|_| err(lineno, "branch displacement out of range"))?;
                    a.emit(Inst { op, rd: Reg::X0, rs1, rs2, imm });
                } else {
                    match op {
                        Op::Beq => a.beq(rs1, rs2, operands[2]),
                        Op::Bne => a.bne(rs1, rs2, operands[2]),
                        Op::Blt => a.blt(rs1, rs2, operands[2]),
                        Op::Bge => a.bge(rs1, rs2, operands[2]),
                        Op::Bltu => a.bltu(rs1, rs2, operands[2]),
                        Op::Bgeu => a.bgeu(rs1, rs2, operands[2]),
                        _ => unreachable!("conditional branch"),
                    }
                }
            }
        },
        _ => {
            if op == Op::Lui {
                want(2)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                let imm = parse_imm_or(lineno, operands[1])?;
                a.lui(rd, imm);
            } else if op.reads_rs2() {
                want(3)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                let rs1 = parse_reg_or(lineno, operands[1])?;
                let rs2 = parse_reg_or(lineno, operands[2])?;
                a.emit(Inst::rrr(op, rd, rs1, rs2));
            } else if matches!(op, Op::Fsqrt | Op::Fcvtdl | Op::Fcvtld | Op::Fmvxd | Op::Fmvdx) {
                want(2)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                let rs1 = parse_reg_or(lineno, operands[1])?;
                a.emit(Inst { op, rd, rs1, rs2: Reg::X0, imm: 0 });
            } else {
                want(3)?;
                let rd = parse_reg_or(lineno, operands[0])?;
                let rs1 = parse_reg_or(lineno, operands[1])?;
                let imm = parse_imm_or(lineno, operands[2])?;
                a.emit(Inst::rri(op, rd, rs1, imm));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Machine;

    #[test]
    fn parses_and_runs_sum_loop() {
        let p = parse_asm(
            "
            .data table 10, 20, 30
                    li   x1, 0
                    la   x2, table
                    li   x4, 0
            loop:   ld   x3, 0(x2)
                    add  x1, x1, x3
                    addi x2, x2, 8
                    addi x4, x4, 1
                    slti x5, x4, 3
                    bne  x5, x0, loop
                    halt
            ",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(1000).unwrap();
        assert_eq!(m.reg(Reg::X1), 60);
    }

    #[test]
    fn entry_directive_moves_text() {
        let p = parse_asm(".entry 0x4000\n nop\n halt\n").unwrap();
        assert_eq!(p.entry, 0x4000);
        assert!(p.fetch(0x4000).is_some());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_asm("# header\n\n; another\n nop # trailing\n halt\n").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = parse_asm("nop\n bogus x1, x2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn operand_count_checked() {
        let e = parse_asm("add x1, x2\n").unwrap_err();
        assert!(e.message.contains("expects 3"));
    }

    #[test]
    fn store_operand_order() {
        let p = parse_asm(
            ".zeros buf 8\n la x2, buf\n li x1, 7\n sd x1, 0(x2)\n ld x3, 0(x2)\n halt\n",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::X3), 7);
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = parse_asm(" li x1, 0x10\n addi x2, x1, -0x8\n halt\n").unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::X2), 8);
    }

    #[test]
    fn call_ret_roundtrip() {
        let p = parse_asm(
            " li x10, 4\n call dbl\n halt\n dbl: add x10, x10, x10\n ret\n",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::X10), 8);
    }

    #[test]
    fn fp_unary_syntax() {
        let p = parse_asm(" li x1, 16\n fcvt.d.l f1, x1\n fsqrt f2, f1\n fcvt.l.d x2, f2\n halt\n")
            .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(Reg::X2), 4);
    }

    #[test]
    fn labels_on_own_line() {
        let p = parse_asm("start:\n nop\n jmp end\n nop\nend:\n halt\n").unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert!(m.is_halted());
        assert_eq!(m.instructions(), 3);
    }
}
