//! Instruction and opcode definitions.

use crate::reg::Reg;
use std::fmt;

/// TH64 opcodes.
///
/// The set is deliberately RISC-flavoured: three-operand register ALU ops,
/// register+immediate ALU ops, sized loads/stores, compare-and-branch, and a
/// compact double-precision floating-point group. This covers every
/// instruction class the paper's datapath techniques distinguish (integer
/// datapath, memory, control, floating point).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Op {
    // Integer register-register ALU.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Mulh,
    Div,
    Rem,
    // Integer register-immediate ALU.
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    Sltiu,
    /// Load upper immediate: `rd = imm << 16` (builds wide constants).
    Lui,
    // Loads (sign/zero extended as suffix indicates; little endian).
    Lb,
    Lbu,
    Lh,
    Lhu,
    Lw,
    Lwu,
    Ld,
    /// Double-precision FP load (into an `f` register).
    Fld,
    // Stores.
    Sb,
    Sh,
    Sw,
    Sd,
    /// Double-precision FP store (from an `f` register).
    Fsd,
    // Control flow: compare-and-branch plus jumps.
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    /// Jump and link: `rd = pc + 8; pc += imm` (direct).
    Jal,
    /// Jump and link register: `rd = pc + 8; pc = (rs1 + imm)` (indirect).
    Jalr,
    // Double-precision floating point (values live in `f` registers as
    // IEEE-754 bit patterns).
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fsqrt,
    Fmin,
    Fmax,
    /// FP compare `rd(int) = (rs1 == rs2)`.
    Feq,
    /// FP compare `rd(int) = (rs1 < rs2)`.
    Flt,
    /// FP compare `rd(int) = (rs1 <= rs2)`.
    Fle,
    /// Convert signed 64-bit integer (rs1, `x`) to double (rd, `f`).
    Fcvtdl,
    /// Convert double (rs1, `f`) to signed 64-bit integer (rd, `x`).
    Fcvtld,
    /// Move raw bits from `f` (rs1) to `x` (rd).
    Fmvxd,
    /// Move raw bits from `x` (rs1) to `f` (rd).
    Fmvdx,
    // Miscellaneous.
    Nop,
    /// Stops the machine; the simulator treats it as end-of-program.
    Halt,
}

/// Broad instruction class, used by the timing model for dispatch rules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU (including compares, shifts as a subclass via [`FuClass`]).
    IntAlu,
    /// Integer multiply/divide.
    IntMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch or jump.
    Control,
    /// Floating-point arithmetic.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// No-op / halt.
    Misc,
}

/// Functional-unit class required to execute an instruction, matching the
/// paper's Table 1 execution resources (3 ALU, 2 shift, 1 mult/complex;
/// FP add, FP mult, FP div/sqrt; load/store ports).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Simple integer ALU (3 units).
    IntAlu,
    /// Shifter (2 units).
    IntShift,
    /// Integer multiply/divide/complex (1 unit).
    IntMul,
    /// FP adder (1 unit).
    FpAdd,
    /// FP multiplier (1 unit).
    FpMul,
    /// FP divide/sqrt (1 unit).
    FpDiv,
    /// Memory port: load-or-store capable (1) plus load-only (1).
    Mem,
    /// Needs no functional unit (nop/halt).
    None,
}

impl Op {
    /// The broad class of this opcode.
    pub fn class(self) -> OpClass {
        use Op::*;
        match self {
            Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Addi | Andi | Ori
            | Xori | Slli | Srli | Srai | Slti | Sltiu | Lui => OpClass::IntAlu,
            Mul | Mulh | Div | Rem => OpClass::IntMul,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => OpClass::Load,
            Sb | Sh | Sw | Sd | Fsd => OpClass::Store,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Jal | Jalr => OpClass::Control,
            Fadd | Fsub | Fmin | Fmax | Feq | Flt | Fle | Fcvtdl | Fcvtld | Fmvxd | Fmvdx => {
                OpClass::FpAlu
            }
            Fmul => OpClass::FpMul,
            Fdiv | Fsqrt => OpClass::FpDiv,
            Nop | Halt => OpClass::Misc,
        }
    }

    /// The functional unit class this opcode issues to.
    pub fn fu_class(self) -> FuClass {
        use Op::*;
        match self.class() {
            OpClass::IntAlu => match self {
                Sll | Srl | Sra | Slli | Srli | Srai => FuClass::IntShift,
                _ => FuClass::IntAlu,
            },
            OpClass::IntMul => FuClass::IntMul,
            OpClass::Load | OpClass::Store => FuClass::Mem,
            OpClass::Control => FuClass::IntAlu,
            OpClass::FpAlu => FuClass::FpAdd,
            OpClass::FpMul => FuClass::FpMul,
            OpClass::FpDiv => FuClass::FpDiv,
            OpClass::Misc => FuClass::None,
        }
    }

    /// Whether this opcode reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        !matches!(self, Op::Lui | Op::Jal | Op::Nop | Op::Halt)
    }

    /// Whether this opcode reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        use Op::*;
        matches!(
            self,
            Add | Sub
                | And
                | Or
                | Xor
                | Sll
                | Srl
                | Sra
                | Slt
                | Sltu
                | Mul
                | Mulh
                | Div
                | Rem
                | Sb
                | Sh
                | Sw
                | Sd
                | Fsd
                | Beq
                | Bne
                | Blt
                | Bge
                | Bltu
                | Bgeu
                | Fadd
                | Fsub
                | Fmul
                | Fdiv
                | Fmin
                | Fmax
                | Feq
                | Flt
                | Fle
        )
    }

    /// Whether this opcode writes `rd`.
    pub fn writes_rd(self) -> bool {
        use Op::*;
        !matches!(
            self,
            Sb | Sh | Sw | Sd | Fsd | Beq | Bne | Blt | Bge | Bltu | Bgeu | Nop | Halt
        )
    }

    /// Whether this opcode is a conditional branch.
    pub fn is_cond_branch(self) -> bool {
        use Op::*;
        matches!(self, Beq | Bne | Blt | Bge | Bltu | Bgeu)
    }

    /// Whether this opcode is any control transfer (branch or jump).
    pub fn is_control(self) -> bool {
        self.class() == OpClass::Control
    }

    /// Whether this opcode is an indirect jump.
    pub fn is_indirect(self) -> bool {
        matches!(self, Op::Jalr)
    }

    /// Whether this opcode accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self.class(), OpClass::Load | OpClass::Store)
    }

    /// Memory access size in bytes (loads/stores only).
    pub fn mem_size(self) -> Option<u8> {
        use Op::*;
        match self {
            Lb | Lbu | Sb => Some(1),
            Lh | Lhu | Sh => Some(2),
            Lw | Lwu | Sw => Some(4),
            Ld | Sd | Fld | Fsd => Some(8),
            _ => None,
        }
    }

    /// The lowercase mnemonic, as accepted by the text assembler.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Mulh => "mulh",
            Div => "div",
            Rem => "rem",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Sltiu => "sltiu",
            Lui => "lui",
            Lb => "lb",
            Lbu => "lbu",
            Lh => "lh",
            Lhu => "lhu",
            Lw => "lw",
            Lwu => "lwu",
            Ld => "ld",
            Fld => "fld",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Sd => "sd",
            Fsd => "fsd",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Jal => "jal",
            Jalr => "jalr",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fsqrt => "fsqrt",
            Fmin => "fmin",
            Fmax => "fmax",
            Feq => "feq",
            Flt => "flt",
            Fle => "fle",
            Fcvtdl => "fcvt.d.l",
            Fcvtld => "fcvt.l.d",
            Fmvxd => "fmv.x.d",
            Fmvdx => "fmv.d.x",
            Nop => "nop",
            Halt => "halt",
        }
    }

    /// Every opcode, in encoding order. Useful for exhaustive tests.
    pub fn all() -> &'static [Op] {
        use Op::*;
        &[
            Add, Sub, And, Or, Xor, Sll, Srl, Sra, Slt, Sltu, Mul, Mulh, Div, Rem, Addi, Andi,
            Ori, Xori, Slli, Srli, Srai, Slti, Sltiu, Lui, Lb, Lbu, Lh, Lhu, Lw, Lwu, Ld, Fld,
            Sb, Sh, Sw, Sd, Fsd, Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr, Fadd, Fsub, Fmul,
            Fdiv, Fsqrt, Fmin, Fmax, Feq, Flt, Fle, Fcvtdl, Fcvtld, Fmvxd, Fmvdx, Nop, Halt,
        ]
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded TH64 instruction.
///
/// All instructions share one uniform operand layout — a destination, two
/// sources, and a 32-bit signed immediate — with each opcode using the subset
/// it needs. Unused fields are `x0`/`0`. This uniformity is what lets the
/// out-of-order core in `th-sim` treat renaming and wakeup generically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination register (ignored when [`Op::writes_rd`] is false).
    pub rd: Reg,
    /// First source register.
    pub rs1: Reg,
    /// Second source register.
    pub rs2: Reg,
    /// Signed 32-bit immediate (branch/jump displacement in bytes, load/store
    /// offset, ALU immediate, shift amount).
    pub imm: i32,
}

impl Inst {
    /// Size of one encoded instruction in bytes.
    pub const SIZE: u64 = 8;

    /// Builds a register-register instruction.
    pub fn rrr(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst { op, rd, rs1, rs2, imm: 0 }
    }

    /// Builds a register-immediate instruction.
    pub fn rri(op: Op, rd: Reg, rs1: Reg, imm: i32) -> Inst {
        Inst { op, rd, rs1, rs2: Reg::X0, imm }
    }

    /// A canonical `nop`.
    pub fn nop() -> Inst {
        Inst { op: Op::Nop, rd: Reg::X0, rs1: Reg::X0, rs2: Reg::X0, imm: 0 }
    }

    /// A `halt`.
    pub fn halt() -> Inst {
        Inst { op: Op::Halt, rd: Reg::X0, rs1: Reg::X0, rs2: Reg::X0, imm: 0 }
    }

    /// Source registers this instruction actually reads (excluding `x0`).
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        let a = if self.op.reads_rs1() && !self.rs1.is_zero() { Some(self.rs1) } else { None };
        let b = if self.op.reads_rs2() && !self.rs2.is_zero() { Some(self.rs2) } else { None };
        a.into_iter().chain(b)
    }

    /// Destination register, if this instruction writes one (excluding `x0`).
    pub fn dest(&self) -> Option<Reg> {
        if self.op.writes_rd() && !self.rd.is_zero() {
            Some(self.rd)
        } else {
            None
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use OpClass::*;
        match self.op.class() {
            Load => write!(f, "{} {}, {}({})", self.op, self.rd, self.imm, self.rs1),
            Store => write!(f, "{} {}, {}({})", self.op, self.rs2, self.imm, self.rs1),
            Control if self.op == Op::Jal => write!(f, "jal {}, {}", self.rd, self.imm),
            Control if self.op == Op::Jalr => {
                write!(f, "jalr {}, {}({})", self.rd, self.imm, self.rs1)
            }
            Control => write!(f, "{} {}, {}, {}", self.op, self.rs1, self.rs2, self.imm),
            _ if self.op == Op::Nop || self.op == Op::Halt => write!(f, "{}", self.op),
            _ if self.op == Op::Lui => write!(f, "lui {}, {}", self.rd, self.imm),
            _ if self.op.reads_rs2() => {
                write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.rs2)
            }
            _ if self.op.reads_rs1() => {
                if matches!(self.op, Op::Fsqrt | Op::Fcvtdl | Op::Fcvtld | Op::Fmvxd | Op::Fmvdx)
                {
                    write!(f, "{} {}, {}", self.op, self.rd, self.rs1)
                } else {
                    write!(f, "{} {}, {}, {}", self.op, self.rd, self.rs1, self.imm)
                }
            }
            _ => write!(f, "{} {}, {}", self.op, self.rd, self.imm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        for &op in Op::all() {
            let class = op.class();
            if op.is_mem() {
                assert!(op.mem_size().is_some(), "{op} has no mem size");
                assert_eq!(op.fu_class(), FuClass::Mem);
            } else {
                assert!(op.mem_size().is_none(), "{op} has a mem size");
            }
            if op.is_cond_branch() {
                assert_eq!(class, OpClass::Control);
                assert!(!op.writes_rd());
            }
        }
    }

    #[test]
    fn stores_do_not_write_rd() {
        for &op in &[Op::Sb, Op::Sh, Op::Sw, Op::Sd, Op::Fsd] {
            assert!(!op.writes_rd());
            assert!(op.reads_rs1() && op.reads_rs2());
        }
    }

    #[test]
    fn sources_skip_x0() {
        let i = Inst::rrr(Op::Add, Reg::X1, Reg::X0, Reg::X2);
        let srcs: Vec<_> = i.sources().collect();
        assert_eq!(srcs, vec![Reg::X2]);
        assert_eq!(i.dest(), Some(Reg::X1));

        let store = Inst { op: Op::Sd, rd: Reg::X0, rs1: Reg::X3, rs2: Reg::X4, imm: 8 };
        let srcs: Vec<_> = store.sources().collect();
        assert_eq!(srcs, vec![Reg::X3, Reg::X4]);
        assert_eq!(store.dest(), None);
    }

    #[test]
    fn writes_to_x0_are_not_dests() {
        let i = Inst::rrr(Op::Add, Reg::X0, Reg::X1, Reg::X2);
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Op::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op.mnemonic());
        }
        assert_eq!(seen.len(), Op::all().len());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Inst::rrr(Op::Add, Reg::X1, Reg::X2, Reg::X3).to_string(), "add x1, x2, x3");
        assert_eq!(Inst::rri(Op::Ld, Reg::X1, Reg::X2, 16).to_string(), "ld x1, 16(x2)");
        assert_eq!(
            Inst { op: Op::Sd, rd: Reg::X0, rs1: Reg::X2, rs2: Reg::X5, imm: -8 }.to_string(),
            "sd x5, -8(x2)"
        );
        assert_eq!(Inst::nop().to_string(), "nop");
    }
}
