//! Fixed 64-bit binary encoding.
//!
//! Layout (little-endian when stored to memory):
//!
//! ```text
//! bits  0..8   opcode     (one byte; index into the opcode table)
//! bits  8..16  rd         (flat register index, 0..64)
//! bits 16..24  rs1
//! bits 24..32  rs2
//! bits 32..64  imm        (signed 32-bit)
//! ```
//!
//! The encoding is intentionally loose — 8 bytes per instruction instead of
//! a packed 4 — because nothing in the reproduced experiments depends on code
//! density, and the wide immediate keeps the assembler simple. The paper's
//! mechanisms depend on *data-value* widths, not instruction widths.

use crate::inst::{Inst, Op};
use crate::reg::Reg;
use std::fmt;

/// Error produced when decoding a malformed instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name a TH64 instruction.
    BadOpcode(u8),
    /// A register field exceeds the architectural register count.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadRegister(b) => write!(f, "invalid register index {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction into its 64-bit word.
///
/// ```
/// use th_isa::{encode, decode, Inst, Op, Reg};
/// let i = Inst::rri(Op::Addi, Reg::X1, Reg::X2, -5);
/// assert_eq!(decode(encode(&i)).unwrap(), i);
/// ```
pub fn encode(inst: &Inst) -> u64 {
    let opcode = Op::all().iter().position(|&o| o == inst.op).expect("op in table") as u64;
    opcode
        | (inst.rd.index() as u64) << 8
        | (inst.rs1.index() as u64) << 16
        | (inst.rs2.index() as u64) << 24
        | (inst.imm as u32 as u64) << 32
}

/// Decodes a 64-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode byte or any register field is out
/// of range.
pub fn decode(word: u64) -> Result<Inst, DecodeError> {
    let opcode = (word & 0xff) as u8;
    let op = *Op::all().get(opcode as usize).ok_or(DecodeError::BadOpcode(opcode))?;
    let reg = |b: u8| Reg::from_index(b as usize).ok_or(DecodeError::BadRegister(b));
    Ok(Inst {
        op,
        rd: reg((word >> 8) as u8)?,
        rs1: reg((word >> 16) as u8)?,
        rs2: reg((word >> 24) as u8)?,
        imm: (word >> 32) as u32 as i32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_opcodes() {
        for &op in Op::all() {
            let i = Inst { op, rd: Reg::X3, rs1: Reg::F1, rs2: Reg::X31, imm: -123456 };
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 0xffu64;
        assert_eq!(decode(word), Err(DecodeError::BadOpcode(0xff)));
    }

    #[test]
    fn bad_register_rejected() {
        // opcode 0 (add), rd = 64 (out of range).
        let word = 64u64 << 8;
        assert_eq!(decode(word), Err(DecodeError::BadRegister(64)));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!DecodeError::BadOpcode(0xab).to_string().is_empty());
        assert!(!DecodeError::BadRegister(99).to_string().is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_random(opidx in 0..Op::all().len(), rd in 0usize..64, rs1 in 0usize..64,
                            rs2 in 0usize..64, imm in any::<i32>()) {
            let i = Inst {
                op: Op::all()[opidx],
                rd: Reg::from_index(rd).unwrap(),
                rs1: Reg::from_index(rs1).unwrap(),
                rs2: Reg::from_index(rs2).unwrap(),
                imm,
            };
            prop_assert_eq!(decode(encode(&i)).unwrap(), i);
        }

        #[test]
        fn decode_never_panics(word in any::<u64>()) {
            let _ = decode(word);
        }

        #[test]
        fn decode_encode_fixpoint(word in any::<u64>()) {
            // Any word that decodes successfully re-encodes to a word that
            // decodes to the same instruction (encode is a canonical form).
            if let Ok(inst) = decode(word) {
                prop_assert_eq!(decode(encode(&inst)).unwrap(), inst);
            }
        }
    }
}
