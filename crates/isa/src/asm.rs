//! Programmatic assembler with labels, fixups, and data segments.

use crate::inst::{Inst, Op};
use crate::program::{DataSegment, Program};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Error produced while assembling a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for AsmError {}

/// Which field of a pending instruction a label resolves into.
#[derive(Clone, Debug)]
enum Fixup {
    /// PC-relative byte displacement into `imm` (branches, `jal`).
    Relative { index: usize, label: String },
    /// Absolute address into `imm` (e.g. `la` lowered through `lui`/`ori`):
    /// the chunk shifted right by `shift` and masked to 16 bits.
    AbsoluteChunk { index: usize, label: String, shift: u32 },
}

/// Builds TH64 programs instruction by instruction.
///
/// The builder offers one method per opcode plus the usual pseudo-ops
/// (`li`, `la`, `mv`, `jmp`, `call`, `ret`). Control transfers name labels;
/// displacements are resolved by [`Assembler::assemble`].
///
/// ```
/// use th_isa::{Assembler, Reg};
///
/// # fn main() -> Result<(), th_isa::AsmError> {
/// let mut a = Assembler::new(0x1000);
/// a.li(Reg::X1, 41);
/// a.addi(Reg::X1, Reg::X1, 1);
/// a.halt();
/// let p = a.assemble()?;
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Assembler {
    entry: u64,
    text: Vec<Inst>,
    labels: HashMap<String, u64>,
    fixups: Vec<Fixup>,
    data: Vec<DataSegment>,
    data_cursor: u64,
}

impl Assembler {
    /// Default base address for auto-placed data segments.
    pub const DEFAULT_DATA_BASE: u64 = 0x10_0000;

    /// Creates an assembler whose first instruction lands at `entry`.
    pub fn new(entry: u64) -> Assembler {
        Assembler {
            entry,
            text: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            data: Vec::new(),
            data_cursor: Self::DEFAULT_DATA_BASE,
        }
    }

    /// Address the next emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        self.entry + self.text.len() as u64 * Inst::SIZE
    }

    /// Defines `name` at the current text position.
    ///
    /// Duplicate definitions are reported by [`Assembler::assemble`].
    pub fn label(&mut self, name: &str) {
        // Record the first definition; a duplicate is flagged at assemble
        // time by shadow-tracking in `duplicates`.
        if self.labels.insert(name.to_string(), self.here()).is_some() {
            self.fixups.push(Fixup::Relative { index: usize::MAX, label: format!("\0dup:{name}") });
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.text.push(inst);
    }

    // ---- data segments -------------------------------------------------

    /// Places `bytes` at the next free data address (8-byte aligned),
    /// defines `name` there, and returns the address.
    pub fn data_bytes(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let base = self.data_cursor;
        self.labels.insert(name.to_string(), base);
        self.data.push(DataSegment { base, bytes: bytes.to_vec() });
        self.data_cursor = (base + bytes.len() as u64 + 7) & !7;
        base
    }

    /// Places an array of `u64` values in the data segment.
    pub fn data_u64s(&mut self, name: &str, values: &[u64]) -> u64 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(name, &bytes)
    }

    /// Places an array of `f64` values in the data segment.
    pub fn data_f64s(&mut self, name: &str, values: &[f64]) -> u64 {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        self.data_bytes(name, &bytes)
    }

    /// Reserves `len` zeroed bytes in the data segment.
    pub fn data_zeros(&mut self, name: &str, len: usize) -> u64 {
        self.data_bytes(name, &vec![0u8; len])
    }

    // ---- finishing -----------------------------------------------------

    /// Resolves fixups and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if any referenced label was
    /// never defined, or [`AsmError::DuplicateLabel`] for double
    /// definitions.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        for fixup in &self.fixups {
            match fixup {
                Fixup::Relative { index, label } => {
                    if let Some(name) = label.strip_prefix("\0dup:") {
                        return Err(AsmError::DuplicateLabel(name.to_string()));
                    }
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    let pc = self.entry + *index as u64 * Inst::SIZE;
                    self.text[*index].imm = target.wrapping_sub(pc) as i64 as i32;
                }
                Fixup::AbsoluteChunk { index, label, shift } => {
                    let target = *self
                        .labels
                        .get(label)
                        .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))?;
                    self.text[*index].imm = ((target >> shift) & 0xffff) as i32;
                }
            }
        }
        Ok(Program { entry: self.entry, text: self.text, data: self.data, labels: self.labels })
    }

    // ---- pseudo-instructions --------------------------------------------

    /// Loads an arbitrary 64-bit constant (1–6 instructions).
    pub fn li(&mut self, rd: Reg, value: i64) {
        if let Ok(v) = i32::try_from(value) {
            self.addi(rd, Reg::X0, v);
        } else if let Ok(hi) = i32::try_from(value >> 16) {
            // Fits in 48 bits signed: lui + ori.
            self.lui(rd, hi);
            self.ori(rd, rd, (value & 0xffff) as i32);
        } else {
            let v = value as u64;
            self.lui(rd, ((v >> 48) & 0xffff) as i32);
            self.ori(rd, rd, ((v >> 32) & 0xffff) as i32);
            self.slli(rd, rd, 16);
            self.ori(rd, rd, ((v >> 16) & 0xffff) as i32);
            self.slli(rd, rd, 16);
            self.ori(rd, rd, (v & 0xffff) as i32);
        }
    }

    /// Loads the address of a label (data or text) into `rd`.
    ///
    /// Lowered as `lui` + `ori` pairs covering 48 bits, which is ample for
    /// every address the workloads use.
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup::AbsoluteChunk {
            index: self.text.len(),
            label: label.to_string(),
            shift: 32,
        });
        self.emit(Inst::rri(Op::Lui, rd, Reg::X0, 0));
        self.fixups.push(Fixup::AbsoluteChunk {
            index: self.text.len(),
            label: label.to_string(),
            shift: 16,
        });
        self.emit(Inst::rri(Op::Ori, rd, rd, 0));
        self.slli(rd, rd, 16);
        self.fixups.push(Fixup::AbsoluteChunk {
            index: self.text.len(),
            label: label.to_string(),
            shift: 0,
        });
        self.emit(Inst::rri(Op::Ori, rd, rd, 0));
    }

    /// Register move (`addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// Unconditional jump to a label (`jal x0, label`).
    pub fn jmp(&mut self, label: &str) {
        self.jal(Reg::X0, label);
    }

    /// Call: `jal x1, label` (x1 is the link register by convention).
    pub fn call(&mut self, label: &str) {
        self.jal(Reg::X1, label);
    }

    /// Return: `jalr x0, 0(x1)`.
    pub fn ret(&mut self) {
        self.emit(Inst { op: Op::Jalr, rd: Reg::X0, rs1: Reg::X1, rs2: Reg::X0, imm: 0 });
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Inst::nop());
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.emit(Inst::halt());
    }

    fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, label: &str) {
        self.fixups.push(Fixup::Relative { index: self.text.len(), label: label.to_string() });
        self.emit(Inst { op, rd: Reg::X0, rs1, rs2, imm: 0 });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.fixups.push(Fixup::Relative { index: self.text.len(), label: label.to_string() });
        self.emit(Inst { op: Op::Jal, rd, rs1: Reg::X0, rs2: Reg::X0, imm: 0 });
    }

    /// `jalr rd, imm(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Inst { op: Op::Jalr, rd, rs1, rs2: Reg::X0, imm });
    }
}

macro_rules! rrr_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                    self.emit(Inst::rrr(Op::$op, rd, rs1, rs2));
                }
            )*
        }
    };
}

macro_rules! rri_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) {
                    self.emit(Inst::rri(Op::$op, rd, rs1, imm));
                }
            )*
        }
    };
}

macro_rules! load_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, imm: i32, base: Reg) {
                    self.emit(Inst { op: Op::$op, rd, rs1: base, rs2: Reg::X0, imm });
                }
            )*
        }
    };
}

macro_rules! store_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, src: Reg, imm: i32, base: Reg) {
                    self.emit(Inst { op: Op::$op, rd: Reg::X0, rs1: base, rs2: src, imm });
                }
            )*
        }
    };
}

macro_rules! branch_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: &str) {
                    self.branch(Op::$op, rs1, rs2, label);
                }
            )*
        }
    };
}

macro_rules! unary_ops {
    ($($(#[$doc:meta])* $name:ident => $op:ident),* $(,)?) => {
        impl Assembler {
            $(
                $(#[$doc])*
                pub fn $name(&mut self, rd: Reg, rs1: Reg) {
                    self.emit(Inst { op: Op::$op, rd, rs1, rs2: Reg::X0, imm: 0 });
                }
            )*
        }
    };
}

rrr_ops! {
    /// `add rd, rs1, rs2`
    add => Add,
    /// `sub rd, rs1, rs2`
    sub => Sub,
    /// `and rd, rs1, rs2`
    and => And,
    /// `or rd, rs1, rs2`
    or => Or,
    /// `xor rd, rs1, rs2`
    xor => Xor,
    /// `sll rd, rs1, rs2`
    sll => Sll,
    /// `srl rd, rs1, rs2`
    srl => Srl,
    /// `sra rd, rs1, rs2`
    sra => Sra,
    /// `slt rd, rs1, rs2`
    slt => Slt,
    /// `sltu rd, rs1, rs2`
    sltu => Sltu,
    /// `mul rd, rs1, rs2`
    mul => Mul,
    /// `mulh rd, rs1, rs2`
    mulh => Mulh,
    /// `div rd, rs1, rs2`
    div => Div,
    /// `rem rd, rs1, rs2`
    rem => Rem,
    /// `fadd rd, rs1, rs2` (double precision)
    fadd => Fadd,
    /// `fsub rd, rs1, rs2`
    fsub => Fsub,
    /// `fmul rd, rs1, rs2`
    fmul => Fmul,
    /// `fdiv rd, rs1, rs2`
    fdiv => Fdiv,
    /// `fmin rd, rs1, rs2`
    fmin => Fmin,
    /// `fmax rd, rs1, rs2`
    fmax => Fmax,
    /// `feq rd(x), rs1(f), rs2(f)`
    feq => Feq,
    /// `flt rd(x), rs1(f), rs2(f)`
    flt => Flt,
    /// `fle rd(x), rs1(f), rs2(f)`
    fle => Fle,
}

rri_ops! {
    /// `addi rd, rs1, imm`
    addi => Addi,
    /// `andi rd, rs1, imm`
    andi => Andi,
    /// `ori rd, rs1, imm`
    ori => Ori,
    /// `xori rd, rs1, imm`
    xori => Xori,
    /// `slli rd, rs1, shamt`
    slli => Slli,
    /// `srli rd, rs1, shamt`
    srli => Srli,
    /// `srai rd, rs1, shamt`
    srai => Srai,
    /// `slti rd, rs1, imm`
    slti => Slti,
    /// `sltiu rd, rs1, imm`
    sltiu => Sltiu,
}

impl Assembler {
    /// `lui rd, imm` (`rd = imm << 16`).
    pub fn lui(&mut self, rd: Reg, imm: i32) {
        self.emit(Inst::rri(Op::Lui, rd, Reg::X0, imm));
    }
}

load_ops! {
    /// `lb rd, imm(base)`
    lb => Lb,
    /// `lbu rd, imm(base)`
    lbu => Lbu,
    /// `lh rd, imm(base)`
    lh => Lh,
    /// `lhu rd, imm(base)`
    lhu => Lhu,
    /// `lw rd, imm(base)`
    lw => Lw,
    /// `lwu rd, imm(base)`
    lwu => Lwu,
    /// `ld rd, imm(base)`
    ld => Ld,
    /// `fld fd, imm(base)`
    fld => Fld,
}

store_ops! {
    /// `sb src, imm(base)`
    sb => Sb,
    /// `sh src, imm(base)`
    sh => Sh,
    /// `sw src, imm(base)`
    sw => Sw,
    /// `sd src, imm(base)`
    sd => Sd,
    /// `fsd fsrc, imm(base)`
    fsd => Fsd,
}

branch_ops! {
    /// `beq rs1, rs2, label`
    beq => Beq,
    /// `bne rs1, rs2, label`
    bne => Bne,
    /// `blt rs1, rs2, label`
    blt => Blt,
    /// `bge rs1, rs2, label`
    bge => Bge,
    /// `bltu rs1, rs2, label`
    bltu => Bltu,
    /// `bgeu rs1, rs2, label`
    bgeu => Bgeu,
}

unary_ops! {
    /// `fsqrt fd, fs`
    fsqrt => Fsqrt,
    /// `fcvt.d.l fd, xs` — signed integer to double
    fcvtdl => Fcvtdl,
    /// `fcvt.l.d xd, fs` — double to signed integer (truncating)
    fcvtld => Fcvtld,
    /// `fmv.x.d xd, fs` — raw bit move
    fmvxd => Fmvxd,
    /// `fmv.d.x fd, xs` — raw bit move
    fmvdx => Fmvdx,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Assembler::new(0x1000);
        a.label("top");
        a.addi(Reg::X1, Reg::X1, 1); // 0x1000
        a.beq(Reg::X1, Reg::X2, "end"); // 0x1008, forward
        a.bne(Reg::X1, Reg::X2, "top"); // 0x1010, backward
        a.label("end");
        a.halt(); // 0x1018
        let p = a.assemble().unwrap();
        assert_eq!(p.text[1].imm, 0x10); // 0x1018 - 0x1008
        assert_eq!(p.text[2].imm, -0x10); // 0x1000 - 0x1010
    }

    #[test]
    fn undefined_label_is_error() {
        let mut a = Assembler::new(0);
        a.jmp("nowhere");
        assert_eq!(a.assemble().unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn duplicate_label_is_error() {
        let mut a = Assembler::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn li_small_is_one_inst() {
        let mut a = Assembler::new(0);
        a.li(Reg::X1, 42);
        let p = a.assemble().unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.text[0].op, Op::Addi);
    }

    #[test]
    fn li_medium_uses_lui() {
        let mut a = Assembler::new(0);
        a.li(Reg::X1, 0x1234_5678_9abc);
        let p = a.assemble().unwrap();
        assert_eq!(p.text[0].op, Op::Lui);
        assert!(p.len() <= 2);
    }

    #[test]
    fn data_segments_are_labelled_and_aligned() {
        let mut a = Assembler::new(0);
        let addr1 = a.data_bytes("a", &[1, 2, 3]);
        let addr2 = a.data_u64s("b", &[5, 6]);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.label("a"), Some(addr1));
        assert_eq!(p.label("b"), Some(addr2));
        assert_eq!(addr2 % 8, 0);
        assert!(addr2 >= addr1 + 3);
        let mem = p.build_memory();
        assert_eq!(mem.read_u64(addr2 + 8), 6);
    }

    #[test]
    fn la_resolves_to_label_address() {
        // Verified via interpreter in interp.rs tests as well; here check
        // the chunk fixups directly.
        let mut a = Assembler::new(0x1000);
        let addr = a.data_u64s("arr", &[7]);
        a.la(Reg::X2, "arr");
        a.halt();
        let p = a.assemble().unwrap();
        // Layout: lui c32; ori c16; slli 16; ori c0.
        // Reconstruct: ((c32 << 16 | c16) << 16) | c0
        let c32 = p.text[0].imm as u64;
        let c16 = p.text[1].imm as u64;
        let c0 = p.text[3].imm as u64;
        assert_eq!(((c32 << 16 | c16) << 16) | c0, addr);
    }
}
