//! Architectural register names.
//!
//! TH64 has 32 integer registers (`x0..x31`, with `x0` hardwired to zero)
//! and 32 floating-point registers (`f0..f31`). Both families live in one
//! flat 64-entry namespace so the rename stage of the timing model can treat
//! every architectural register uniformly.

use std::fmt;

/// An architectural register.
///
/// Integer registers occupy indices `0..=31`, floating-point registers
/// `32..=63`. [`Reg::X0`] always reads as zero and writes to it are ignored.
///
/// ```
/// use th_isa::Reg;
/// assert_eq!(Reg::X5.index(), 5);
/// assert_eq!(Reg::F0.index(), 32);
/// assert!(Reg::F3.is_fp());
/// assert_eq!(Reg::from_index(33), Some(Reg::F1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

#[allow(missing_docs)]
impl Reg {
    pub const X0: Reg = Reg(0);
    pub const X1: Reg = Reg(1);
    pub const X2: Reg = Reg(2);
    pub const X3: Reg = Reg(3);
    pub const X4: Reg = Reg(4);
    pub const X5: Reg = Reg(5);
    pub const X6: Reg = Reg(6);
    pub const X7: Reg = Reg(7);
    pub const X8: Reg = Reg(8);
    pub const X9: Reg = Reg(9);
    pub const X10: Reg = Reg(10);
    pub const X11: Reg = Reg(11);
    pub const X12: Reg = Reg(12);
    pub const X13: Reg = Reg(13);
    pub const X14: Reg = Reg(14);
    pub const X15: Reg = Reg(15);
    pub const X16: Reg = Reg(16);
    pub const X17: Reg = Reg(17);
    pub const X18: Reg = Reg(18);
    pub const X19: Reg = Reg(19);
    pub const X20: Reg = Reg(20);
    pub const X21: Reg = Reg(21);
    pub const X22: Reg = Reg(22);
    pub const X23: Reg = Reg(23);
    pub const X24: Reg = Reg(24);
    pub const X25: Reg = Reg(25);
    pub const X26: Reg = Reg(26);
    pub const X27: Reg = Reg(27);
    pub const X28: Reg = Reg(28);
    pub const X29: Reg = Reg(29);
    pub const X30: Reg = Reg(30);
    pub const X31: Reg = Reg(31);
    pub const F0: Reg = Reg(32);
    pub const F1: Reg = Reg(33);
    pub const F2: Reg = Reg(34);
    pub const F3: Reg = Reg(35);
    pub const F4: Reg = Reg(36);
    pub const F5: Reg = Reg(37);
    pub const F6: Reg = Reg(38);
    pub const F7: Reg = Reg(39);
    pub const F8: Reg = Reg(40);
    pub const F9: Reg = Reg(41);
    pub const F10: Reg = Reg(42);
    pub const F11: Reg = Reg(43);
    pub const F12: Reg = Reg(44);
    pub const F13: Reg = Reg(45);
    pub const F14: Reg = Reg(46);
    pub const F15: Reg = Reg(47);
    pub const F16: Reg = Reg(48);
    pub const F17: Reg = Reg(49);
    pub const F18: Reg = Reg(50);
    pub const F19: Reg = Reg(51);
    pub const F20: Reg = Reg(52);
    pub const F21: Reg = Reg(53);
    pub const F22: Reg = Reg(54);
    pub const F23: Reg = Reg(55);
    pub const F24: Reg = Reg(56);
    pub const F25: Reg = Reg(57);
    pub const F26: Reg = Reg(58);
    pub const F27: Reg = Reg(59);
    pub const F28: Reg = Reg(60);
    pub const F29: Reg = Reg(61);
    pub const F30: Reg = Reg(62);
    pub const F31: Reg = Reg(63);
}

impl Reg {
    /// Total number of architectural registers (integer + floating point).
    pub const COUNT: usize = 64;

    /// The `n`-th integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn x(n: u8) -> Reg {
        assert!(n < 32, "integer register index {n} out of range");
        Reg(n)
    }

    /// The `n`-th floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn f(n: u8) -> Reg {
        assert!(n < 32, "fp register index {n} out of range");
        Reg(32 + n)
    }

    /// Flat index into the 64-entry architectural register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a register from its flat index, or `None` if out of range.
    pub fn from_index(index: usize) -> Option<Reg> {
        if index < Self::COUNT {
            Some(Reg(index as u8))
        } else {
            None
        }
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }

    /// Whether this is the hardwired zero register `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_fp() {
            write!(f, "f{}", self.0 - 32)
        } else {
            write!(f, "x{}", self.0)
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Parses a register name (`x0..x31`, `f0..f31`).
pub(crate) fn parse_reg(s: &str) -> Option<Reg> {
    let (family, num) = s.split_at(1.min(s.len()));
    let n: u8 = num.parse().ok()?;
    if n >= 32 {
        return None;
    }
    match family {
        "x" | "X" => Some(Reg::x(n)),
        "f" | "F" => Some(Reg::f(n)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..Reg::COUNT {
            let r = Reg::from_index(i).unwrap();
            assert_eq!(r.index(), i);
        }
        assert_eq!(Reg::from_index(64), None);
    }

    #[test]
    fn families() {
        assert!(!Reg::X31.is_fp());
        assert!(Reg::F0.is_fp());
        assert!(Reg::X0.is_zero());
        assert!(!Reg::F0.is_zero());
        assert_eq!(Reg::x(7), Reg::X7);
        assert_eq!(Reg::f(7), Reg::F7);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::X0.to_string(), "x0");
        assert_eq!(Reg::X31.to_string(), "x31");
        assert_eq!(Reg::F0.to_string(), "f0");
        assert_eq!(Reg::F31.to_string(), "f31");
    }

    #[test]
    fn parse_names() {
        assert_eq!(parse_reg("x0"), Some(Reg::X0));
        assert_eq!(parse_reg("f15"), Some(Reg::F15));
        assert_eq!(parse_reg("X2"), Some(Reg::X2));
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("y1"), None);
        assert_eq!(parse_reg(""), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_out_of_range_panics() {
        let _ = Reg::x(32);
    }
}
