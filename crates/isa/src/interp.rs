//! Functional interpreter — the architectural "golden model".
//!
//! The out-of-order timing model in `th-sim` is *oracle driven* (the same
//! structure MASE used): architectural execution happens here, in order, and
//! each executed instruction yields a [`DynInst`] record carrying the real
//! operand values, result value, effective address, and branch outcome. The
//! timing model then charges cycles — including every Thermal Herding width
//! misprediction penalty — against those records. Value-dependent behaviour
//! (operand widths, partial-address locality, partial-value encodings) is
//! therefore measured on real data rather than assumed.

use crate::inst::{Inst, Op};
use crate::mem::Memory;
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// A fault raised by the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trap {
    /// The machine has already executed `halt`.
    Halted,
    /// The program counter left the text segment (or became misaligned).
    IllegalPc(u64),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Halted => write!(f, "machine is halted"),
            Trap::IllegalPc(pc) => write!(f, "illegal program counter {pc:#x}"),
        }
    }
}

impl std::error::Error for Trap {}

/// One architecturally executed (dynamic) instruction.
///
/// This is the record the timing simulator consumes. All values are the
/// *architectural* ones: `rd_val` is the value written (for loads, the loaded
/// data), `ea` the effective address of a memory access, and `next_pc` the
/// architecturally correct successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// Dynamic sequence number (0-based).
    pub seq: u64,
    /// Address of the instruction.
    pub pc: u64,
    /// The static instruction.
    pub inst: Inst,
    /// Architecturally correct next program counter.
    pub next_pc: u64,
    /// Value read from `rs1` (0 if unused).
    pub rs1_val: u64,
    /// Value read from `rs2` (0 if unused). For stores, the data stored.
    pub rs2_val: u64,
    /// Value written to `rd` (0 if none). For loads, the loaded value.
    pub rd_val: u64,
    /// Effective address of a load/store.
    pub ea: Option<u64>,
    /// For control-flow: whether the transfer was taken.
    pub taken: bool,
}

impl DynInst {
    /// Whether this record is a load.
    pub fn is_load(&self) -> bool {
        self.inst.op.class() == crate::inst::OpClass::Load
    }

    /// Whether this record is a store.
    pub fn is_store(&self) -> bool {
        self.inst.op.class() == crate::inst::OpClass::Store
    }
}

/// Summary returned by [`Machine::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Instructions executed during this call.
    pub instructions: u64,
    /// Whether the machine reached `halt`.
    pub halted: bool,
}

/// The TH64 functional machine: registers + memory + program counter.
#[derive(Clone, Debug)]
pub struct Machine {
    program: Program,
    regs: [u64; Reg::COUNT],
    pc: u64,
    mem: Memory,
    halted: bool,
    icount: u64,
}

impl Machine {
    /// Creates a machine with the program loaded and `pc` at its entry.
    ///
    /// The stack pointer convention used by the workloads (`x2`) is *not*
    /// initialised here; workloads set up whatever state they need.
    pub fn new(program: &Program) -> Machine {
        Machine {
            mem: program.build_memory(),
            program: program.clone(),
            regs: [0; Reg::COUNT],
            pc: program.entry,
            halted: false,
            icount: 0,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Whether `halt` has been executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Total instructions executed so far.
    pub fn instructions(&self) -> u64 {
        self.icount
    }

    /// Reads an architectural register (`x0` always reads zero).
    pub fn reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes an architectural register (writes to `x0` are ignored).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Borrow the memory image.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutably borrow the memory image (e.g. to poke inputs before a run).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`Trap::Halted`] if `halt` was already executed; [`Trap::IllegalPc`]
    /// if `pc` is outside the text segment.
    pub fn step(&mut self) -> Result<DynInst, Trap> {
        if self.halted {
            return Err(Trap::Halted);
        }
        let pc = self.pc;
        let inst = *self.program.fetch(pc).ok_or(Trap::IllegalPc(pc))?;
        let rec = self.execute(pc, inst);
        self.pc = rec.next_pc;
        self.icount += 1;
        Ok(rec)
    }

    /// Runs up to `max_steps` instructions, stopping early at `halt`.
    ///
    /// # Errors
    ///
    /// Propagates [`Trap::IllegalPc`]; a prior `halt` yields
    /// `Ok(RunSummary { halted: true, .. })` rather than an error.
    pub fn run(&mut self, max_steps: u64) -> Result<RunSummary, Trap> {
        let mut n = 0;
        while n < max_steps && !self.halted {
            self.step()?;
            n += 1;
        }
        Ok(RunSummary { instructions: n, halted: self.halted })
    }

    fn execute(&mut self, pc: u64, inst: Inst) -> DynInst {
        use Op::*;
        let rs1 = self.reg(inst.rs1);
        let rs2 = self.reg(inst.rs2);
        let imm = inst.imm as i64;
        let seq_pc = pc.wrapping_add(Inst::SIZE);

        let mut rd_val = 0u64;
        let mut next_pc = seq_pc;
        let mut ea = None;
        let mut taken = false;

        let f1 = f64::from_bits(rs1);
        let f2 = f64::from_bits(rs2);

        match inst.op {
            Add => rd_val = rs1.wrapping_add(rs2),
            Sub => rd_val = rs1.wrapping_sub(rs2),
            And => rd_val = rs1 & rs2,
            Or => rd_val = rs1 | rs2,
            Xor => rd_val = rs1 ^ rs2,
            Sll => rd_val = rs1 << (rs2 & 63),
            Srl => rd_val = rs1 >> (rs2 & 63),
            Sra => rd_val = ((rs1 as i64) >> (rs2 & 63)) as u64,
            Slt => rd_val = ((rs1 as i64) < (rs2 as i64)) as u64,
            Sltu => rd_val = (rs1 < rs2) as u64,
            Mul => rd_val = rs1.wrapping_mul(rs2),
            Mulh => rd_val = (((rs1 as i64 as i128) * (rs2 as i64 as i128)) >> 64) as u64,
            Div => {
                rd_val = if rs2 == 0 {
                    u64::MAX
                } else {
                    (rs1 as i64).wrapping_div(rs2 as i64) as u64
                }
            }
            Rem => {
                rd_val = if rs2 == 0 { rs1 } else { (rs1 as i64).wrapping_rem(rs2 as i64) as u64 }
            }
            Addi => rd_val = rs1.wrapping_add(imm as u64),
            Andi => rd_val = rs1 & imm as u64,
            Ori => rd_val = rs1 | imm as u64,
            Xori => rd_val = rs1 ^ imm as u64,
            Slli => rd_val = rs1 << (imm as u64 & 63),
            Srli => rd_val = rs1 >> (imm as u64 & 63),
            Srai => rd_val = ((rs1 as i64) >> (imm as u64 & 63)) as u64,
            Slti => rd_val = ((rs1 as i64) < imm) as u64,
            Sltiu => rd_val = (rs1 < imm as u64) as u64,
            Lui => rd_val = (imm as u64) << 16,
            Lb | Lbu | Lh | Lhu | Lw | Lwu | Ld | Fld => {
                let addr = rs1.wrapping_add(imm as u64);
                ea = Some(addr);
                rd_val = match inst.op {
                    Lb => self.mem.read_u8(addr) as i8 as i64 as u64,
                    Lbu => self.mem.read_u8(addr) as u64,
                    Lh => self.mem.read_u16(addr) as i16 as i64 as u64,
                    Lhu => self.mem.read_u16(addr) as u64,
                    Lw => self.mem.read_u32(addr) as i32 as i64 as u64,
                    Lwu => self.mem.read_u32(addr) as u64,
                    _ => self.mem.read_u64(addr),
                };
            }
            Sb | Sh | Sw | Sd | Fsd => {
                let addr = rs1.wrapping_add(imm as u64);
                ea = Some(addr);
                match inst.op {
                    Sb => self.mem.write_u8(addr, rs2 as u8),
                    Sh => self.mem.write_u16(addr, rs2 as u16),
                    Sw => self.mem.write_u32(addr, rs2 as u32),
                    _ => self.mem.write_u64(addr, rs2),
                }
            }
            Beq => taken = rs1 == rs2,
            Bne => taken = rs1 != rs2,
            Blt => taken = (rs1 as i64) < (rs2 as i64),
            Bge => taken = (rs1 as i64) >= (rs2 as i64),
            Bltu => taken = rs1 < rs2,
            Bgeu => taken = rs1 >= rs2,
            Jal => {
                rd_val = seq_pc;
                next_pc = pc.wrapping_add(imm as u64);
                taken = true;
            }
            Jalr => {
                rd_val = seq_pc;
                next_pc = rs1.wrapping_add(imm as u64) & !7;
                taken = true;
            }
            Fadd => rd_val = (f1 + f2).to_bits(),
            Fsub => rd_val = (f1 - f2).to_bits(),
            Fmul => rd_val = (f1 * f2).to_bits(),
            Fdiv => rd_val = (f1 / f2).to_bits(),
            Fsqrt => rd_val = f1.sqrt().to_bits(),
            Fmin => rd_val = f1.min(f2).to_bits(),
            Fmax => rd_val = f1.max(f2).to_bits(),
            Feq => rd_val = (f1 == f2) as u64,
            Flt => rd_val = (f1 < f2) as u64,
            Fle => rd_val = (f1 <= f2) as u64,
            Fcvtdl => rd_val = (rs1 as i64 as f64).to_bits(),
            Fcvtld => rd_val = (f1 as i64) as u64, // saturating per Rust cast
            Fmvxd | Fmvdx => rd_val = rs1,
            Nop => {}
            Halt => {
                self.halted = true;
                next_pc = pc;
            }
        }

        if inst.op.is_cond_branch() && taken {
            next_pc = pc.wrapping_add(imm as u64);
        }
        if let Some(rd) = inst.dest() {
            self.set_reg(rd, rd_val);
        } else {
            rd_val = 0;
        }

        DynInst {
            seq: self.icount,
            pc,
            inst,
            next_pc,
            rs1_val: rs1,
            rs2_val: rs2,
            rd_val,
            ea,
            taken: taken || inst.op == Op::Jal || inst.op == Op::Jalr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    fn run_program(build: impl FnOnce(&mut Assembler)) -> Machine {
        let mut a = Assembler::new(0x1000);
        build(&mut a);
        let p = a.assemble().expect("assembles");
        let mut m = Machine::new(&p);
        m.run(1_000_000).expect("runs");
        assert!(m.is_halted(), "program did not halt");
        m
    }

    #[test]
    fn arithmetic_basics() {
        let m = run_program(|a| {
            a.li(Reg::X1, 7);
            a.li(Reg::X2, -3);
            a.add(Reg::X3, Reg::X1, Reg::X2); // 4
            a.sub(Reg::X4, Reg::X1, Reg::X2); // 10
            a.mul(Reg::X5, Reg::X1, Reg::X2); // -21
            a.div(Reg::X6, Reg::X5, Reg::X1); // -3
            a.rem(Reg::X7, Reg::X1, Reg::X2); // 7 % -3 = 1
            a.halt();
        });
        assert_eq!(m.reg(Reg::X3), 4);
        assert_eq!(m.reg(Reg::X4), 10);
        assert_eq!(m.reg(Reg::X5) as i64, -21);
        assert_eq!(m.reg(Reg::X6) as i64, -3);
        assert_eq!(m.reg(Reg::X7) as i64, 1);
    }

    #[test]
    fn division_edge_cases() {
        let m = run_program(|a| {
            a.li(Reg::X1, 5);
            a.li(Reg::X2, 0);
            a.div(Reg::X3, Reg::X1, Reg::X2); // -1 (all ones)
            a.rem(Reg::X4, Reg::X1, Reg::X2); // dividend
            a.li(Reg::X5, i64::MIN);
            a.li(Reg::X6, -1);
            a.div(Reg::X7, Reg::X5, Reg::X6); // i64::MIN (wraps)
            a.halt();
        });
        assert_eq!(m.reg(Reg::X3), u64::MAX);
        assert_eq!(m.reg(Reg::X4), 5);
        assert_eq!(m.reg(Reg::X7), i64::MIN as u64);
    }

    #[test]
    fn shifts_and_logic() {
        let m = run_program(|a| {
            a.li(Reg::X1, -16);
            a.srai(Reg::X2, Reg::X1, 2); // -4
            a.srli(Reg::X3, Reg::X1, 60); // 15
            a.li(Reg::X4, 0b1100);
            a.andi(Reg::X5, Reg::X4, 0b1010); // 0b1000
            a.xori(Reg::X6, Reg::X4, 0b1010); // 0b0110
            a.halt();
        });
        assert_eq!(m.reg(Reg::X2) as i64, -4);
        assert_eq!(m.reg(Reg::X3), 15);
        assert_eq!(m.reg(Reg::X5), 0b1000);
        assert_eq!(m.reg(Reg::X6), 0b0110);
    }

    #[test]
    fn loads_sign_and_zero_extend() {
        let m = run_program(|a| {
            a.data_bytes("d", &[0xff, 0x80, 0x00, 0x01, 0xfe, 0xff, 0xff, 0xff]);
            a.la(Reg::X10, "d");
            a.lb(Reg::X1, 0, Reg::X10); // -1
            a.lbu(Reg::X2, 0, Reg::X10); // 255
            a.lh(Reg::X3, 0, Reg::X10); // 0x80ff sign-extended
            a.lhu(Reg::X4, 0, Reg::X10); // 0x80ff
            a.lw(Reg::X5, 4, Reg::X10); // 0xfffffffe -> -2
            a.lwu(Reg::X6, 4, Reg::X10); // 0xfffffffe
            a.halt();
        });
        assert_eq!(m.reg(Reg::X1) as i64, -1);
        assert_eq!(m.reg(Reg::X2), 255);
        assert_eq!(m.reg(Reg::X3) as i64, 0x80ffu16 as i16 as i64);
        assert_eq!(m.reg(Reg::X4), 0x80ff);
        assert_eq!(m.reg(Reg::X5) as i64, -2);
        assert_eq!(m.reg(Reg::X6), 0xffff_fffe);
    }

    #[test]
    fn store_then_load_roundtrip() {
        let m = run_program(|a| {
            a.data_zeros("buf", 64);
            a.la(Reg::X10, "buf");
            a.li(Reg::X1, 0x1234_5678_9abc_def0u64 as i64);
            a.sd(Reg::X1, 0, Reg::X10);
            a.ld(Reg::X2, 0, Reg::X10);
            a.sh(Reg::X1, 16, Reg::X10);
            a.lhu(Reg::X3, 16, Reg::X10);
            a.halt();
        });
        assert_eq!(m.reg(Reg::X2), 0x1234_5678_9abc_def0);
        assert_eq!(m.reg(Reg::X3), 0xdef0);
    }

    #[test]
    fn loop_with_counter() {
        let m = run_program(|a| {
            a.li(Reg::X1, 0);
            a.li(Reg::X2, 100);
            a.li(Reg::X3, 0);
            a.label("loop");
            a.add(Reg::X3, Reg::X3, Reg::X1);
            a.addi(Reg::X1, Reg::X1, 1);
            a.blt(Reg::X1, Reg::X2, "loop");
            a.halt();
        });
        assert_eq!(m.reg(Reg::X3), 4950); // sum 0..100
    }

    #[test]
    fn call_and_return() {
        let m = run_program(|a| {
            a.li(Reg::X10, 5);
            a.call("double");
            a.mv(Reg::X11, Reg::X10);
            a.halt();
            a.label("double");
            a.add(Reg::X10, Reg::X10, Reg::X10);
            a.ret();
        });
        assert_eq!(m.reg(Reg::X11), 10);
    }

    #[test]
    fn floating_point_ops() {
        let m = run_program(|a| {
            a.li(Reg::X1, 9);
            a.fcvtdl(Reg::F1, Reg::X1);
            a.fsqrt(Reg::F2, Reg::F1); // 3.0
            a.li(Reg::X2, 4);
            a.fcvtdl(Reg::F3, Reg::X2);
            a.fadd(Reg::F4, Reg::F2, Reg::F3); // 7.0
            a.fmul(Reg::F5, Reg::F4, Reg::F2); // 21.0
            a.fdiv(Reg::F6, Reg::F5, Reg::F3); // 5.25
            a.fcvtld(Reg::X3, Reg::F6); // 5
            a.flt(Reg::X4, Reg::F3, Reg::F2); // 4 < 3 ? 0
            a.fle(Reg::X5, Reg::F2, Reg::F2); // 1
            a.halt();
        });
        assert_eq!(m.reg(Reg::X3), 5);
        assert_eq!(m.reg(Reg::X4), 0);
        assert_eq!(m.reg(Reg::X5), 1);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let m = run_program(|a| {
            a.li(Reg::X1, 99);
            a.add(Reg::X0, Reg::X1, Reg::X1);
            a.add(Reg::X2, Reg::X0, Reg::X0);
            a.halt();
        });
        assert_eq!(m.reg(Reg::X0), 0);
        assert_eq!(m.reg(Reg::X2), 0);
    }

    #[test]
    fn dyninst_records_are_faithful() {
        let mut a = Assembler::new(0x1000);
        a.li(Reg::X1, 10);
        a.data_zeros("b", 8);
        a.la(Reg::X2, "b");
        a.sd(Reg::X1, 0, Reg::X2);
        a.ld(Reg::X3, 0, Reg::X2);
        a.halt();
        let p = a.assemble().unwrap();
        let buf = p.label("b").unwrap();
        let mut m = Machine::new(&p);
        let mut records = Vec::new();
        loop {
            match m.step() {
                Ok(r) => {
                    let done = r.inst.op == Op::Halt;
                    records.push(r);
                    if done {
                        break;
                    }
                }
                Err(t) => panic!("trap: {t}"),
            }
        }
        let store = records.iter().find(|r| r.is_store()).unwrap();
        assert_eq!(store.ea, Some(buf));
        assert_eq!(store.rs2_val, 10);
        let load = records.iter().find(|r| r.is_load()).unwrap();
        assert_eq!(load.ea, Some(buf));
        assert_eq!(load.rd_val, 10);
        // Sequence numbers are dense and ordered.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn halt_then_step_traps() {
        let mut a = Assembler::new(0);
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        let r = m.step().unwrap();
        assert_eq!(r.inst.op, Op::Halt);
        assert!(m.is_halted());
        assert_eq!(m.step(), Err(Trap::Halted));
    }

    #[test]
    fn illegal_pc_traps() {
        let mut a = Assembler::new(0x1000);
        a.nop(); // falls through past the end
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.step().unwrap();
        assert_eq!(m.step(), Err(Trap::IllegalPc(0x1008)));
    }

    #[test]
    fn li_all_widths() {
        for &v in &[
            0i64,
            1,
            -1,
            0x7fff,
            -0x8000,
            0x1234_5678,
            -0x1234_5678,
            0x1234_5678_9abc,
            -0x1234_5678_9abc,
            0x1234_5678_9abc_def0,
            i64::MIN,
            i64::MAX,
        ] {
            let m = run_program(|a| {
                a.li(Reg::X1, v);
                a.halt();
            });
            assert_eq!(m.reg(Reg::X1) as i64, v, "li {v:#x} failed");
        }
    }
}
