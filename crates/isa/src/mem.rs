//! Sparse, paged, little-endian memory image.

use std::collections::HashMap;
use std::fmt;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// A sparse 64-bit byte-addressable memory.
///
/// Pages (4 KiB) are allocated on first touch and read as zero before any
/// write — the usual simulator convention, which also means workloads get
/// deterministic initial state.
///
/// ```
/// use th_isa::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.read_u32(0x1004), 0xdead_beef);
/// assert_eq!(m.read_u8(0x9999), 0); // untouched memory reads zero
/// ```
#[derive(Clone, Default)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of 4 KiB pages that have been touched.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| p.as_ref())
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_SIZE] {
        self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr).map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `N` little-endian bytes starting at `addr` (may span pages).
    fn read_bytes<const N: usize>(&self, addr: u64) -> [u8; N] {
        let mut out = [0u8; N];
        // Fast path: contained in one page.
        if (addr & PAGE_MASK) as usize + N <= PAGE_SIZE {
            if let Some(p) = self.page(addr) {
                let off = (addr & PAGE_MASK) as usize;
                out.copy_from_slice(&p[off..off + N]);
            }
            return out;
        }
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = self.read_u8(addr.wrapping_add(i as u64));
        }
        out
    }

    fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        // Copy page-sized runs; a large segment (workload data images run
        // to megabytes) must not degrade to per-byte page lookups.
        let mut addr = addr;
        let mut rest = bytes;
        while !rest.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = (PAGE_SIZE - off).min(rest.len());
            self.page_mut(addr)[off..off + n].copy_from_slice(&rest[..n]);
            addr = addr.wrapping_add(n as u64);
            rest = &rest[n..];
        }
    }

    /// Reads a little-endian `u16`.
    pub fn read_u16(&self, addr: u64) -> u16 {
        u16::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        u32::from_le_bytes(self.read_bytes(addr))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        u64::from_le_bytes(self.read_bytes(addr))
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, addr: u64, value: u16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_slice(&mut self, addr: u64, bytes: &[u8]) {
        self.write_bytes(addr, bytes);
    }

    /// Reads `len` bytes starting at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr.wrapping_add(i as u64))).collect()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory").field("pages", &self.pages.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_before_write() {
        let m = Memory::new();
        assert_eq!(m.read_u64(0), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.page_count(), 0);
    }

    #[test]
    fn rw_roundtrip_sizes() {
        let mut m = Memory::new();
        m.write_u8(10, 0xab);
        m.write_u16(12, 0x1234);
        m.write_u32(16, 0xdeadbeef);
        m.write_u64(24, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u8(10), 0xab);
        assert_eq!(m.read_u16(12), 0x1234);
        assert_eq!(m.read_u32(16), 0xdeadbeef);
        assert_eq!(m.read_u64(24), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn cross_page_access() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as u64 - 3; // spans the first page boundary
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new();
        m.write_u32(0, 0x0403_0201);
        assert_eq!(m.read_u8(0), 1);
        assert_eq!(m.read_u8(3), 4);
    }

    #[test]
    fn slice_and_vec() {
        let mut m = Memory::new();
        m.write_slice(100, &[1, 2, 3, 4, 5]);
        assert_eq!(m.read_vec(100, 5), vec![1, 2, 3, 4, 5]);
        assert_eq!(m.read_vec(98, 3), vec![0, 0, 1]);
    }

    #[test]
    fn multi_page_slice_roundtrips() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..3 * PAGE_SIZE + 100).map(|i| (i % 251) as u8).collect();
        let base = PAGE_SIZE as u64 - 7; // straddle the first boundary
        m.write_slice(base, &data);
        assert_eq!(m.read_vec(base, data.len()), data);
        assert_eq!(m.page_count(), 5);
    }

    proptest! {
        #[test]
        fn u64_roundtrip(addr in any::<u64>(), value in any::<u64>()) {
            // Avoid wrapping past the end of the address space mid-value.
            let addr = addr & !0xf;
            let mut m = Memory::new();
            m.write_u64(addr, value);
            prop_assert_eq!(m.read_u64(addr), value);
        }

        #[test]
        fn byte_composition(addr in 0u64..1_000_000, value in any::<u64>()) {
            let mut m = Memory::new();
            m.write_u64(addr, value);
            let mut rebuilt = 0u64;
            for i in 0..8 {
                rebuilt |= (m.read_u8(addr + i) as u64) << (8 * i);
            }
            prop_assert_eq!(rebuilt, value);
        }

        #[test]
        fn disjoint_writes_do_not_interfere(a in 0u64..100_000, b in 0u64..100_000,
                                            va in any::<u64>(), vb in any::<u64>()) {
            prop_assume!(a.abs_diff(b) >= 8);
            let mut m = Memory::new();
            m.write_u64(a, va);
            m.write_u64(b, vb);
            prop_assert_eq!(m.read_u64(a), va);
            prop_assert_eq!(m.read_u64(b), vb);
        }
    }
}
