//! Robustness of the text assembler: arbitrary input must produce a
//! structured error or a valid program — never a panic — and valid
//! programs must round-trip through `Display` back to themselves.

use proptest::prelude::*;
use th_isa::{parse_asm, Inst, Op, Reg};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the parser.
    #[test]
    fn parser_never_panics_on_garbage(src in "\\PC{0,400}") {
        let _ = parse_asm(&src);
    }

    /// Structured-looking garbage (mnemonic-shaped tokens, commas,
    /// parentheses) never panics either.
    #[test]
    fn parser_never_panics_on_asm_shaped_garbage(
        lines in proptest::collection::vec(
            "[a-z.]{1,8}( +[xf][0-9]{1,3})?(, *-?[0-9a-fx]{1,10})?(, *[0-9]*\\(?[xf][0-9]{1,2}\\)?)?",
            0..30
        )
    ) {
        let _ = parse_asm(&lines.join("\n"));
    }

    /// Every instruction's `Display` output re-parses to the same
    /// instruction (branch displacements are printed numerically, which
    /// the parser accepts).
    #[test]
    fn display_parse_roundtrip(
        opidx in 0..Op::all().len(),
        rd in 0usize..64,
        rs1 in 0usize..64,
        rs2 in 0usize..64,
        imm in -1000i32..1000,
    ) {
        let op = Op::all()[opidx];
        let inst = Inst {
            op,
            rd: Reg::from_index(rd).unwrap(),
            rs1: Reg::from_index(rs1).unwrap(),
            rs2: Reg::from_index(rs2).unwrap(),
            // Branch displacements must be 8-aligned to format sensibly;
            // shifts must be in range.
            imm: match op {
                Op::Slli | Op::Srli | Op::Srai => imm.rem_euclid(64),
                _ if op.is_cond_branch() || op == Op::Jal => imm * 8,
                _ => imm,
            },
        };
        let text = format!("{inst}\n halt\n");
        let parsed = parse_asm(&text)
            .unwrap_or_else(|e| panic!("`{inst}` failed to re-parse: {e}"));
        let got = parsed.fetch(parsed.entry).unwrap();

        // Compare semantically: fields the op doesn't use are free.
        prop_assert_eq!(got.op, inst.op);
        if inst.op.writes_rd() {
            prop_assert_eq!(got.rd, inst.rd);
        }
        if inst.op.reads_rs1() {
            prop_assert_eq!(got.rs1, inst.rs1);
        }
        if inst.op.reads_rs2() {
            prop_assert_eq!(got.rs2, inst.rs2);
        }
        let imm_matters = !matches!(
            inst.op,
            Op::Add | Op::Sub | Op::And | Op::Or | Op::Xor | Op::Sll | Op::Srl | Op::Sra
                | Op::Slt | Op::Sltu | Op::Mul | Op::Mulh | Op::Div | Op::Rem
                | Op::Fadd | Op::Fsub | Op::Fmul | Op::Fdiv | Op::Fsqrt | Op::Fmin
                | Op::Fmax | Op::Feq | Op::Flt | Op::Fle | Op::Fcvtdl | Op::Fcvtld
                | Op::Fmvxd | Op::Fmvdx | Op::Nop | Op::Halt
        );
        if imm_matters {
            prop_assert_eq!(got.imm, inst.imm, "{}", inst);
        }
    }
}

/// Error messages carry usable line numbers.
#[test]
fn errors_have_line_numbers() {
    let e = parse_asm("nop\nnop\n???bad???\n").unwrap_err();
    assert_eq!(e.line, 3);
    let e = parse_asm("add x1, x2, x3\n ld x1, x2\n").unwrap_err();
    assert_eq!(e.line, 2);
}
