//! Semantic torture test: every ALU/FP opcode, on random operands,
//! checked against an independently written reference implementation.

use proptest::prelude::*;
use th_isa::{Assembler, Inst, Machine, Op, Reg};

/// Reference semantics, written directly against the ISA definition
/// (independent of `interp.rs`'s match arms).
fn reference(op: Op, a: u64, b: u64, imm: i32) -> Option<u64> {
    let sa = a as i64;
    let sb = b as i64;
    let simm = imm as i64;
    let fa = f64::from_bits(a);
    let fb = f64::from_bits(b);
    Some(match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Sll => a << (b & 63),
        Op::Srl => a >> (b & 63),
        Op::Sra => (sa >> (b & 63)) as u64,
        Op::Slt => (sa < sb) as u64,
        Op::Sltu => (a < b) as u64,
        Op::Mul => a.wrapping_mul(b),
        Op::Mulh => ((sa as i128 * sb as i128) >> 64) as u64,
        Op::Div => {
            if b == 0 {
                u64::MAX
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        Op::Rem => {
            if b == 0 {
                a
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        Op::Addi => a.wrapping_add(simm as u64),
        Op::Andi => a & simm as u64,
        Op::Ori => a | simm as u64,
        Op::Xori => a ^ simm as u64,
        Op::Slli => a << (imm as u32 & 63),
        Op::Srli => a >> (imm as u32 & 63),
        Op::Srai => (sa >> (imm as u32 & 63)) as u64,
        Op::Slti => (sa < simm) as u64,
        Op::Sltiu => (a < simm as u64) as u64,
        Op::Lui => (simm as u64) << 16,
        Op::Fadd => (fa + fb).to_bits(),
        Op::Fsub => (fa - fb).to_bits(),
        Op::Fmul => (fa * fb).to_bits(),
        Op::Fdiv => (fa / fb).to_bits(),
        Op::Fsqrt => fa.sqrt().to_bits(),
        Op::Fmin => fa.min(fb).to_bits(),
        Op::Fmax => fa.max(fb).to_bits(),
        Op::Feq => (fa == fb) as u64,
        Op::Flt => (fa < fb) as u64,
        Op::Fle => (fa <= fb) as u64,
        Op::Fcvtdl => (sa as f64).to_bits(),
        Op::Fcvtld => (fa as i64) as u64,
        Op::Fmvxd | Op::Fmvdx => a,
        _ => return None, // memory/control/misc covered elsewhere
    })
}

/// Runs one instruction through the interpreter with the given operand
/// values and returns the destination value.
fn execute_one(op: Op, a: u64, b: u64, imm: i32) -> u64 {
    // Source/destination register classes per opcode.
    let fp_srcs = matches!(
        op,
        Op::Fadd
            | Op::Fsub
            | Op::Fmul
            | Op::Fdiv
            | Op::Fsqrt
            | Op::Fmin
            | Op::Fmax
            | Op::Feq
            | Op::Flt
            | Op::Fle
            | Op::Fcvtld
            | Op::Fmvxd
    );
    let fp_dst = matches!(
        op,
        Op::Fadd
            | Op::Fsub
            | Op::Fmul
            | Op::Fdiv
            | Op::Fsqrt
            | Op::Fmin
            | Op::Fmax
            | Op::Fcvtdl
            | Op::Fmvdx
    );
    let (rs1, rs2) = if fp_srcs { (Reg::F1, Reg::F2) } else { (Reg::X1, Reg::X2) };
    let rd = if fp_dst { Reg::F3 } else { Reg::X3 };

    let mut asm = Assembler::new(0x1000);
    asm.emit(Inst { op, rd, rs1, rs2, imm });
    asm.halt();
    let p = asm.assemble().expect("assembles");
    let mut m = Machine::new(&p);
    m.set_reg(rs1, a);
    m.set_reg(rs2, b);
    m.run(10).expect("runs");
    assert!(m.is_halted());
    m.reg(rd)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn interpreter_matches_reference(
        opidx in 0..Op::all().len(),
        a in any::<u64>(),
        b in any::<u64>(),
        imm in any::<i32>(),
    ) {
        let op = Op::all()[opidx];
        if let Some(expected) = reference(op, a, b, imm) {
            let got = execute_one(op, a, b, imm);
            // NaNs have many bit patterns; compare FP results semantically.
            let fp = f64::from_bits(expected);
            if fp.is_nan() {
                prop_assert!(f64::from_bits(got).is_nan(), "{op}: {got:#x} not NaN");
            } else {
                prop_assert_eq!(got, expected, "{} a={:#x} b={:#x} imm={}", op, a, b, imm);
            }
        }
    }

    /// Signed-overflow edge: i64::MIN / -1 must not trap or change sign
    /// semantics across div/rem.
    #[test]
    fn division_edges(a in any::<i64>()) {
        let q = execute_one(Op::Div, a as u64, u64::MAX, 0); // divide by -1
        prop_assert_eq!(q, (a.wrapping_neg()) as u64);
        let r = execute_one(Op::Rem, a as u64, u64::MAX, 0);
        prop_assert_eq!(r, 0);
    }
}

/// Loads and stores of every size, checked against direct memory pokes.
#[test]
fn memory_op_sizes() {
    for (store, load, bits) in [
        (Op::Sb, Op::Lbu, 8u32),
        (Op::Sh, Op::Lhu, 16),
        (Op::Sw, Op::Lwu, 32),
        (Op::Sd, Op::Ld, 64),
    ] {
        let mut asm = Assembler::new(0x1000);
        asm.data_zeros("buf", 16);
        asm.la(Reg::X5, "buf");
        asm.emit(Inst { op: store, rd: Reg::X0, rs1: Reg::X5, rs2: Reg::X1, imm: 4 });
        asm.emit(Inst { op: load, rd: Reg::X6, rs1: Reg::X5, rs2: Reg::X0, imm: 4 });
        asm.halt();
        let p = asm.assemble().unwrap();
        let mut m = Machine::new(&p);
        let value = 0xfedc_ba98_7654_3210u64;
        m.set_reg(Reg::X1, value);
        m.run(100).unwrap();
        let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        assert_eq!(m.reg(Reg::X6), value & mask, "{store}/{load}");
    }
}

/// Sign-extending loads replicate the top bit of the loaded datum.
#[test]
fn sign_extension_matrix() {
    for (load, bits) in [(Op::Lb, 8u32), (Op::Lh, 16), (Op::Lw, 32)] {
        for value in [0u64, 1, (1 << (bits - 1)) - 1, 1 << (bits - 1), (1 << bits) - 1] {
            let mut asm = Assembler::new(0x1000);
            asm.data_zeros("buf", 8);
            asm.la(Reg::X5, "buf");
            asm.sd(Reg::X1, 0, Reg::X5);
            asm.emit(Inst { op: load, rd: Reg::X6, rs1: Reg::X5, rs2: Reg::X0, imm: 0 });
            asm.halt();
            let p = asm.assemble().unwrap();
            let mut m = Machine::new(&p);
            m.set_reg(Reg::X1, value);
            m.run(100).unwrap();
            let shift = 64 - bits;
            let expected = (((value << shift) as i64) >> shift) as u64;
            assert_eq!(m.reg(Reg::X6), expected, "{load} of {value:#x}");
        }
    }
}

/// Conditional branches: all six compare predicates over a sign/magnitude
/// matrix.
#[test]
fn branch_predicates() {
    let cases: &[u64] = &[0, 1, 0x7fff_ffff_ffff_ffff, 0x8000_0000_0000_0000, u64::MAX];
    for &a in cases {
        for &b in cases {
            for (op, expected) in [
                (Op::Beq, a == b),
                (Op::Bne, a != b),
                (Op::Blt, (a as i64) < (b as i64)),
                (Op::Bge, (a as i64) >= (b as i64)),
                (Op::Bltu, a < b),
                (Op::Bgeu, a >= b),
            ] {
                let mut asm = Assembler::new(0x1000);
                match op {
                    Op::Beq => asm.beq(Reg::X1, Reg::X2, "taken"),
                    Op::Bne => asm.bne(Reg::X1, Reg::X2, "taken"),
                    Op::Blt => asm.blt(Reg::X1, Reg::X2, "taken"),
                    Op::Bge => asm.bge(Reg::X1, Reg::X2, "taken"),
                    Op::Bltu => asm.bltu(Reg::X1, Reg::X2, "taken"),
                    _ => asm.bgeu(Reg::X1, Reg::X2, "taken"),
                }
                asm.li(Reg::X9, 0);
                asm.halt();
                asm.label("taken");
                asm.li(Reg::X9, 1);
                asm.halt();
                let p = asm.assemble().unwrap();
                let mut m = Machine::new(&p);
                m.set_reg(Reg::X1, a);
                m.set_reg(Reg::X2, b);
                m.run(100).unwrap();
                assert_eq!(
                    m.reg(Reg::X9) == 1,
                    expected,
                    "{op} a={a:#x} b={b:#x}"
                );
            }
        }
    }
}
