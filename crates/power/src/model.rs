//! The power computation: activity × energy × frequency.

use crate::energy::EnergyTable;
use std::sync::atomic::{AtomicU8, Ordering};
use th_sim::SimStats;
use th_stack3d::{ActivityMatrix, Unit, DIES};

/// Where per-unit low/full activity comes from when pricing a run.
///
/// `Ledger` reads the event-sourced [`ActivityMatrix`] the pipeline
/// recorded at each access site — the measured path, and the default.
/// `Modeled` reconstructs the split from aggregate scalar counters via
/// the width predictor's capture fraction — the original statistical
/// path, kept as a reference oracle (the scan/event-engine precedent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ActivitySource {
    /// Price from the measured per-(unit, die) access ledger.
    #[default]
    Ledger,
    /// Reconstruct gating statistically from scalar counters.
    Modeled,
}

/// Process-wide activity-source default: 0 = unset, 1 = ledger, 2 = modeled.
static DEFAULT_ACTIVITY: AtomicU8 = AtomicU8::new(0);

/// The activity source newly built [`PowerConfig`]s start with.
///
/// Resolution order: the last [`set_default_activity_source`] call, then
/// the `TH_ACTIVITY` environment variable (`ledger` or `modeled`), then
/// [`ActivitySource::Ledger`].
pub fn default_activity_source() -> ActivitySource {
    match DEFAULT_ACTIVITY.load(Ordering::Relaxed) {
        1 => ActivitySource::Ledger,
        2 => ActivitySource::Modeled,
        _ => match std::env::var("TH_ACTIVITY").as_deref() {
            Ok("modeled") => ActivitySource::Modeled,
            _ => ActivitySource::Ledger,
        },
    }
}

/// Overrides (or with `None`, resets to the environment/default) the
/// activity source used by subsequently constructed [`PowerConfig`]s.
pub fn set_default_activity_source(source: Option<ActivitySource>) {
    let v = match source {
        None => 0,
        Some(ActivitySource::Ledger) => 1,
        Some(ActivitySource::Modeled) => 2,
    };
    DEFAULT_ACTIVITY.store(v, Ordering::Relaxed);
}

/// Which physical design the activity is priced against.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerConfig {
    /// 4-die 3D implementation (wire-reduced energies) vs planar.
    pub three_d: bool,
    /// Thermal Herding gating active (only meaningful with `three_d`).
    pub herding: bool,
    /// Clock frequency, GHz.
    pub clock_ghz: f64,
    /// Chip-level (dual-core) clock-network power of the planar design at
    /// the baseline frequency, watts. §4: 35 % of the 90 W baseline.
    pub chip_clock_power_2d_w: f64,
    /// Chip-level leakage power, watts — §4: 20 % of the 90 W baseline,
    /// "3D organization and Thermal Herding do not reduce the leakage".
    pub chip_leakage_w: f64,
    /// Clock-power factor of the 3D implementation (§4: footprint shrinks
    /// 4×, power "conservatively" halved).
    pub clock_3d_factor: f64,
    /// Where the low/full activity split comes from (measured ledger vs
    /// the statistical reconstruction). Runs whose statistics carry no
    /// ledger (hand-built [`SimStats`]) fall back to `Modeled`.
    pub activity: ActivitySource,
}

impl PowerConfig {
    /// Baseline planar configuration at 2.66 GHz.
    pub fn planar(clock_ghz: f64) -> PowerConfig {
        PowerConfig {
            three_d: false,
            herding: false,
            clock_ghz,
            chip_clock_power_2d_w: 0.35 * 90.0,
            chip_leakage_w: 0.20 * 90.0,
            clock_3d_factor: 0.5,
            activity: default_activity_source(),
        }
    }

    /// 3D configuration (with or without herding).
    pub fn three_d(clock_ghz: f64, herding: bool) -> PowerConfig {
        PowerConfig { three_d: true, herding, ..PowerConfig::planar(clock_ghz) }
    }

    /// The activity source actually used for `stats`: the configured one,
    /// except that stats carrying no ledger fall back to the modeled
    /// reconstruction.
    pub fn resolve_activity(&self, stats: &SimStats) -> ActivitySource {
        match self.activity {
            ActivitySource::Ledger if !stats.activity.is_empty() => ActivitySource::Ledger,
            _ => ActivitySource::Modeled,
        }
    }
}

/// Computed power, chip level.
#[derive(Clone, Debug)]
pub struct PowerBreakdown {
    /// Dynamic power per unit, watts. Core-private units appear once with
    /// both cores' activity merged. [`Unit::Clock`] has no row — the
    /// clock network is priced separately as [`PowerBreakdown::clock_w`].
    pub per_unit: Vec<(Unit, f64)>,
    /// Clock network power, watts.
    pub clock_w: f64,
    /// Leakage power, watts.
    pub leakage_w: f64,
}

impl PowerBreakdown {
    /// Dynamic (non-clock) power.
    pub fn dynamic_w(&self) -> f64 {
        self.per_unit.iter().map(|(_, w)| w).sum()
    }

    /// Total chip power.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w() + self.clock_w + self.leakage_w
    }

    /// Power of one unit.
    pub fn unit_w(&self, unit: Unit) -> f64 {
        self.per_unit.iter().find(|(u, _)| *u == unit).map_or(0.0, |(_, w)| *w)
    }
}

/// Equivalent access counts for one unit: `full` accesses touch the whole
/// structure; `low` accesses are gated to the top die.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UnitActivity {
    /// Full-width-equivalent accesses.
    pub full: f64,
    /// Gated low-width accesses.
    pub low: f64,
}

/// Derives per-unit activity from the simulator counters.
///
/// With `herding` false, everything is counted as full-width (no gating);
/// the width statistics still exist but a planar or plain-3D design
/// cannot exploit them.
pub fn unit_activity(stats: &SimStats, herding: bool) -> Vec<(Unit, UnitActivity)> {
    // Fraction of actually-low-width values the predictor captured
    // (predicted low): only captured ones are gated.
    let denom = stats.width_pred.correct_low + stats.width_pred.safe_mispredictions;
    let capture = if denom == 0 {
        0.0
    } else {
        stats.width_pred.correct_low as f64 / denom as f64
    };
    let split = |low: u64, full: u64| -> UnitActivity {
        if herding {
            let gated = low as f64 * capture;
            UnitActivity { full: full as f64 + low as f64 - gated, low: gated }
        } else {
            UnitActivity { full: (low + full) as f64, low: 0.0 }
        }
    };

    let mut v = Vec::new();
    v.push((Unit::ICache, UnitActivity { full: stats.icache_accesses as f64, low: 0.0 }));
    v.push((Unit::Itlb, UnitActivity { full: stats.itlb_accesses as f64, low: 0.0 }));
    // §3.7: BTB hits whose target upper bits come from the branch PC stay
    // on the top die.
    let btb_total = stats.btb_lookups + stats.btb_updates;
    let btb_low = if herding { stats.btb_partial_target_hits.min(btb_total) } else { 0 };
    v.push((
        Unit::Btb,
        UnitActivity { full: (btb_total - btb_low) as f64, low: btb_low as f64 },
    ));
    v.push((
        Unit::Bpred,
        UnitActivity { full: (stats.bpred_lookups + stats.bpred_updates) as f64, low: 0.0 },
    ));
    v.push((Unit::Decode, UnitActivity { full: stats.fetched as f64, low: 0.0 }));
    v.push((Unit::Rename, UnitActivity { full: stats.rename_ops as f64, low: 0.0 }));
    v.push((
        Unit::Rob,
        split(
            stats.rob_reads_low + stats.rob_writes_low,
            stats.rob_reads_full + stats.rob_writes_full,
        ),
    ));
    // Scheduler: allocations plus tag broadcasts; per-die broadcast gating
    // (§3.4) shows up as driven-die fractions.
    let driven: u64 = stats.tag_broadcast_die_driven.iter().sum();
    let broadcast_eq = if stats.tag_broadcasts == 0 {
        0.0
    } else {
        driven as f64 / 4.0
    };
    v.push((
        Unit::Scheduler,
        UnitActivity { full: stats.dispatched as f64 * 0.5 + broadcast_eq, low: 0.0 },
    ));
    v.push((
        Unit::RegFile,
        split(
            stats.rf_reads_low + stats.rf_writes_low,
            stats.rf_reads_full + stats.rf_writes_full,
        ),
    ));
    v.push((Unit::IntExec, split(stats.int_ops_low, stats.int_ops_full)));
    v.push((Unit::FpExec, UnitActivity { full: stats.fp_ops as f64, low: 0.0 }));
    v.push((Unit::Bypass, split(stats.bypass_low, stats.bypass_full)));
    // LSQ: every load/store broadcasts its address into the queues; PAM
    // matches stay on the top die (§3.5).
    let lsq_total = stats.loads + stats.stores;
    let lsq_low = if herding { stats.pam.matches.min(lsq_total) } else { 0 };
    v.push((
        Unit::Lsq,
        UnitActivity { full: (lsq_total - lsq_low) as f64, low: lsq_low as f64 },
    ));
    // D-cache: gated loads are exactly those predicted low and serviced
    // from the top die; stores know their width at commit (§3.6); L2
    // spills/fills always touch all four dies.
    let gated_loads = if herding {
        stats.dcache_encodings.total().saturating_sub(stats.dcache_width_stalls)
    } else {
        0
    };
    let store_low = if herding { stats.dcache_writes_low } else { 0 };
    let dcache_low = gated_loads + store_low;
    let dcache_total = stats.dcache_accesses + stats.spill_fill_transfers;
    v.push((
        Unit::DCache,
        UnitActivity {
            full: (dcache_total.saturating_sub(dcache_low)) as f64,
            low: dcache_low as f64,
        },
    ));
    v.push((Unit::Dtlb, UnitActivity { full: stats.dtlb_accesses as f64, low: 0.0 }));
    v.push((
        Unit::L2,
        UnitActivity {
            full: (stats.l2_accesses + stats.spill_fill_transfers) as f64,
            low: 0.0,
        },
    ));
    // No Unit::Clock row: the clock network is priced separately
    // (`PowerBreakdown::clock_w`), not per access.
    v
}

/// Derives per-unit activity from the measured [`ActivityMatrix`]: the
/// event-sourced counterpart of [`unit_activity`], with no statistical
/// reconstruction.
///
/// The ledger records *die-touches* for full accesses (one per die
/// driven), so full-access equivalents are the row sum divided by the
/// die count. With `herding` false the design cannot gate, so accesses
/// the machine recorded as gated are priced full-width — the same
/// pricing-time decision [`unit_activity`] makes.
pub fn unit_activity_ledger(ledger: &ActivityMatrix, herding: bool) -> Vec<(Unit, UnitActivity)> {
    Unit::all()
        .iter()
        .filter(|&&u| u != Unit::Clock)
        .map(|&unit| {
            let full = ledger.full_touches(unit) as f64 / DIES as f64;
            let low = ledger.low_total(unit) as f64;
            let act = if herding {
                UnitActivity { full, low }
            } else {
                UnitActivity { full: full + low, low: 0.0 }
            };
            (unit, act)
        })
        .collect()
}

/// The power model.
#[derive(Clone, Debug, Default)]
pub struct PowerModel {
    energies: EnergyTable,
}

impl PowerModel {
    /// Creates the model with the default energy table.
    pub fn new() -> PowerModel {
        PowerModel { energies: EnergyTable::new() }
    }

    /// The energy table in use.
    pub fn energies(&self) -> &EnergyTable {
        &self.energies
    }

    /// Computes chip power from (chip-aggregated) statistics.
    ///
    /// `cycles` is the time basis of the run — the cycle count of one
    /// core, not the sum over cores (both cores of the dual-core
    /// experiments run concurrently).
    ///
    /// The low/full activity split comes from the source selected by
    /// `cfg.activity`: the measured per-(unit, die) ledger by default, or
    /// the capture-fraction reconstruction as the reference oracle.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn compute(&self, stats: &SimStats, cycles: u64, cfg: &PowerConfig) -> PowerBreakdown {
        assert!(cycles > 0, "power needs a time basis");
        let herding = cfg.three_d && cfg.herding;
        let f_hz = cfg.clock_ghz * 1e9;
        let per_second = f_hz / cycles as f64;
        let activity = match cfg.resolve_activity(stats) {
            ActivitySource::Ledger => unit_activity_ledger(&stats.activity, herding),
            ActivitySource::Modeled => unit_activity(stats, herding),
        };
        let per_unit = activity
            .into_iter()
            .map(|(unit, act)| {
                let (e_full, e_low) = if cfg.three_d {
                    (self.energies.e3d_pj(unit), self.energies.e3d_low_pj(unit))
                } else {
                    (self.energies.e2d_pj(unit), self.energies.e2d_pj(unit))
                };
                let watts = (act.full * e_full + act.low * e_low) * 1e-12 * per_second;
                (unit, watts)
            })
            .collect();
        let clock_w = cfg.chip_clock_power_2d_w * (cfg.clock_ghz / 2.66)
            * if cfg.three_d { cfg.clock_3d_factor } else { 1.0 };
        PowerBreakdown { per_unit, clock_w, leakage_w: cfg.chip_leakage_w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_stats() -> SimStats {
        SimStats {
            cycles: 1000,
            committed: 1500,
            fetched: 1600,
            icache_accesses: 500,
            dispatched: 1500,
            rename_ops: 1500,
            rf_reads_low: 1200,
            rf_reads_full: 400,
            rf_writes_low: 700,
            rf_writes_full: 300,
            int_ops_low: 900,
            int_ops_full: 300,
            bypass_low: 900,
            bypass_full: 300,
            rob_reads_low: 900,
            rob_reads_full: 600,
            rob_writes_low: 900,
            rob_writes_full: 600,
            loads: 300,
            stores: 150,
            dcache_accesses: 450,
            dcache_writes_low: 100,
            tag_broadcasts: 1000,
            tag_broadcast_die_driven: [1000, 600, 200, 200],
            width_pred: th_width::WidthPredictStats {
                predictions: 1500,
                correct_low: 1100,
                correct_full: 300,
                unsafe_mispredictions: 20,
                safe_mispredictions: 80,
            },
            ..Default::default()
        }
    }

    #[test]
    fn three_d_reduces_dynamic_power_at_same_frequency() {
        let m = PowerModel::new();
        let s = busy_stats();
        let planar = m.compute(&s, 1000, &PowerConfig::planar(2.66));
        let three_d = m.compute(&s, 1000, &PowerConfig::three_d(2.66, false));
        assert!(three_d.dynamic_w() < planar.dynamic_w());
        assert!(three_d.clock_w < planar.clock_w);
        assert_eq!(three_d.leakage_w, planar.leakage_w);
    }

    #[test]
    fn herding_reduces_power_further() {
        let m = PowerModel::new();
        let s = busy_stats();
        let plain = m.compute(&s, 1000, &PowerConfig::three_d(2.66, false));
        let herded = m.compute(&s, 1000, &PowerConfig::three_d(2.66, true));
        assert!(herded.dynamic_w() < plain.dynamic_w());
        // Clock and leakage are unaffected by herding.
        assert_eq!(herded.clock_w, plain.clock_w);
        assert_eq!(herded.leakage_w, plain.leakage_w);
    }

    #[test]
    fn power_scales_with_frequency() {
        let m = PowerModel::new();
        let s = busy_stats();
        let slow = m.compute(&s, 1000, &PowerConfig::planar(2.66));
        let fast = m.compute(&s, 1000, &PowerConfig::planar(3.93));
        let ratio = fast.dynamic_w() / slow.dynamic_w();
        assert!((ratio - 3.93 / 2.66).abs() < 1e-9);
    }

    #[test]
    fn activity_conserves_accesses() {
        let s = busy_stats();
        let with = unit_activity(&s, true);
        let without = unit_activity(&s, false);
        for ((u1, a), (u2, b)) in with.iter().zip(&without) {
            assert_eq!(u1, u2);
            // Gating moves accesses from full to low but never loses any
            // (scheduler broadcasts are fractional-equivalent, skip).
            if *u1 != Unit::Scheduler {
                assert!(
                    (a.full + a.low) - (b.full + b.low) < 1e-6,
                    "{u1}: herded {} vs plain {}",
                    a.full + a.low,
                    b.full + b.low
                );
            }
        }
    }

    #[test]
    fn capture_rate_limits_gating() {
        // With a predictor that never predicts low, no gating happens
        // even if values are low-width.
        let mut s = busy_stats();
        s.width_pred.correct_low = 0;
        s.width_pred.safe_mispredictions = 1180;
        let acts = unit_activity(&s, true);
        let rf = acts.iter().find(|(u, _)| *u == Unit::RegFile).unwrap().1;
        assert_eq!(rf.low, 0.0);
    }

    #[test]
    #[should_panic(expected = "time basis")]
    fn zero_cycles_rejected() {
        let m = PowerModel::new();
        let s = busy_stats();
        m.compute(&s, 0, &PowerConfig::planar(2.66));
    }
}
