//! # Activity-based power model.
//!
//! The paper computed power by combining HSpice-derived per-access
//! energies with MASE-reported activity factors and the clock frequency
//! (§4): `P = Σ_blocks (accesses × E_access) / t + P_clock + P_leak`.
//! This crate implements the identical methodology against the activity
//! counters of `th-sim`:
//!
//! * [`EnergyTable`] — per-access energies for every [`th_stack3d::Unit`] in the 2D
//!   implementation, with per-unit wire fractions; the 3D energy is
//!   derived by shrinking the wire component with the same per-block wire
//!   scale factors the delay model uses.
//! * Thermal Herding gating: a correctly-predicted low-width access
//!   activates one die of four ("gate approximately 75 % of a block's
//!   switching activity", §5.2), modelled as a configurable
//!   [`EnergyTable::low_width_factor`].
//! * Clock network: 35 % of baseline power, scaling with frequency, and
//!   halved in 3D (§4). Leakage: 20 % of baseline power, unchanged by 3D
//!   or herding (§4).
//! * [`die_fractions`] — how each block's power distributes
//!   over the four dies, from the simulator's width/occupancy statistics;
//!   this feeds the thermal model.
//!
//! The single global calibration anchor is [`EnergyTable::CALIBRATION`],
//! chosen so the dual-core `mpeg2`-like baseline dissipates ≈90 W as in
//! Figure 9(a). Everything else — the 3D reduction, the herding
//! reduction, the per-benchmark 15–30 % range — *emerges* from activity.

#![deny(missing_docs)]

mod dies;
mod energy;
mod leakage;
mod model;

pub use dies::{die_fractions, top_die_share, DieFractionTable};
pub use leakage::{LeakageModel, DEFAULT_DOUBLING_K, DEFAULT_T_REF_K};
pub use energy::EnergyTable;
pub use model::{
    default_activity_source, set_default_activity_source, unit_activity, unit_activity_ledger,
    ActivitySource, PowerBreakdown, PowerConfig, PowerModel, UnitActivity,
};
