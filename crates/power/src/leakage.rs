//! Temperature-dependent leakage.
//!
//! The paper prices leakage as a flat 20 % of baseline power (§4), which
//! is fine for a single steady-state number but wrong inside a
//! closed-loop thermal simulation: subthreshold leakage grows
//! exponentially with temperature, so hot blocks leak more, which heats
//! them further (the positive feedback loop Yavits et al. show materially
//! changes 3D conclusions). This module models that with the standard
//! doubling rule
//!
//! ```text
//! L(unit, T) = L_ref(unit) · 2^((T − T_ref) / T_double)
//! ```
//!
//! where `L_ref` distributes a chip-level calibration wattage over the
//! floorplan blocks in proportion to their silicon area (leakage is a
//! per-transistor effect, and transistor count tracks area). The clock
//! network carries no leakage budget — its power is dynamic and priced
//! separately — so every *block* in the distribution has a strictly
//! positive reference wattage and the model is strictly increasing in
//! temperature for all of them.

use th_stack3d::{Floorplan, Unit};

/// Default reference temperature: the paper's 3D DTM operating region
/// (§5.3 caps runs at ≈103 °C), so the calibration wattage is what the
/// chip leaks when hot, matching the flat 20 %-of-baseline figure used
/// by the steady-state path.
pub const DEFAULT_T_REF_K: f64 = 375.0;

/// Default doubling temperature: leakage doubles every 20 K, a common
/// rule of thumb for the 90 nm node.
pub const DEFAULT_DOUBLING_K: f64 = 20.0;

/// Area-weighted, exponentially temperature-dependent leakage.
#[derive(Clone, Debug, PartialEq)]
pub struct LeakageModel {
    t_ref_k: f64,
    doubling_k: f64,
    /// Chip-total reference watts per unit type (both cores combined),
    /// in [`Unit::all`] order.
    unit_ref_w: Vec<(Unit, f64)>,
}

impl LeakageModel {
    /// Distributes `chip_leakage_ref_w` (the chip's total leakage at the
    /// default reference temperature) over the floorplan's blocks by
    /// area.
    pub fn new(chip_leakage_ref_w: f64, floorplan: &Floorplan) -> LeakageModel {
        LeakageModel::with_reference(
            chip_leakage_ref_w,
            floorplan,
            DEFAULT_T_REF_K,
            DEFAULT_DOUBLING_K,
        )
    }

    /// Like [`LeakageModel::new`] with an explicit reference temperature
    /// and doubling constant.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan contains no non-clock blocks or
    /// `doubling_k` is not positive.
    pub fn with_reference(
        chip_leakage_ref_w: f64,
        floorplan: &Floorplan,
        t_ref_k: f64,
        doubling_k: f64,
    ) -> LeakageModel {
        assert!(doubling_k > 0.0, "doubling constant must be positive");
        let mut areas: Vec<(Unit, f64)> = Unit::all()
            .iter()
            .filter(|u| **u != Unit::Clock)
            .map(|u| (*u, 0.0))
            .collect();
        for p in floorplan.placements() {
            if let Some(slot) = areas.iter_mut().find(|(u, _)| *u == p.unit) {
                slot.1 += p.rect.area();
            }
        }
        let total: f64 = areas.iter().map(|(_, a)| a).sum();
        assert!(total > 0.0, "floorplan has no leaky blocks");
        let unit_ref_w = areas
            .into_iter()
            .map(|(u, a)| (u, chip_leakage_ref_w * a / total))
            .collect();
        LeakageModel { t_ref_k, doubling_k, unit_ref_w }
    }

    /// The reference temperature, kelvin.
    pub fn t_ref_k(&self) -> f64 {
        self.t_ref_k
    }

    /// The temperature multiplier `2^((T − T_ref)/T_double)`.
    pub fn scale(&self, t_k: f64) -> f64 {
        ((t_k - self.t_ref_k) / self.doubling_k).exp2()
    }

    /// Chip-total reference leakage of `unit` at `T_ref` (zero for the
    /// clock network).
    pub fn ref_w(&self, unit: Unit) -> f64 {
        self.unit_ref_w.iter().find(|(u, _)| *u == unit).map_or(0.0, |(_, w)| *w)
    }

    /// Chip-total leakage of `unit` when the block sits at `t_k` kelvin.
    pub fn leakage_w(&self, unit: Unit, t_k: f64) -> f64 {
        self.ref_w(unit) * self.scale(t_k)
    }

    /// The leaky unit types and their reference wattages, in
    /// [`Unit::all`] order.
    pub fn units(&self) -> &[(Unit, f64)] {
        &self.unit_ref_w
    }

    /// Chip-total leakage with every block at the same temperature.
    pub fn total_w(&self, t_k: f64) -> f64 {
        self.unit_ref_w.iter().map(|(_, w)| w).sum::<f64>() * self.scale(t_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LeakageModel {
        LeakageModel::new(18.0, &Floorplan::planar_dual_core())
    }

    #[test]
    fn calibration_sums_at_reference() {
        let m = model();
        assert!((m.total_w(DEFAULT_T_REF_K) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn every_block_leaks_more_when_hot() {
        let m = model();
        for (u, _) in m.units() {
            let cold = m.leakage_w(*u, 300.0);
            let hot = m.leakage_w(*u, 376.0);
            assert!(hot > cold, "{u:?}: {hot} !> {cold}");
            assert!(cold > 0.0, "{u:?} has no leakage at all");
        }
    }

    #[test]
    fn doubling_rule() {
        let m = model();
        let t = 340.0;
        let ratio = m.total_w(t + DEFAULT_DOUBLING_K) / m.total_w(t);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn clock_is_excluded() {
        assert_eq!(model().ref_w(Unit::Clock), 0.0);
    }

    #[test]
    fn stacked_floorplan_keeps_weights() {
        // Uniform geometric scaling must not change the distribution.
        let planar = model();
        let stacked = LeakageModel::new(18.0, &Floorplan::stacked_dual_core());
        for (u, w) in planar.units() {
            assert!((stacked.ref_w(*u) - w).abs() < 1e-9, "{u:?}");
        }
    }
}
