//! Vertical (per-die) power distribution — the herding payoff the
//! thermal model consumes.

use crate::energy::EnergyTable;
use crate::model::{unit_activity, ActivitySource, PowerConfig, UnitActivity};
use th_sim::SimStats;
use th_stack3d::{Unit, DIES};

/// Per-unit die fractions for one run, computed once and read many times.
///
/// Building the table resolves every unit's vertical power split in a
/// single pass (one `unit_activity` evaluation on the modeled path, one
/// ledger read per unit on the measured path); consumers that paint many
/// placements or price every interval query rows for free instead of
/// re-deriving the whole activity vector per unit.
#[derive(Clone, Debug)]
pub struct DieFractionTable {
    rows: [[f64; DIES]; Unit::COUNT],
}

impl DieFractionTable {
    /// Resolves the per-die split of every unit for `stats` under `cfg`.
    ///
    /// * Planar designs put everything on the single die.
    /// * A 3D design without herding splits every block evenly.
    /// * With herding, measured ledger rows decide the split for every
    ///   width-partitioned unit (and the BTB); the scheduler follows its
    ///   per-die entry residency. Hardcoded splits survive only for the
    ///   two units whose internal placement the simulator genuinely does
    ///   not resolve: the branch predictor's direction array sits on the
    ///   top two dies and the rename dependency-check chain is biased
    ///   upward (§3.7).
    pub fn new(stats: &SimStats, energies: &EnergyTable, cfg: &PowerConfig) -> DieFractionTable {
        let row = if !cfg.three_d {
            Some([1.0, 0.0, 0.0, 0.0])
        } else if !cfg.herding {
            Some([0.25; DIES])
        } else {
            None
        };
        if let Some(row) = row {
            let table = DieFractionTable { rows: [row; Unit::COUNT] };
            table.validate();
            return table;
        }

        let even = [0.25; DIES];
        // One activity evaluation for the whole table (the modeled path
        // previously rebuilt the full vector per queried unit).
        let source = cfg.resolve_activity(stats);
        let modeled_acts = match source {
            ActivitySource::Modeled => Some(unit_activity(stats, true)),
            ActivitySource::Ledger => None,
        };

        let mut rows = [even; Unit::COUNT];
        for &unit in Unit::all() {
            rows[unit.index()] = match unit {
                Unit::Scheduler => scheduler_fractions(stats),
                Unit::Bpred => [0.35, 0.35, 0.15, 0.15],
                Unit::Rename => [0.40, 0.20, 0.20, 0.20],
                _ if unit.is_width_partitioned() || unit == Unit::Btb => {
                    match (&modeled_acts, source) {
                        (Some(acts), _) => {
                            let act = acts
                                .iter()
                                .find(|(u, _)| *u == unit)
                                .map(|&(_, a)| a)
                                .unwrap_or_default();
                            modeled_split(unit, act, energies)
                        }
                        (None, _) => ledger_fractions(unit, stats, energies),
                    }
                }
                _ => even,
            };
        }
        let table = DieFractionTable { rows };
        table.validate();
        table
    }

    /// How `unit`'s power distributes over the four dies (die 0 =
    /// adjacent to the heat sink). Fractions sum to 1.
    pub fn fractions(&self, unit: Unit) -> [f64; DIES] {
        self.rows[unit.index()]
    }

    /// Debug-time invariant: every row — including the hardcoded
    /// Bpred/Rename splits — is a distribution (non-negative, sums to 1
    /// within 1e-9).
    fn validate(&self) {
        if cfg!(debug_assertions) {
            for &unit in Unit::all() {
                let row = self.rows[unit.index()];
                let sum: f64 = row.iter().sum();
                debug_assert!(
                    (sum - 1.0).abs() < 1e-9,
                    "{unit} die fractions sum to {sum}, not 1: {row:?}"
                );
                debug_assert!(
                    row.iter().all(|f| *f >= 0.0),
                    "{unit} has a negative die fraction: {row:?}"
                );
            }
        }
    }
}

/// Entry-*residency* per die, not allocation counts: a waiting entry
/// keeps its comparators matching every broadcast cycle, so power follows
/// occupancy time (falling back to allocation counts if residency was not
/// recorded).
fn scheduler_fractions(stats: &SimStats) -> [f64; DIES] {
    let residency: u64 = stats.rs_occupancy_cycles_per_die.iter().sum();
    let counts = if residency > 0 {
        stats.rs_occupancy_cycles_per_die
    } else {
        stats.rs_allocs_per_die
    };
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return [0.25; DIES];
    }
    let mut f = [0.0; DIES];
    for (fr, n) in f.iter_mut().zip(counts) {
        *fr = n as f64 / total as f64;
    }
    f
}

/// Energy-weighted split from the modeled low/full reconstruction: gated
/// accesses burn entirely on die 0; full accesses spread evenly.
fn modeled_split(unit: Unit, act: UnitActivity, energies: &EnergyTable) -> [f64; DIES] {
    let full_e = act.full * energies.e3d_pj(unit);
    let low_e = act.low * energies.e3d_low_pj(unit);
    let total = full_e + low_e;
    if total <= 0.0 {
        return [0.25; DIES];
    }
    let top = (low_e + 0.25 * full_e) / total;
    let rest = (1.0 - top) / 3.0;
    [top, rest, rest, rest]
}

/// Energy-weighted split straight from the measured ledger row: each
/// die's share is the energy its recorded touches dissipated (gated
/// accesses at the low-access energy on the die they landed on, each
/// full-access die-touch at a quarter of the full-access energy).
fn ledger_fractions(unit: Unit, stats: &SimStats, energies: &EnergyTable) -> [f64; DIES] {
    let e_full_touch = energies.e3d_pj(unit) / DIES as f64;
    let e_low = energies.e3d_low_pj(unit);
    let row = stats.activity.row(unit);
    let mut energy = [0.0; DIES];
    for (e, cell) in energy.iter_mut().zip(row.iter()) {
        *e = cell.low as f64 * e_low + cell.full as f64 * e_full_touch;
    }
    let total: f64 = energy.iter().sum();
    if total <= 0.0 {
        return [0.25; DIES];
    }
    let mut f = [0.0; DIES];
    for (fr, e) in f.iter_mut().zip(energy) {
        *fr = e / total;
    }
    f
}

/// How one unit's power distributes over the four dies. Thin wrapper
/// building a [`DieFractionTable`] for a single query — callers that need
/// more than one unit should build the table once instead.
pub fn die_fractions(
    unit: Unit,
    stats: &SimStats,
    energies: &EnergyTable,
    cfg: &PowerConfig,
) -> [f64; 4] {
    DieFractionTable::new(stats, energies, cfg).fractions(unit)
}

/// Sanity helper: the top-die share of total dynamic power, given a full
/// per-unit power breakdown.
pub fn top_die_share(
    breakdown: &crate::model::PowerBreakdown,
    stats: &SimStats,
    energies: &EnergyTable,
    cfg: &PowerConfig,
) -> f64 {
    let table = DieFractionTable::new(stats, energies, cfg);
    let mut top = 0.0;
    let mut total = 0.0;
    for (unit, w) in &breakdown.per_unit {
        top += table.fractions(*unit)[0] * w;
        total += w;
    }
    if total == 0.0 {
        0.0
    } else {
        top / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;
    use th_stack3d::ActivityMatrix;

    fn herded_stats() -> SimStats {
        SimStats {
            cycles: 1000,
            rf_reads_low: 1600,
            rf_reads_full: 200,
            rf_writes_low: 800,
            rf_writes_full: 100,
            int_ops_low: 1500,
            int_ops_full: 200,
            bypass_low: 1500,
            bypass_full: 200,
            rs_allocs_per_die: [1800, 150, 40, 10],
            dispatched: 2000,
            width_pred: th_width::WidthPredictStats {
                predictions: 2000,
                correct_low: 1700,
                correct_full: 250,
                unsafe_mispredictions: 20,
                safe_mispredictions: 30,
            },
            ..Default::default()
        }
    }

    #[test]
    fn planar_is_single_die() {
        let cfg = PowerConfig::planar(2.66);
        let f = die_fractions(Unit::RegFile, &herded_stats(), &EnergyTable::new(), &cfg);
        assert_eq!(f, [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn plain_3d_is_uniform() {
        let cfg = PowerConfig::three_d(3.93, false);
        let f = die_fractions(Unit::RegFile, &herded_stats(), &EnergyTable::new(), &cfg);
        assert_eq!(f, [0.25; 4]);
    }

    #[test]
    fn herding_biases_partitioned_units_to_the_top() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats();
        let table = EnergyTable::new();
        for unit in [Unit::RegFile, Unit::IntExec, Unit::Bypass] {
            let f = die_fractions(unit, &stats, &table, &cfg);
            assert!(f[0] > 0.5, "{unit} top-die share {:.2}", f[0]);
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ledger_rows_drive_measured_fractions() {
        let cfg = PowerConfig::three_d(3.93, true);
        let mut stats = SimStats::default();
        let mut ledger = ActivityMatrix::new();
        // 300 gated reads on the top die, 100 full accesses.
        ledger.add_low(Unit::RegFile, 0, 300);
        ledger.add_full(Unit::RegFile, 100);
        stats.activity = ledger;
        let f = die_fractions(Unit::RegFile, &stats, &EnergyTable::new(), &cfg);
        assert!(f[0] > 0.5, "measured top-die share {:.3}", f[0]);
        // The lower three dies carry identical full-access energy.
        assert!((f[1] - f[2]).abs() < 1e-12 && (f[2] - f[3]).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_falls_back_to_modeled_split() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats(); // scalar counters only, no ledger
        assert!(stats.activity.is_empty());
        let f = die_fractions(Unit::RegFile, &stats, &EnergyTable::new(), &cfg);
        assert!(f[0] > 0.5, "fallback top-die share {:.2}", f[0]);
    }

    #[test]
    fn scheduler_follows_allocation() {
        let cfg = PowerConfig::three_d(3.93, true);
        let f = die_fractions(Unit::Scheduler, &herded_stats(), &EnergyTable::new(), &cfg);
        assert!(f[0] > 0.85, "scheduler top-die {:.2}", f[0]);
        assert!(f[3] < 0.02);
    }

    #[test]
    fn front_end_arrays_stay_uniform_except_bpred() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats();
        let table = EnergyTable::new();
        assert_eq!(die_fractions(Unit::ICache, &stats, &table, &cfg), [0.25; 4]);
        let bpred = die_fractions(Unit::Bpred, &stats, &table, &cfg);
        assert!(bpred[0] + bpred[1] > 0.6);
    }

    #[test]
    fn table_matches_per_unit_queries() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats();
        let energies = EnergyTable::new();
        let table = DieFractionTable::new(&stats, &energies, &cfg);
        for &unit in Unit::all() {
            assert_eq!(
                table.fractions(unit),
                die_fractions(unit, &stats, &energies, &cfg),
                "{unit} row differs"
            );
        }
    }

    #[test]
    fn top_die_share_reflects_herding() {
        let stats = herded_stats();
        let model = PowerModel::new();
        let cfg_h = PowerConfig::three_d(3.93, true);
        let cfg_p = PowerConfig::three_d(3.93, false);
        let b_h = model.compute(&stats, 1000, &cfg_h);
        let b_p = model.compute(&stats, 1000, &cfg_p);
        let herded = top_die_share(&b_h, &stats, model.energies(), &cfg_h);
        let plain = top_die_share(&b_p, &stats, model.energies(), &cfg_p);
        assert!(herded > 0.5, "herded top-die share {herded:.2}");
        assert!((plain - 0.25).abs() < 1e-9);
    }
}
