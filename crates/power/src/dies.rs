//! Vertical (per-die) power distribution — the herding payoff the
//! thermal model consumes.

use crate::energy::EnergyTable;
use crate::model::{unit_activity, PowerConfig};
use th_sim::SimStats;
use th_stack3d::Unit;

/// How one unit's power distributes over the four dies (die 0 = adjacent
/// to the heat sink). Fractions sum to 1.
///
/// * Planar designs put everything on the single die.
/// * A 3D design without herding splits every partitioned block evenly.
/// * With herding, the split follows the simulator's statistics: gated
///   low-width accesses burn on the top die only; the RS allocator's
///   per-die occupancy decides scheduler power (§3.4); the branch
///   predictor's direction array sits on the top two dies (§3.7); the
///   rename dependency-check chain is biased upward (§3.7).
pub fn die_fractions(
    unit: Unit,
    stats: &SimStats,
    energies: &EnergyTable,
    cfg: &PowerConfig,
) -> [f64; 4] {
    if !cfg.three_d {
        return [1.0, 0.0, 0.0, 0.0];
    }
    let even = [0.25; 4];
    if !cfg.herding {
        return even;
    }
    match unit {
        Unit::Scheduler => {
            // Entry-*residency* per die, not allocation counts: a waiting
            // entry keeps its comparators matching every broadcast cycle,
            // so power follows occupancy time (falling back to allocation
            // counts if residency was not recorded).
            let residency: u64 = stats.rs_occupancy_cycles_per_die.iter().sum();
            let counts = if residency > 0 {
                stats.rs_occupancy_cycles_per_die
            } else {
                stats.rs_allocs_per_die
            };
            let total: u64 = counts.iter().sum();
            if total == 0 {
                return even;
            }
            let mut f = [0.0; 4];
            for (fr, n) in f.iter_mut().zip(counts) {
                *fr = n as f64 / total as f64;
            }
            f
        }
        Unit::Bpred => [0.35, 0.35, 0.15, 0.15],
        Unit::Rename => [0.40, 0.20, 0.20, 0.20],
        _ if unit.is_width_partitioned() || unit == Unit::Btb || unit == Unit::Lsq => {
            // Energy-weighted: gated accesses burn entirely on die 0;
            // full accesses spread evenly.
            let act = unit_activity(stats, true)
                .into_iter()
                .find(|(u, _)| *u == unit)
                .map(|(_, a)| a)
                .unwrap_or_default();
            let e_full = energies.e3d_pj(unit);
            let e_low = energies.e3d_low_pj(unit);
            let full_e = act.full * e_full;
            let low_e = act.low * e_low;
            let total = full_e + low_e;
            if total <= 0.0 {
                return even;
            }
            let top = (low_e + 0.25 * full_e) / total;
            let rest = (1.0 - top) / 3.0;
            [top, rest, rest, rest]
        }
        _ => even,
    }
}

/// Sanity helper: the top-die share of total dynamic power, given a full
/// per-unit power breakdown.
pub fn top_die_share(
    breakdown: &crate::model::PowerBreakdown,
    stats: &SimStats,
    energies: &EnergyTable,
    cfg: &PowerConfig,
) -> f64 {
    let mut top = 0.0;
    let mut total = 0.0;
    for (unit, w) in &breakdown.per_unit {
        let f = die_fractions(*unit, stats, energies, cfg);
        top += f[0] * w;
        total += w;
    }
    if total == 0.0 {
        0.0
    } else {
        top / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PowerModel;

    fn herded_stats() -> SimStats {
        SimStats {
            cycles: 1000,
            rf_reads_low: 1600,
            rf_reads_full: 200,
            rf_writes_low: 800,
            rf_writes_full: 100,
            int_ops_low: 1500,
            int_ops_full: 200,
            bypass_low: 1500,
            bypass_full: 200,
            rs_allocs_per_die: [1800, 150, 40, 10],
            dispatched: 2000,
            width_pred: th_width::WidthPredictStats {
                predictions: 2000,
                correct_low: 1700,
                correct_full: 250,
                unsafe_mispredictions: 20,
                safe_mispredictions: 30,
            },
            ..Default::default()
        }
    }

    #[test]
    fn planar_is_single_die() {
        let cfg = PowerConfig::planar(2.66);
        let f = die_fractions(Unit::RegFile, &herded_stats(), &EnergyTable::new(), &cfg);
        assert_eq!(f, [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn plain_3d_is_uniform() {
        let cfg = PowerConfig::three_d(3.93, false);
        let f = die_fractions(Unit::RegFile, &herded_stats(), &EnergyTable::new(), &cfg);
        assert_eq!(f, [0.25; 4]);
    }

    #[test]
    fn herding_biases_partitioned_units_to_the_top() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats();
        let table = EnergyTable::new();
        for unit in [Unit::RegFile, Unit::IntExec, Unit::Bypass] {
            let f = die_fractions(unit, &stats, &table, &cfg);
            assert!(f[0] > 0.5, "{unit} top-die share {:.2}", f[0]);
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scheduler_follows_allocation() {
        let cfg = PowerConfig::three_d(3.93, true);
        let f = die_fractions(Unit::Scheduler, &herded_stats(), &EnergyTable::new(), &cfg);
        assert!(f[0] > 0.85, "scheduler top-die {:.2}", f[0]);
        assert!(f[3] < 0.02);
    }

    #[test]
    fn front_end_arrays_stay_uniform_except_bpred() {
        let cfg = PowerConfig::three_d(3.93, true);
        let stats = herded_stats();
        let table = EnergyTable::new();
        assert_eq!(die_fractions(Unit::ICache, &stats, &table, &cfg), [0.25; 4]);
        let bpred = die_fractions(Unit::Bpred, &stats, &table, &cfg);
        assert!(bpred[0] + bpred[1] > 0.6);
    }

    #[test]
    fn top_die_share_reflects_herding() {
        let stats = herded_stats();
        let model = PowerModel::new();
        let cfg_h = PowerConfig::three_d(3.93, true);
        let cfg_p = PowerConfig::three_d(3.93, false);
        let b_h = model.compute(&stats, 1000, &cfg_h);
        let b_p = model.compute(&stats, 1000, &cfg_p);
        let herded = top_die_share(&b_h, &stats, model.energies(), &cfg_h);
        let plain = top_die_share(&b_p, &stats, model.energies(), &cfg_p);
        assert!(herded > 0.5, "herded top-die share {herded:.2}");
        assert!((plain - 0.25).abs() < 1e-9);
    }
}
