//! Per-access energy table.

use th_stack3d::Unit;

/// Per-access dynamic energy of one block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UnitEnergy {
    /// Energy per access in the planar implementation, picojoules.
    pub e2d_pj: f64,
    /// Fraction of that energy dissipated in wires (the part 3D folding
    /// shrinks).
    pub wire_fraction: f64,
    /// Wire-length scale factor of the 4-die implementation (mirrors the
    /// delay model's per-block factors).
    pub wire_scale_3d: f64,
}

impl UnitEnergy {
    /// Energy per access in the 3D implementation: the gate component is
    /// unchanged, the wire component shrinks with the folded wirelength.
    pub fn e3d_pj(&self) -> f64 {
        self.e2d_pj * (1.0 - self.wire_fraction * (1.0 - self.wire_scale_3d))
    }
}

/// Energies for every unit, with the herding parameters.
#[derive(Clone, Debug)]
pub struct EnergyTable {
    entries: Vec<(Unit, UnitEnergy)>,
    /// Energy of a correctly-gated low-width access relative to a full
    /// 3D access: one of four dies switches (25 %) plus the
    /// width-independent per-access overheads (decoders, memoization-bit
    /// reads, shared drivers) that do not scale with datapath width.
    pub low_width_factor: f64,
}

impl EnergyTable {
    /// Global scale applied to all per-access energies, calibrated once
    /// so the dual-core `mpeg2`-like baseline dissipates ≈90 W (Figure
    /// 9a): 31.5 W clock (35 %) + 18 W leakage (20 %) + 40.5 W dynamic.
    /// This is the model's only fitted constant.
    pub const CALIBRATION: f64 = 8.0;

    /// The 65 nm energy table.
    ///
    /// Absolute values are Wattch/CACTI-class estimates for the Table 1
    /// structure sizes; wire fractions/scales mirror `th-stack3d`'s delay
    /// specs so latency and energy shrink together.
    pub fn new() -> EnergyTable {
        use Unit::*;
        let e = |e2d_pj, wire_fraction, wire_scale_3d| UnitEnergy {
            e2d_pj,
            wire_fraction,
            wire_scale_3d,
        };
        // Wire fractions reflect 65 nm reality: interconnect dissipates
        // more than half of the dynamic energy in array and broadcast
        // structures, which is what lets the 3D fold cut total dynamic
        // power despite the higher clock (§5.2: 90 W → 72.7 W).
        let entries = vec![
            (ICache, e(60.0, 0.70, 0.35)),
            (Itlb, e(8.0, 0.60, 0.40)),
            (Btb, e(18.0, 0.65, 0.40)),
            (Bpred, e(12.0, 0.65, 0.50)),
            (Decode, e(10.0, 0.50, 0.50)),
            (Rename, e(16.0, 0.60, 0.40)),
            (Rob, e(22.0, 0.68, 0.30)),
            (Scheduler, e(28.0, 0.72, 0.25)),
            (RegFile, e(17.0, 0.68, 0.35)),
            (IntExec, e(26.0, 0.50, 0.25)),
            (FpExec, e(80.0, 0.50, 0.25)),
            (Bypass, e(24.0, 0.90, 0.25)),
            (Lsq, e(30.0, 0.68, 0.30)),
            (DCache, e(70.0, 0.70, 0.35)),
            (Dtlb, e(10.0, 0.60, 0.40)),
            (L2, e(900.0, 0.72, 0.35)),
            // The clock network is handled separately (fractional model).
            (Clock, e(0.0, 0.0, 1.0)),
        ];
        EnergyTable { entries, low_width_factor: 0.45 }
    }

    /// Per-access energy of `unit`, planar.
    pub fn e2d_pj(&self, unit: Unit) -> f64 {
        self.lookup(unit).e2d_pj * Self::CALIBRATION
    }

    /// Per-access energy of `unit`, 3D (full-width access on all dies).
    pub fn e3d_pj(&self, unit: Unit) -> f64 {
        self.lookup(unit).e3d_pj() * Self::CALIBRATION
    }

    /// Per-access energy of a gated low-width access in 3D.
    pub fn e3d_low_pj(&self, unit: Unit) -> f64 {
        self.e3d_pj(unit) * self.low_width_factor
    }

    fn lookup(&self, unit: Unit) -> &UnitEnergy {
        &self
            .entries
            .iter()
            .find(|(u, _)| *u == unit)
            .unwrap_or_else(|| panic!("unit {unit} missing from energy table"))
            .1
    }
}

impl Default for EnergyTable {
    fn default() -> EnergyTable {
        EnergyTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_every_unit() {
        let t = EnergyTable::new();
        for &u in Unit::all() {
            let _ = t.e2d_pj(u); // must not panic
        }
    }

    #[test]
    fn three_d_never_costs_more() {
        let t = EnergyTable::new();
        for &u in Unit::all() {
            assert!(t.e3d_pj(u) <= t.e2d_pj(u) + 1e-12, "{u}");
        }
    }

    #[test]
    fn wire_heavy_blocks_save_most() {
        let t = EnergyTable::new();
        let bypass_saving = 1.0 - t.e3d_pj(Unit::Bypass) / t.e2d_pj(Unit::Bypass);
        let decode_saving = 1.0 - t.e3d_pj(Unit::Decode) / t.e2d_pj(Unit::Decode);
        assert!(bypass_saving > 0.5, "bypass saves {bypass_saving:.2}");
        assert!(bypass_saving > decode_saving);
    }

    #[test]
    fn low_width_access_gates_most_of_the_energy() {
        let t = EnergyTable::new();
        // §5.2: herding gates "approximately 75% of a block's switching
        // activity" — the datapath bits. Per-access energy also carries
        // width-independent overheads, so the energy factor sits above
        // the pure 0.25 switching bound but well below 1.
        assert!((t.low_width_factor - 0.45).abs() < 1e-12);
        assert!(t.e3d_low_pj(Unit::RegFile) < 0.5 * t.e3d_pj(Unit::RegFile));
    }

    #[test]
    fn l2_dominates_per_access_energy() {
        let t = EnergyTable::new();
        for &u in Unit::all() {
            if u != Unit::L2 {
                assert!(t.e2d_pj(Unit::L2) > t.e2d_pj(u));
            }
        }
    }
}
