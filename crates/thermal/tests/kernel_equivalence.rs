//! Property test: the red-black SOR kernel and the lexicographic
//! reference kernel solve the same linear system, so on random slab
//! models and random power maps they must converge to the same
//! steady-state field (both stop at a 1e-6 K per-sweep residual; the
//! fixed point is unique because the system is strictly diagonally
//! dominant).

use proptest::prelude::*;
use th_thermal::{
    HeatSink, Kernel, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
};

fn random_model(passive_layers: usize, r_sink: f64) -> StackModel {
    let mut layers = Vec::new();
    for _ in 0..passive_layers {
        layers.push(ModelLayer::passive(300e-6, Material::SILICON));
    }
    layers.push(ModelLayer::active(2e-6, Material::SILICON, 0));
    StackModel::new(
        0.01,
        0.01,
        layers,
        HeatSink { resistance_k_per_w: r_sink, ambient_k: 300.0 },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn red_black_and_lexicographic_agree(
        rows in 3usize..12,
        cols in 3usize..12,
        passive_layers in 1usize..4,
        r_sink in 0.1f64..0.5,
        rects in proptest::collection::vec(
            (0.0f64..0.8, 0.0f64..0.8, 0.1f64..1.0, 0.1f64..1.0, 1.0f64..40.0),
            1..4
        )
    ) {
        let solver = SteadySolver::new(random_model(passive_layers, r_sink), rows, cols);
        let mut p = PowerGrid::new(rows, cols, 0.01, 0.01);
        for &(x0, y0, wx, wy, watts) in &rects {
            let x1 = (x0 + wx).min(1.0);
            let y1 = (y0 + wy).min(1.0);
            p.paint_rect(x0 * 0.01, y0 * 0.01, x1 * 0.01, y1 * 0.01, watts);
        }

        let rb_opts = SolveOptions { kernel: Kernel::RedBlack, ..SolveOptions::default() };
        let lex_opts = SolveOptions { kernel: Kernel::Lexicographic, ..SolveOptions::default() };
        let map_rb = solver.solve_steady(std::slice::from_ref(&p), &rb_opts).unwrap();
        let map_lex = solver.solve_steady(&[p], &lex_opts).unwrap();

        for (i, (a, b)) in map_rb.temps().iter().zip(map_lex.temps()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-3,
                "kernels disagree at cell {i}: red-black {a} vs lexicographic {b} \
                 ({rows}x{cols}, {passive_layers}+1 layers)"
            );
        }
    }
}
