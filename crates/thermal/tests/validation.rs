//! Physics validation of the thermal solver against closed-form
//! solutions and qualitative laws.

use th_thermal::{
    Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver, TransientSolver,
};

const W: f64 = 0.008;
const H: f64 = 0.008;

fn uniform_power(rows: usize, watts: f64) -> Vec<PowerGrid> {
    let mut g = PowerGrid::new(rows, rows, W, H);
    g.paint_rect(0.0, 0.0, W, H, watts);
    vec![g]
}

/// A two-material composite slab under uniform power matches the series
/// thermal-resistance formula.
#[test]
fn composite_slab_series_resistance() {
    let rows = 6;
    let watts = 20.0;
    let r_sink = 0.4;
    let model = StackModel::new(
        W,
        H,
        vec![
            ModelLayer::passive(400e-6, Material::COPPER),
            ModelLayer::passive(100e-6, Material::TIM_ALLOY),
            ModelLayer::active(2e-6, Material::SILICON, 0),
        ],
        th_thermal::HeatSink { resistance_k_per_w: r_sink, ambient_k: 300.0 },
    );
    let solver = SteadySolver::new(model, rows, rows);
    let map = solver.solve_steady(&uniform_power(rows, watts), &SolveOptions::default()).unwrap();

    let area = W * H;
    // Series path between cell centres: ½ copper + full TIM + ½ active
    // (the sink boundary attaches at the copper layer's centre).
    let r_series = (400e-6 / 2.0) / (Material::COPPER.k_vertical * area)
        + 100e-6 / (Material::TIM_ALLOY.k_vertical * area)
        + (2e-6 / 2.0) / (Material::SILICON.k_vertical * area);
    let expected_top = 300.0 + watts * r_sink;
    let expected_active = expected_top + watts * r_series;
    assert!((map.layer_mean(0) - expected_top).abs() < 0.05);
    assert!(
        (map.layer_mean(2) - expected_active).abs() < 0.1,
        "active {:.3} vs analytic {expected_active:.3}",
        map.layer_mean(2)
    );
}

/// Doubling the sink resistance doubles the uniform-power rise.
#[test]
fn sink_resistance_scaling() {
    let rows = 5;
    let peak_at = |r_sink: f64| {
        let model = StackModel::new(
            W,
            H,
            vec![ModelLayer::active(2e-6, Material::SILICON, 0)],
            th_thermal::HeatSink { resistance_k_per_w: r_sink, ambient_k: 300.0 },
        );
        SteadySolver::new(model, rows, rows)
            .solve_steady(&uniform_power(rows, 10.0), &SolveOptions::default())
            .unwrap()
            .max_temp()
    };
    let rise1 = peak_at(0.2) - 300.0;
    let rise2 = peak_at(0.4) - 300.0;
    assert!((rise2 / rise1 - 2.0).abs() < 1e-6, "ratio {}", rise2 / rise1);
}

/// An anisotropic interface (conducts vertically, insulates laterally)
/// must produce a sharper hotspot than an isotropic one of the same
/// vertical conductivity.
#[test]
fn lateral_insulation_sharpens_hotspots() {
    let rows = 11;
    let peak_with = |material: Material| {
        let model = StackModel::new(
            W,
            H,
            vec![
                ModelLayer::passive(300e-6, Material::SILICON),
                ModelLayer::passive(20e-6, material),
                ModelLayer::active(2e-6, Material::SILICON, 0),
            ],
            Default::default(),
        );
        let mut g = PowerGrid::new(rows, rows, W, H);
        g.paint_rect(W * 0.4, H * 0.4, W * 0.6, H * 0.6, 15.0); // centre hotspot
        SteadySolver::new(model, rows, rows)
            .solve_steady(&[g], &SolveOptions::default())
            .unwrap()
            .max_temp()
    };
    let aniso = Material {
        name: "aniso",
        k_vertical: 25.0,
        k_lateral: 0.5,
        heat_capacity: 1e6,
    };
    let iso = Material::isotropic("iso", 25.0, 1e6);
    assert!(
        peak_with(aniso) > peak_with(iso) + 0.01,
        "lateral insulation must trap the hotspot"
    );
}

/// The transient time constant has the right magnitude: a package-scale
/// RC of `C_total × R_sink` (hundreds of ms for silicon + spreader).
#[test]
fn transient_time_constant_magnitude() {
    let rows = 5;
    let thickness = 500e-6;
    let r_sink = 0.3;
    let model = StackModel::new(
        W,
        H,
        vec![ModelLayer::active(thickness, Material::SILICON, 0)],
        th_thermal::HeatSink { resistance_k_per_w: r_sink, ambient_k: 300.0 },
    );
    let solver = SteadySolver::new(model, rows, rows);
    let power = uniform_power(rows, 10.0);
    let steady =
        solver.solve_steady(&power, &SolveOptions::default()).unwrap().max_temp() - 300.0;

    // Analytic single-RC time constant.
    let c_total = Material::SILICON.heat_capacity * thickness * W * H;
    let tau = c_total * r_sink;

    // Integrate to exactly one time constant; expect ≈63% of the rise.
    let mut tr = TransientSolver::from_ambient(solver);
    let steps = 50;
    for _ in 0..steps {
        tr.step(&power, tau / steps as f64, &SolveOptions::default()).unwrap();
    }
    let frac = (tr.current_map().max_temp() - 300.0) / steady;
    assert!(
        (frac - 0.63).abs() < 0.06,
        "after one tau the rise should be ~63%, got {frac:.3}"
    );
}

/// Solves are deterministic: identical inputs give bit-identical fields.
#[test]
fn solver_determinism() {
    let rows = 9;
    let model = StackModel::new(
        W,
        H,
        vec![
            ModelLayer::passive(300e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
        ],
        Default::default(),
    );
    let mut g = PowerGrid::new(rows, rows, W, H);
    g.paint_rect(0.001, 0.002, 0.005, 0.007, 17.5);
    let a = SteadySolver::new(model.clone(), rows, rows)
        .solve_steady(&[g.clone()], &SolveOptions::default())
        .unwrap();
    let b = SteadySolver::new(model, rows, rows)
        .solve_steady(&[g], &SolveOptions::default())
        .unwrap();
    assert_eq!(a.temps(), b.temps());
}

/// Energy balance: in steady state, the heat leaving through the sink
/// equals the power injected (computed from the sink-boundary cells).
#[test]
fn steady_state_energy_balance() {
    let rows = 8;
    let watts = 42.0;
    let r_sink = 0.25;
    let ambient = 305.0;
    let model = StackModel::new(
        W,
        H,
        vec![
            ModelLayer::passive(500e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
        ],
        th_thermal::HeatSink { resistance_k_per_w: r_sink, ambient_k: ambient },
    );
    let solver = SteadySolver::new(model, rows, rows);
    let mut g = PowerGrid::new(rows, rows, W, H);
    g.paint_rect(0.0, 0.0, W / 2.0, H, watts); // asymmetric injection
    let map = solver.solve_steady(&[g], &SolveOptions::default()).unwrap();

    // Each top-layer cell drains (T - ambient) / (R_sink × N) watts.
    let n = (rows * rows) as f64;
    let mut outflow = 0.0;
    for r in 0..rows {
        for c in 0..rows {
            outflow += (map.temp_at(0, r, c) - ambient) / (r_sink * n);
        }
    }
    assert!(
        (outflow - watts).abs() < 0.01 * watts,
        "outflow {outflow:.3} W vs injected {watts} W"
    );
}
