//! # A HotSpot-class compact thermal model for 3D die stacks.
//!
//! The paper used HotSpot 3.0.2 (University of Virginia) for its thermal
//! analysis (§4). HotSpot is a compact RC-network model: the chip is
//! discretised into a grid of cells per layer; each cell exchanges heat
//! with its lateral neighbours, the cells above/below, and (through the
//! heat sink) the ambient. This crate implements the same physics from
//! scratch:
//!
//! * [`Material`] — thermal conductivity (anisotropic: d2d bond layers
//!   conduct well vertically through copper vias but poorly laterally) and
//!   volumetric heat capacity.
//! * [`StackModel`] — the vertical layer stack plus heat-sink boundary.
//! * [`PowerGrid`] — a rasterised power map; floorplan rectangles are
//!   painted onto it with [`PowerGrid::paint_rect`].
//! * [`SteadySolver`] — steady-state solution via red-black SOR.
//! * [`TransientSolver`] — implicit-Euler transient stepping on the same
//!   network.
//! * [`ThermalMap`] — the solved temperature field with per-block queries
//!   and an ASCII heat-map renderer.
//!
//! ## Validation
//!
//! The solver is validated against analytic solutions (1-D slab
//! conduction, superposition, grid-refinement convergence) in the test
//! suite; see `tests/` in this crate.

#![deny(missing_docs)]

mod map;
mod materials;
mod model;
mod power;
mod solve;

pub use map::{MapView, ThermalMap};
pub use materials::Material;
pub use model::{HeatSink, ModelLayer, StackModel};
pub use power::PowerGrid;
pub use solve::{Kernel, SolveError, SolveOptions, SteadySolver, TransientSolver};

/// Ambient temperature HotSpot uses by default, kelvin (45 °C).
pub const AMBIENT_K: f64 = 318.15;
