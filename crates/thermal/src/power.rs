//! Rasterised power maps.

/// A power map over one active layer: a `rows × cols` grid of watts.
///
/// Floorplan rectangles are painted onto the grid; each cell accumulates
/// the fraction of a block's power proportional to the overlap area, so
/// blocks that straddle cell boundaries are handled exactly.
///
/// ```
/// use th_thermal::PowerGrid;
/// let mut g = PowerGrid::new(4, 4, 0.004, 0.004); // 4x4 cells over 4x4 mm
/// g.paint_rect(0.0, 0.0, 0.002, 0.002, 8.0); // 8 W over the top-left quadrant
/// assert!((g.total_watts() - 8.0).abs() < 1e-9);
/// assert!((g.cell(0, 0) - 2.0).abs() < 1e-9);  // 4 cells share it equally
/// assert_eq!(g.cell(3, 3), 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PowerGrid {
    rows: usize,
    cols: usize,
    width_m: f64,
    height_m: f64,
    cells: Vec<f64>,
}

impl PowerGrid {
    /// Creates an all-zero power grid covering `width_m × height_m`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero/non-positive.
    pub fn new(rows: usize, cols: usize, width_m: f64, height_m: f64) -> PowerGrid {
        assert!(rows > 0 && cols > 0, "grid must have cells");
        assert!(width_m > 0.0 && height_m > 0.0, "extent must be positive");
        PowerGrid { rows, cols, width_m, height_m, cells: vec![0.0; rows * cols] }
    }

    /// Grid rows (y direction).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (x direction).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Lateral extent, metres.
    pub fn extent_m(&self) -> (f64, f64) {
        (self.width_m, self.height_m)
    }

    /// Power of cell `(row, col)`, watts.
    pub fn cell(&self, row: usize, col: usize) -> f64 {
        self.cells[row * self.cols + col]
    }

    /// All cells, row-major.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Total painted power, watts.
    pub fn total_watts(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Distributes `watts` uniformly over the rectangle
    /// `[x0, x1) × [y0, y1)` in metres. The power *density* is set by the
    /// full rectangle; any part hanging outside the grid extent is clipped
    /// (its share of the power is lost). Zero-area rectangles paint
    /// nothing.
    pub fn paint_rect(&mut self, x0: f64, y0: f64, x1: f64, y1: f64, watts: f64) {
        let area = (x1 - x0) * (y1 - y0);
        if area <= 0.0 || watts == 0.0 {
            return;
        }
        let density = watts / area; // W/m²
        let x0 = x0.clamp(0.0, self.width_m);
        let x1 = x1.clamp(0.0, self.width_m);
        let y0 = y0.clamp(0.0, self.height_m);
        let y1 = y1.clamp(0.0, self.height_m);
        if x1 <= x0 || y1 <= y0 {
            return;
        }
        let dx = self.width_m / self.cols as f64;
        let dy = self.height_m / self.rows as f64;
        let c0 = (x0 / dx).floor() as usize;
        let c1 = ((x1 / dx).ceil() as usize).min(self.cols);
        let r0 = (y0 / dy).floor() as usize;
        let r1 = ((y1 / dy).ceil() as usize).min(self.rows);
        for r in r0..r1 {
            let cy0 = r as f64 * dy;
            let oy = (y1.min(cy0 + dy) - y0.max(cy0)).max(0.0);
            for c in c0..c1 {
                let cx0 = c as f64 * dx;
                let ox = (x1.min(cx0 + dx) - x0.max(cx0)).max(0.0);
                self.cells[r * self.cols + c] += density * ox * oy;
            }
        }
    }

    /// Adds another grid cell-wise.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add(&mut self, other: &PowerGrid) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a += b;
        }
    }

    /// Scales all cells by `factor`.
    pub fn scale(&mut self, factor: f64) {
        for c in &mut self.cells {
            *c *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paint_conserves_power() {
        let mut g = PowerGrid::new(7, 5, 0.011, 0.0116);
        g.paint_rect(0.001, 0.002, 0.0043, 0.0091, 12.5);
        assert!((g.total_watts() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn paint_outside_is_clamped() {
        let mut g = PowerGrid::new(4, 4, 0.004, 0.004);
        // Half the rectangle hangs off the right edge; the painted power is
        // the density times the clamped area.
        g.paint_rect(0.002, 0.0, 0.006, 0.004, 8.0);
        assert!((g.total_watts() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_area_paints_nothing() {
        let mut g = PowerGrid::new(4, 4, 0.004, 0.004);
        g.paint_rect(0.001, 0.001, 0.001, 0.003, 5.0);
        assert_eq!(g.total_watts(), 0.0);
    }

    #[test]
    fn add_and_scale() {
        let mut a = PowerGrid::new(2, 2, 1.0, 1.0);
        a.paint_rect(0.0, 0.0, 1.0, 1.0, 4.0);
        let mut b = a.clone();
        b.scale(0.5);
        a.add(&b);
        assert!((a.total_watts() - 6.0).abs() < 1e-9);
        assert!((a.cell(0, 0) - 1.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn add_requires_same_shape() {
        let mut a = PowerGrid::new(2, 2, 1.0, 1.0);
        let b = PowerGrid::new(3, 2, 1.0, 1.0);
        a.add(&b);
    }

    proptest! {
        #[test]
        fn conservation_under_random_rects(
            x0 in 0.0f64..0.01, w in 0.0f64..0.01,
            y0 in 0.0f64..0.01, h in 0.0f64..0.01,
            watts in 0.0f64..100.0,
        ) {
            let mut g = PowerGrid::new(16, 16, 0.01, 0.01);
            let x1 = (x0 + w).min(0.01);
            let y1 = (y0 + h).min(0.01);
            g.paint_rect(x0, y0, x1, y1, watts);
            let expected = if (x1 - x0) * (y1 - y0) > 0.0 { watts } else { 0.0 };
            prop_assert!((g.total_watts() - expected).abs() < 1e-6 * (1.0 + expected));
        }

        #[test]
        fn cells_never_negative(rects in proptest::collection::vec(
            (0.0f64..0.01, 0.0f64..0.01, 0.0f64..0.01, 0.0f64..0.01, 0.0f64..50.0), 0..20)) {
            let mut g = PowerGrid::new(8, 8, 0.01, 0.01);
            for (x0, y0, w, h, p) in rects {
                g.paint_rect(x0, y0, x0 + w, y0 + h, p);
            }
            for &c in g.cells() {
                prop_assert!(c >= 0.0);
            }
        }
    }
}
