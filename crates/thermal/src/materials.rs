//! Material thermal properties.

/// Thermal properties of one layer material.
///
/// Conductivity is anisotropic because the d2d bond interface conducts
/// heat well *vertically* (through the copper via array) but poorly
/// *laterally* (vias are discrete posts surrounded by air/underfill).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Material {
    /// Display name.
    pub name: &'static str,
    /// Vertical (through-plane) conductivity, W/(m·K).
    pub k_vertical: f64,
    /// Lateral (in-plane) conductivity, W/(m·K).
    pub k_lateral: f64,
    /// Volumetric heat capacity, J/(m³·K).
    pub heat_capacity: f64,
}

impl Material {
    /// Isotropic constructor.
    pub const fn isotropic(name: &'static str, k: f64, heat_capacity: f64) -> Material {
        Material { name, k_vertical: k, k_lateral: k, heat_capacity }
    }

    /// Bulk silicon near operating temperature (~350 K).
    pub const SILICON: Material = Material::isotropic("silicon", 120.0, 1.75e6);

    /// Copper (heat spreader).
    pub const COPPER: Material = Material::isotropic("copper", 385.0, 3.40e6);

    /// Phase-change metallic alloy TIM (§4). Bulk alloys conduct tens of
    /// W/(m·K), but the effective conductivity of a real bond line —
    /// alloy plus contact resistance at both faces — is far lower; 8
    /// W/(m·K) over the 50 µm line is a standard effective value.
    pub const TIM_ALLOY: Material = Material::isotropic("tim-alloy", 7.5, 1.50e6);

    /// The d2d bond interface (§4: 1–2 µm via pitch, half-pitch via
    /// width ⇒ 25 % copper / 75 % air). The area-weighted parallel rule
    /// gives ≈96 W/(m·K) for a fully-populated via array, but signal vias
    /// only populate routing channels; over active blocks the effective
    /// vertical conductivity is far lower. We use 40 W/(m·K) vertical;
    /// lateral conduction is dominated by the non-metal fill.
    pub const BOND_INTERFACE: Material = Material {
        name: "d2d-bond",
        k_vertical: 40.0,
        k_lateral: 1.0,
        // 0.25 · 3.40e6 + 0.75 · 1.2e3 (air) ≈ 8.5e5
        heat_capacity: 8.5e5,
    };

    /// Effective vertical conductance per unit area of a slab of this
    /// material with thickness `t_m` metres, W/(m²·K).
    pub fn vertical_conductance_per_area(&self, t_m: f64) -> f64 {
        self.k_vertical / t_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bond_interface_is_below_the_fully_populated_bound() {
        // The parallel rule for a fully-populated 25%-copper via array is
        // the upper bound on the interface's vertical conductivity.
        let bound = 0.25 * Material::COPPER.k_vertical + 0.75 * 0.026;
        assert!(Material::BOND_INTERFACE.k_vertical < bound);
        const { assert!(Material::BOND_INTERFACE.k_vertical > 5.0) }
    }

    #[test]
    fn bond_interface_is_strongly_anisotropic() {
        let m = Material::BOND_INTERFACE;
        assert!(m.k_vertical / m.k_lateral > 10.0);
    }

    #[test]
    fn copper_conducts_better_than_silicon() {
        const { assert!(Material::COPPER.k_vertical > Material::SILICON.k_vertical) }
        const { assert!(Material::SILICON.k_vertical > Material::TIM_ALLOY.k_vertical) }
    }

    #[test]
    fn conductance_scales_inversely_with_thickness() {
        let thin = Material::SILICON.vertical_conductance_per_area(10e-6);
        let thick = Material::SILICON.vertical_conductance_per_area(100e-6);
        assert!((thin / thick - 10.0).abs() < 1e-9);
    }
}
