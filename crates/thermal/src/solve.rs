//! Steady-state and transient solvers for the RC network.
//!
//! The governing equation per cell is Kirchhoff's current law for heat:
//!
//! ```text
//! Σ_n G_n (T_n - T) + G_amb (T_amb - T) + P = C dT/dt
//! ```
//!
//! Steady state (`dT/dt = 0`) is solved with red-black successive
//! over-relaxation: cells are colored by the parity of
//! `layer + row + col`, so each cell's six stencil neighbours all carry
//! the opposite color. A sweep relaxes all red cells, then all black
//! cells; within one color pass every update reads only frozen
//! opposite-color values, so the pass can be executed in parallel row
//! strips (via [`th_exec::pool`]) with bit-identical results at any
//! thread count. Per-cell stencil diagonals are precomputed at assembly
//! time and interior cells take a branch-free fast path; convergence is
//! measured every [`SolveOptions::check_every`] sweeps rather than every
//! sweep. The transient uses implicit (backward) Euler, which is
//! unconditionally stable even with the µm-thin d2d layers' tiny time
//! constants, re-using the same relaxation kernel per step with a `C/dt`
//! self-term.
//!
//! The original sequential lexicographic sweep is retained as
//! [`Kernel::Lexicographic`] for cross-validation and benchmarking.

use crate::map::{MapView, ThermalMap};
use crate::model::StackModel;
use crate::power::PowerGrid;
use std::fmt;

/// Relaxation kernel selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Red-black SOR. Cells are colored by `(layer + row + col) & 1`;
    /// all six neighbours of a cell have the opposite color, so each
    /// color pass is data-parallel and its result is independent of
    /// sweep order — parallel runs are bit-identical to sequential.
    #[default]
    RedBlack,
    /// The original sequential lexicographic Gauss-Seidel/SOR sweep
    /// (layer-major, then row, then column). Kept as a reference
    /// implementation for property tests and benchmarks.
    Lexicographic,
}

/// Solver configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolveOptions {
    /// Maximum relaxation sweeps.
    pub max_iters: usize,
    /// Convergence threshold: maximum per-cell temperature change per
    /// sweep, kelvin.
    pub tolerance_k: f64,
    /// SOR over-relaxation factor (1.0 = Gauss-Seidel).
    pub omega: f64,
    /// Relaxation kernel.
    pub kernel: Kernel,
    /// Convergence is checked every `check_every` sweeps (clamped to at
    /// least 1): the intermediate sweeps skip per-cell delta tracking.
    pub check_every: usize,
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            max_iters: 20_000,
            tolerance_k: 1e-6,
            omega: 1.85,
            kernel: Kernel::RedBlack,
            check_every: 8,
        }
    }
}

/// Error returned when a solve fails.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The relaxation did not reach tolerance within `max_iters` sweeps;
    /// the payload is the final residual (kelvin).
    NotConverged(f64),
    /// A power grid's shape does not match the solver grid.
    PowerGridMismatch {
        /// Expected (rows, cols).
        expected: (usize, usize),
        /// Provided (rows, cols).
        got: (usize, usize),
    },
    /// The number of power grids does not match the model's active layers.
    PowerLayerCount {
        /// Active layers in the model.
        expected: usize,
        /// Grids provided.
        got: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NotConverged(r) => write!(f, "solver did not converge (residual {r:.2e} K)"),
            SolveError::PowerGridMismatch { expected, got } => {
                write!(f, "power grid is {got:?}, solver grid is {expected:?}")
            }
            SolveError::PowerLayerCount { expected, got } => {
                write!(f, "model has {expected} active layers but {got} power grids were given")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Shared write handle for a color pass. Lanes write disjoint cells
/// (each lane owns a contiguous strip of `(layer, row)` lines, and
/// within a pass only cells of the active color are written) and read
/// only opposite-color cells frozen by the previous pass, so
/// unsynchronised access is race-free.
#[derive(Clone, Copy)]
struct FieldPtr(*mut f64);

// SAFETY: see the struct doc — all concurrent writes are to disjoint
// indices and all reads are of cells no lane writes during the pass;
// the pool's broadcast barrier orders passes.
unsafe impl Sync for FieldPtr {}

/// The assembled conductance network for a [`StackModel`] at a fixed
/// grid resolution.
///
/// Assembly precomputes, per cell, the stencil diagonal (the sum of all
/// incident conductances, including the ambient link on the sink-side
/// layer), so relaxation sweeps multiply by a cached reciprocal instead
/// of re-deriving boundary terms cell by cell.
///
/// Solves relax with red-black SOR by default: cells are colored by the
/// parity of `layer + row + col`, each color pass runs in parallel row
/// strips on the global [`th_exec::pool`], and convergence is checked
/// every [`SolveOptions::check_every`] sweeps (intermediate sweeps skip
/// residual tracking). [`Kernel::Lexicographic`] selects the sequential
/// reference sweep instead.
#[derive(Clone, Debug)]
pub struct SteadySolver {
    model: StackModel,
    rows: usize,
    cols: usize,
    /// Lateral conductance to the east neighbour, per layer.
    gx: Vec<f64>,
    /// Lateral conductance to the south neighbour, per layer.
    gy: Vec<f64>,
    /// Vertical conductance between layer `l` and `l+1`, per cell.
    gz: Vec<f64>,
    /// Conductance from each top-layer cell to ambient.
    g_amb: f64,
    /// Heat capacity per cell, per layer (J/K).
    cap: Vec<f64>,
    /// Per-cell steady-state stencil diagonal: the sum of all incident
    /// conductances (transient solves add `C/dt` on top).
    diag0: Vec<f64>,
}

impl SteadySolver {
    /// Assembles the network at `rows × cols` lateral resolution.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn new(model: StackModel, rows: usize, cols: usize) -> SteadySolver {
        assert!(rows > 0 && cols > 0, "grid must have cells");
        let dx = model.width_m() / cols as f64;
        let dy = model.height_m() / rows as f64;
        let area = dx * dy;
        let layers = model.layers();
        let gx: Vec<f64> =
            layers.iter().map(|l| l.material.k_lateral * l.thickness_m * dy / dx).collect();
        let gy: Vec<f64> =
            layers.iter().map(|l| l.material.k_lateral * l.thickness_m * dx / dy).collect();
        let gz: Vec<f64> = layers
            .windows(2)
            .map(|w| {
                let r = w[0].thickness_m / (2.0 * w[0].material.k_vertical)
                    + w[1].thickness_m / (2.0 * w[1].material.k_vertical);
                area / r
            })
            .collect();
        let cap: Vec<f64> =
            layers.iter().map(|l| l.material.heat_capacity * l.thickness_m * area).collect();
        let g_amb = 1.0 / (model.sink().resistance_k_per_w * (rows * cols) as f64);

        let n_layers = layers.len();
        let mut diag0 = vec![0.0; n_layers * rows * cols];
        for layer in 0..n_layers {
            for row in 0..rows {
                for col in 0..cols {
                    let mut d = 0.0;
                    if col > 0 {
                        d += gx[layer];
                    }
                    if col + 1 < cols {
                        d += gx[layer];
                    }
                    if row > 0 {
                        d += gy[layer];
                    }
                    if row + 1 < rows {
                        d += gy[layer];
                    }
                    if layer > 0 {
                        d += gz[layer - 1];
                    }
                    if layer + 1 < n_layers {
                        d += gz[layer];
                    }
                    if layer == 0 {
                        d += g_amb;
                    }
                    diag0[(layer * rows + row) * cols + col] = d;
                }
            }
        }
        SteadySolver { model, rows, cols, gx, gy, gz, g_amb, cap, diag0 }
    }

    /// The underlying model.
    pub fn model(&self) -> &StackModel {
        &self.model
    }

    /// Grid resolution `(rows, cols)`.
    pub fn resolution(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn idx(&self, layer: usize, row: usize, col: usize) -> usize {
        (layer * self.rows + row) * self.cols + col
    }

    /// Builds the per-cell power vector from the per-die power grids.
    fn assemble_power(&self, power: &[PowerGrid]) -> Result<Vec<f64>, SolveError> {
        if power.len() != self.model.power_layer_count() {
            return Err(SolveError::PowerLayerCount {
                expected: self.model.power_layer_count(),
                got: power.len(),
            });
        }
        let n_layers = self.model.layers().len();
        let mut p = vec![0.0; n_layers * self.rows * self.cols];
        for (power_index, grid) in power.iter().enumerate() {
            if grid.rows() != self.rows || grid.cols() != self.cols {
                return Err(SolveError::PowerGridMismatch {
                    expected: (self.rows, self.cols),
                    got: (grid.rows(), grid.cols()),
                });
            }
            let layer = self
                .model
                .layer_of_power_index(power_index)
                .expect("power index validated by StackModel");
            for r in 0..self.rows {
                for c in 0..self.cols {
                    p[self.idx(layer, r, c)] = grid.cell(r, c);
                }
            }
        }
        Ok(p)
    }

    /// Folds the ambient link and (for transient steps) the implicit
    /// `C/dt` self-term into a right-hand side `b` and the per-cell
    /// reciprocal diagonal, so each red-black cell update is
    /// `T ← T + ω (b + Σ G·T_nbr) / diag − ω T`.
    fn assemble_system(
        &self,
        p: &[f64],
        transient: Option<(f64, &[f64])>,
    ) -> (Vec<f64>, Vec<f64>) {
        let ambient = self.model.sink().ambient_k;
        let cells = self.rows * self.cols;
        let n_layers = self.model.layers().len();
        let mut b = p.to_vec();
        let mut inv_diag = Vec::with_capacity(b.len());
        for layer in 0..n_layers {
            let dtc = transient.map_or(0.0, |(dt_s, _)| self.cap[layer] / dt_s);
            for cell in 0..cells {
                let i = layer * cells + cell;
                let mut d = self.diag0[i] + dtc;
                if let Some((_, t_old)) = transient {
                    b[i] += dtc * t_old[i];
                }
                if layer == 0 {
                    b[i] += self.g_amb * ambient;
                }
                debug_assert!(d > 0.0);
                if d <= 0.0 {
                    d = 1.0;
                }
                inv_diag.push(1.0 / d);
            }
        }
        (b, inv_diag)
    }

    /// One red-black SOR sweep (both colors); returns the maximum
    /// per-cell change if `track`, else 0.
    ///
    /// Each color pass is fanned out over the global [`th_exec::pool`]
    /// in contiguous `(layer, row)` strips. Because same-color cells
    /// never read each other, the result is bit-identical for any strip
    /// partitioning and thread count.
    fn sweep_red_black(
        &self,
        t: &mut [f64],
        b: &[f64],
        inv_diag: &[f64],
        omega: f64,
        track: bool,
    ) -> f64 {
        let n_lr = self.model.layers().len() * self.rows;
        let pool = th_exec::pool();
        let strips = pool.threads().min(n_lr).max(1);
        let bounds = |s: usize| (s * n_lr / strips, (s + 1) * n_lr / strips);
        let field = FieldPtr(t.as_mut_ptr());
        let mut max_delta = 0.0f64;
        for color in 0..2usize {
            if track {
                let maxima = pool.map_indexed(strips, |s| {
                    let (lo, hi) = bounds(s);
                    let mut local = 0.0f64;
                    for lr in lo..hi {
                        // SAFETY: strips are disjoint `(layer, row)`
                        // ranges and a pass only writes `color` cells.
                        let d = unsafe {
                            self.relax_line(field, b, inv_diag, omega, lr, color, true)
                        };
                        local = local.max(d);
                    }
                    local
                });
                for m in maxima {
                    max_delta = max_delta.max(m);
                }
            } else {
                pool.for_each_index(strips, |s| {
                    let (lo, hi) = bounds(s);
                    for lr in lo..hi {
                        // SAFETY: as above.
                        unsafe {
                            self.relax_line(field, b, inv_diag, omega, lr, color, false);
                        }
                    }
                });
            }
        }
        max_delta
    }

    /// Relaxes the cells of one `(layer, row)` line that belong to
    /// `color`. Interior lines (away from every face of the grid) take
    /// a branch-free path using the precomputed diagonal; boundary
    /// cells fall back to [`SteadySolver::relax_cell`].
    ///
    /// # Safety
    ///
    /// `field` must point to the full temperature vector; no other
    /// thread may concurrently write cells of this line's color or read
    /// cells this call writes (guaranteed by the red-black schedule).
    // The argument list mirrors the solver's hot-loop state; bundling it
    // into a struct would just rename the registers.
    #[allow(clippy::too_many_arguments)]
    unsafe fn relax_line(
        &self,
        field: FieldPtr,
        b: &[f64],
        inv_diag: &[f64],
        omega: f64,
        lr: usize,
        color: usize,
        track: bool,
    ) -> f64 {
        let t = field.0;
        let rows = self.rows;
        let cols = self.cols;
        let cells = rows * cols;
        let n_layers = self.model.layers().len();
        let layer = lr / rows;
        let row = lr % rows;
        let base = lr * cols;
        // Columns of this line whose `(layer+row+col)` parity is `color`.
        let parity = (color ^ (layer + row)) & 1;
        let mut maxd = 0.0f64;

        let interior = layer > 0 && layer + 1 < n_layers && row > 0 && row + 1 < rows;
        if interior && cols >= 3 {
            let gx = self.gx[layer];
            let gy = self.gy[layer];
            let gzm = self.gz[layer - 1];
            let gzp = self.gz[layer];
            if parity == 0 {
                maxd = maxd.max(self.relax_cell(t, b, inv_diag, omega, layer, row, 0, track));
            }
            let mut col = if parity == 1 { 1 } else { 2 };
            while col + 1 < cols {
                let i = base + col;
                let num = b[i]
                    + gx * (*t.add(i - 1) + *t.add(i + 1))
                    + gy * (*t.add(i - cols) + *t.add(i + cols))
                    + gzm * *t.add(i - cells)
                    + gzp * *t.add(i + cells);
                let old = *t.add(i);
                let updated = old + omega * (num * inv_diag[i] - old);
                if track {
                    maxd = maxd.max((updated - old).abs());
                }
                *t.add(i) = updated;
                col += 2;
            }
            if (cols - 1) & 1 == parity && cols > 1 {
                maxd = maxd
                    .max(self.relax_cell(t, b, inv_diag, omega, layer, row, cols - 1, track));
            }
        } else {
            let mut col = parity;
            while col < cols {
                maxd = maxd.max(self.relax_cell(t, b, inv_diag, omega, layer, row, col, track));
                col += 2;
            }
        }
        maxd
    }

    /// Relaxes one cell through the general (boundary-aware) stencil;
    /// returns the absolute change if `track`, else 0.
    ///
    /// # Safety
    ///
    /// Same aliasing contract as [`SteadySolver::relax_line`].
    #[allow(clippy::too_many_arguments)]
    unsafe fn relax_cell(
        &self,
        t: *mut f64,
        b: &[f64],
        inv_diag: &[f64],
        omega: f64,
        layer: usize,
        row: usize,
        col: usize,
        track: bool,
    ) -> f64 {
        let cells = self.rows * self.cols;
        let n_layers = self.model.layers().len();
        let i = (layer * self.rows + row) * self.cols + col;
        let mut num = b[i];
        if col > 0 {
            num += self.gx[layer] * *t.add(i - 1);
        }
        if col + 1 < self.cols {
            num += self.gx[layer] * *t.add(i + 1);
        }
        if row > 0 {
            num += self.gy[layer] * *t.add(i - self.cols);
        }
        if row + 1 < self.rows {
            num += self.gy[layer] * *t.add(i + self.cols);
        }
        if layer > 0 {
            num += self.gz[layer - 1] * *t.add(i - cells);
        }
        if layer + 1 < n_layers {
            num += self.gz[layer] * *t.add(i + cells);
        }
        let old = *t.add(i);
        let updated = old + omega * (num * inv_diag[i] - old);
        *t.add(i) = updated;
        if track {
            (updated - old).abs()
        } else {
            0.0
        }
    }

    /// One lexicographic SOR sweep; returns the maximum temperature
    /// change. This is the original sequential reference kernel.
    ///
    /// `dt_cap[i]` adds an implicit-Euler `C/dt` self-term anchored at
    /// `t_old[i]` (empty slices for steady state).
    fn sweep_lexicographic(
        &self,
        t: &mut [f64],
        p: &[f64],
        omega: f64,
        dt_cap: &[f64],
        t_old: &[f64],
    ) -> f64 {
        let n_layers = self.model.layers().len();
        let ambient = self.model.sink().ambient_k;
        let mut max_delta = 0.0f64;
        for layer in 0..n_layers {
            for row in 0..self.rows {
                for col in 0..self.cols {
                    let i = self.idx(layer, row, col);
                    let mut num = p[i];
                    let mut den = 0.0;
                    if col > 0 {
                        num += self.gx[layer] * t[i - 1];
                        den += self.gx[layer];
                    }
                    if col + 1 < self.cols {
                        num += self.gx[layer] * t[i + 1];
                        den += self.gx[layer];
                    }
                    if row > 0 {
                        num += self.gy[layer] * t[i - self.cols];
                        den += self.gy[layer];
                    }
                    if row + 1 < self.rows {
                        num += self.gy[layer] * t[i + self.cols];
                        den += self.gy[layer];
                    }
                    if layer > 0 {
                        let g = self.gz[layer - 1];
                        num += g * t[i - self.rows * self.cols];
                        den += g;
                    }
                    if layer + 1 < n_layers {
                        let g = self.gz[layer];
                        num += g * t[i + self.rows * self.cols];
                        den += g;
                    }
                    if layer == 0 {
                        num += self.g_amb * ambient;
                        den += self.g_amb;
                    }
                    if !dt_cap.is_empty() {
                        num += dt_cap[i] * t_old[i];
                        den += dt_cap[i];
                    }
                    let fresh = num / den;
                    let updated = t[i] + omega * (fresh - t[i]);
                    max_delta = max_delta.max((updated - t[i]).abs());
                    t[i] = updated;
                }
            }
        }
        max_delta
    }

    /// Relaxes `t` in place until the per-sweep residual drops below
    /// tolerance, checking every `options.check_every` sweeps.
    fn relax_to_convergence(
        &self,
        t: &mut [f64],
        p: &[f64],
        transient: Option<(f64, &[f64])>,
        options: &SolveOptions,
    ) -> Result<(), SolveError> {
        let check_every = options.check_every.max(1);
        let mut residual = f64::INFINITY;
        match options.kernel {
            Kernel::RedBlack => {
                let (b, inv_diag) = self.assemble_system(p, transient);
                let mut done = 0;
                while done < options.max_iters {
                    let block = check_every.min(options.max_iters - done);
                    for _ in 0..block - 1 {
                        self.sweep_red_black(t, &b, &inv_diag, options.omega, false);
                    }
                    residual = self.sweep_red_black(t, &b, &inv_diag, options.omega, true);
                    done += block;
                    if residual < options.tolerance_k {
                        return Ok(());
                    }
                }
            }
            Kernel::Lexicographic => {
                let dt_cap: Vec<f64> = match transient {
                    Some((dt_s, _)) => {
                        let cells = self.rows * self.cols;
                        let mut v = vec![0.0; p.len()];
                        for (layer, cap) in self.cap.iter().enumerate() {
                            for c in v[layer * cells..(layer + 1) * cells].iter_mut() {
                                *c = cap / dt_s;
                            }
                        }
                        v
                    }
                    None => Vec::new(),
                };
                let t_old: &[f64] = transient.map_or(&[], |(_, old)| old);
                let mut done = 0;
                while done < options.max_iters {
                    let block = check_every.min(options.max_iters - done);
                    for _ in 0..block {
                        residual =
                            self.sweep_lexicographic(t, p, options.omega, &dt_cap, t_old);
                    }
                    done += block;
                    if residual < options.tolerance_k {
                        return Ok(());
                    }
                }
            }
        }
        Err(SolveError::NotConverged(residual))
    }

    /// Solves for the steady-state temperature field.
    ///
    /// # Errors
    ///
    /// [`SolveError`] on power-grid shape mismatch or non-convergence.
    pub fn solve_steady(
        &self,
        power: &[PowerGrid],
        options: &SolveOptions,
    ) -> Result<ThermalMap, SolveError> {
        let p = self.assemble_power(power)?;
        let ambient = self.model.sink().ambient_k;
        let total_power: f64 = p.iter().sum();
        // Warm start at the bulk estimate: ambient plus sink rise.
        let start = ambient + total_power * self.model.sink().resistance_k_per_w;
        let mut t = vec![start; p.len()];
        self.relax_to_convergence(&mut t, &p, None, options)?;
        Ok(self.wrap(t))
    }

    fn wrap(&self, temps: Vec<f64>) -> ThermalMap {
        ThermalMap::new(
            self.rows,
            self.cols,
            self.model.layers().len(),
            self.model.width_m(),
            self.model.height_m(),
            self.model.layers().iter().map(|l| l.power_index).collect(),
            temps,
        )
    }
}

/// Implicit-Euler transient integrator over the same network.
///
/// ```no_run
/// use th_thermal::{Material, ModelLayer, PowerGrid, SolveOptions, StackModel,
///                  SteadySolver, TransientSolver};
/// # let model = StackModel::new(0.01, 0.01,
/// #     vec![ModelLayer::active(2e-6, Material::SILICON, 0)], Default::default());
/// let solver = SteadySolver::new(model, 16, 16);
/// let mut transient = TransientSolver::from_ambient(solver);
/// let mut power = vec![PowerGrid::new(16, 16, 0.01, 0.01)];
/// power[0].paint_rect(0.0, 0.0, 0.01, 0.01, 30.0);
/// for _ in 0..100 {
///     transient.step(&power, 1e-3, &SolveOptions::default()).unwrap();
/// }
/// let map = transient.current_map();
/// ```
#[derive(Clone, Debug)]
pub struct TransientSolver {
    solver: SteadySolver,
    t: Vec<f64>,
    /// Previous-step field, double-buffered so `step` allocates nothing.
    t_old: Vec<f64>,
    /// Per-layer power index, cached so borrowing views needs no rebuild.
    power_index: Vec<Option<usize>>,
    elapsed_s: f64,
}

impl TransientSolver {
    /// Starts from a uniform ambient-temperature field.
    pub fn from_ambient(solver: SteadySolver) -> TransientSolver {
        let t0 = solver.model.sink().ambient_k;
        let n = solver.model.layers().len() * solver.rows * solver.cols;
        TransientSolver::with_field(solver, vec![t0; n])
    }

    /// Starts from a previously solved field.
    ///
    /// # Panics
    ///
    /// Panics if the map's shape does not match the solver.
    pub fn from_map(solver: SteadySolver, map: &ThermalMap) -> TransientSolver {
        assert_eq!(
            (map.rows(), map.cols(), map.layer_count()),
            (solver.rows, solver.cols, solver.model.layers().len()),
            "map shape mismatch"
        );
        TransientSolver::with_field(solver, map.temps().to_vec())
    }

    fn with_field(solver: SteadySolver, t: Vec<f64>) -> TransientSolver {
        let power_index = solver.model.layers().iter().map(|l| l.power_index).collect();
        TransientSolver { t_old: t.clone(), t, power_index, solver, elapsed_s: 0.0 }
    }

    /// Simulated time elapsed so far, seconds.
    pub fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }

    /// Advances one implicit-Euler step of `dt_s` seconds under the given
    /// power maps.
    ///
    /// # Errors
    ///
    /// [`SolveError`] on shape mismatch or if the inner relaxation fails
    /// to converge.
    pub fn step(
        &mut self,
        power: &[PowerGrid],
        dt_s: f64,
        options: &SolveOptions,
    ) -> Result<(), SolveError> {
        let p = self.solver.assemble_power(power)?;
        self.t_old.copy_from_slice(&self.t);
        self.solver.relax_to_convergence(&mut self.t, &p, Some((dt_s, &self.t_old)), options)?;
        self.elapsed_s += dt_s;
        Ok(())
    }

    /// Raw temperatures, layer-major then row-major.
    pub fn temps(&self) -> &[f64] {
        &self.t
    }

    /// Hottest temperature anywhere in the stack, kelvin.
    pub fn peak_k(&self) -> f64 {
        self.t.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// A borrowed view over the current field — the zero-copy way to
    /// query temperatures between steps.
    pub fn view(&self) -> MapView<'_> {
        MapView::new(
            self.solver.rows,
            self.solver.cols,
            self.solver.model.layers().len(),
            self.solver.model.width_m(),
            self.solver.model.height_m(),
            &self.power_index,
            &self.t,
        )
    }

    /// The current temperature field as an owning map (copies the field;
    /// prefer [`TransientSolver::view`] in hot loops).
    pub fn current_map(&self) -> ThermalMap {
        self.solver.wrap(self.t.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Material;
    use crate::model::{HeatSink, ModelLayer};

    fn slab_model(r_sink: f64) -> StackModel {
        StackModel::new(
            0.01,
            0.01,
            vec![
                ModelLayer::passive(500e-6, Material::SILICON),
                ModelLayer::active(2e-6, Material::SILICON, 0),
            ],
            HeatSink { resistance_k_per_w: r_sink, ambient_k: 300.0 },
        )
    }

    fn uniform_power(rows: usize, cols: usize, watts: f64) -> Vec<PowerGrid> {
        let mut g = PowerGrid::new(rows, cols, 0.01, 0.01);
        g.paint_rect(0.0, 0.0, 0.01, 0.01, watts);
        vec![g]
    }

    #[test]
    fn uniform_slab_matches_analytic_solution() {
        // With uniform power P and no lateral gradients, the top-layer
        // temperature is ambient + P·R_sink, and the active layer adds the
        // slab's vertical resistance t/(k·A).
        let rows = 8;
        let cols = 8;
        let watts = 50.0;
        let r_sink = 0.3;
        let solver = SteadySolver::new(slab_model(r_sink), rows, cols);
        let map = solver
            .solve_steady(&uniform_power(rows, cols, watts), &SolveOptions::default())
            .unwrap();
        let top = map.layer_mean(0);
        let active = map.layer_mean(1);
        let expected_top = 300.0 + watts * r_sink;
        assert!((top - expected_top).abs() < 0.05, "top {top} vs {expected_top}");
        // Vertical drop across half of layer0 + half of layer1 (cell centres).
        let area = 0.01 * 0.01;
        let r_slab = (500e-6 / 2.0 + 2e-6 / 2.0) / (120.0 * area);
        let expected_active = expected_top + watts * r_slab;
        assert!(
            (active - expected_active).abs() < 0.05,
            "active {active} vs {expected_active}"
        );
    }

    #[test]
    fn superposition_holds() {
        // The network is linear: temperatures for P1+P2 equal the sum of
        // the rises of P1 and P2 alone.
        let rows = 6;
        let cols = 6;
        let solver = SteadySolver::new(slab_model(0.25), rows, cols);
        let opts = SolveOptions::default();

        let mut p1 = PowerGrid::new(rows, cols, 0.01, 0.01);
        p1.paint_rect(0.0, 0.0, 0.004, 0.004, 10.0);
        let mut p2 = PowerGrid::new(rows, cols, 0.01, 0.01);
        p2.paint_rect(0.006, 0.006, 0.01, 0.01, 20.0);
        let mut p12 = p1.clone();
        p12.add(&p2);

        let m1 = solver.solve_steady(&[p1], &opts).unwrap();
        let m2 = solver.solve_steady(&[p2], &opts).unwrap();
        let m12 = solver.solve_steady(&[p12], &opts).unwrap();

        for i in 0..m12.temps().len() {
            let sum = m1.temps()[i] + m2.temps()[i] - 300.0; // one ambient offset
            assert!(
                (m12.temps()[i] - sum).abs() < 1e-3,
                "superposition violated at cell {i}: {} vs {}",
                m12.temps()[i],
                sum
            );
        }
    }

    #[test]
    fn hotspot_is_under_the_heater() {
        let rows = 9;
        let cols = 9;
        let solver = SteadySolver::new(slab_model(0.25), rows, cols);
        let mut p = PowerGrid::new(rows, cols, 0.01, 0.01);
        // Heat only the centre ninth.
        p.paint_rect(0.0033, 0.0033, 0.0066, 0.0066, 30.0);
        let map = solver.solve_steady(&[p], &SolveOptions::default()).unwrap();
        let (l, r, c) = map.argmax();
        assert_eq!(l, 1, "hotspot should be in the active layer");
        assert!((3..6).contains(&r) && (3..6).contains(&c), "hotspot at ({r},{c})");
    }

    #[test]
    fn grid_refinement_converges() {
        // Peak temperature should change little between 16x16 and 24x24.
        let watts = 40.0;
        let opts = SolveOptions::default();
        let peak = |n: usize| {
            let solver = SteadySolver::new(slab_model(0.25), n, n);
            let mut p = PowerGrid::new(n, n, 0.01, 0.01);
            p.paint_rect(0.002, 0.002, 0.008, 0.008, watts);
            solver.solve_steady(&[p], &opts).unwrap().max_temp()
        };
        let t16 = peak(16);
        let t24 = peak(24);
        assert!((t16 - t24).abs() < 0.5, "refinement gap {} K", (t16 - t24).abs());
    }

    #[test]
    fn red_black_matches_lexicographic_reference() {
        // Both kernels must land on the same fixed point of the same
        // linear system, well within the convergence tolerance.
        let rows = 12;
        let cols = 10;
        let solver = SteadySolver::new(slab_model(0.25), rows, cols);
        let mut p = PowerGrid::new(rows, cols, 0.01, 0.01);
        p.paint_rect(0.001, 0.002, 0.007, 0.009, 42.0);
        let rb = SolveOptions { kernel: Kernel::RedBlack, ..SolveOptions::default() };
        let lex = SolveOptions { kernel: Kernel::Lexicographic, ..SolveOptions::default() };
        let map_rb = solver.solve_steady(std::slice::from_ref(&p), &rb).unwrap();
        let map_lex = solver.solve_steady(&[p], &lex).unwrap();
        for (a, b) in map_rb.temps().iter().zip(map_lex.temps()) {
            assert!((a - b).abs() < 1e-3, "kernels disagree: {a} vs {b}");
        }
    }

    #[test]
    fn transient_approaches_steady_state() {
        let rows = 6;
        let cols = 6;
        let solver = SteadySolver::new(slab_model(0.25), rows, cols);
        let opts = SolveOptions::default();
        let power = uniform_power(rows, cols, 30.0);
        let steady = solver.solve_steady(&power, &opts).unwrap();

        let mut tr = TransientSolver::from_ambient(solver);
        // Thermal RC of the package is ~ms–s; integrate 5 s.
        for _ in 0..500 {
            tr.step(&power, 0.01, &opts).unwrap();
        }
        let now = tr.current_map();
        assert!(
            (now.max_temp() - steady.max_temp()).abs() < 0.2,
            "transient {} vs steady {}",
            now.max_temp(),
            steady.max_temp()
        );
        assert!((tr.elapsed_s() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn transient_heats_monotonically_under_constant_power() {
        let rows = 4;
        let cols = 4;
        let solver = SteadySolver::new(slab_model(0.25), rows, cols);
        let opts = SolveOptions::default();
        let power = uniform_power(rows, cols, 30.0);
        let mut tr = TransientSolver::from_ambient(solver);
        let mut last = tr.current_map().max_temp();
        for _ in 0..20 {
            tr.step(&power, 0.005, &opts).unwrap();
            let now = tr.current_map().max_temp();
            assert!(now >= last - 1e-9, "temperature dropped: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let solver = SteadySolver::new(slab_model(0.25), 6, 6);
        let bad = vec![PowerGrid::new(4, 4, 0.01, 0.01)];
        match solver.solve_steady(&bad, &SolveOptions::default()) {
            Err(SolveError::PowerGridMismatch { .. }) => {}
            other => panic!("expected shape error, got {other:?}"),
        }
        match solver.solve_steady(&[], &SolveOptions::default()) {
            Err(SolveError::PowerLayerCount { expected: 1, got: 0 }) => {}
            other => panic!("expected count error, got {other:?}"),
        }
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let solver = SteadySolver::new(slab_model(0.25), 4, 4);
        let p = vec![PowerGrid::new(4, 4, 0.01, 0.01)];
        let map = solver.solve_steady(&p, &SolveOptions::default()).unwrap();
        for &t in map.temps() {
            assert!((t - 300.0).abs() < 1e-6);
        }
    }
}
