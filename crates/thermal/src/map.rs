//! Solved temperature fields and queries over them.

use std::fmt;

/// A solved temperature field: `layers × rows × cols` kelvin values.
#[derive(Clone, Debug, PartialEq)]
pub struct ThermalMap {
    rows: usize,
    cols: usize,
    layers: usize,
    width_m: f64,
    height_m: f64,
    /// Power-grid index of each layer (None = passive).
    power_index: Vec<Option<usize>>,
    temps: Vec<f64>,
}

/// A borrowed temperature field: the same queries as [`ThermalMap`]
/// without owning (or copying) the underlying kelvin values. Obtained
/// from [`ThermalMap::view`] or
/// [`crate::TransientSolver::view`] — the latter lets a control loop
/// inspect the live field every step without cloning it.
#[derive(Clone, Copy, Debug)]
pub struct MapView<'a> {
    rows: usize,
    cols: usize,
    layers: usize,
    width_m: f64,
    height_m: f64,
    power_index: &'a [Option<usize>],
    temps: &'a [f64],
}

impl<'a> MapView<'a> {
    pub(crate) fn new(
        rows: usize,
        cols: usize,
        layers: usize,
        width_m: f64,
        height_m: f64,
        power_index: &'a [Option<usize>],
        temps: &'a [f64],
    ) -> MapView<'a> {
        assert_eq!(temps.len(), rows * cols * layers, "temperature field shape");
        assert_eq!(power_index.len(), layers);
        MapView { rows, cols, layers, width_m, height_m, power_index, temps }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stack layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// Raw temperatures, layer-major then row-major.
    pub fn temps(&self) -> &'a [f64] {
        self.temps
    }

    /// Temperature of cell `(layer, row, col)`, kelvin.
    pub fn temp_at(&self, layer: usize, row: usize, col: usize) -> f64 {
        self.temps[(layer * self.rows + row) * self.cols + col]
    }

    /// Hottest temperature anywhere in the stack.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Index `(layer, row, col)` of the hottest cell.
    pub fn argmax(&self) -> (usize, usize, usize) {
        let (mut best, mut at) = (f64::NEG_INFINITY, 0);
        for (i, &t) in self.temps.iter().enumerate() {
            if t > best {
                best = t;
                at = i;
            }
        }
        let layer = at / (self.rows * self.cols);
        let rem = at % (self.rows * self.cols);
        (layer, rem / self.cols, rem % self.cols)
    }

    /// The stack layer carrying power grid `power_index` (die index).
    pub fn layer_of_power_index(&self, power_index: usize) -> Option<usize> {
        self.power_index.iter().position(|p| *p == Some(power_index))
    }

    /// Mean temperature of one layer.
    pub fn layer_mean(&self, layer: usize) -> f64 {
        let cells = self.rows * self.cols;
        let start = layer * cells;
        self.temps[start..start + cells].iter().sum::<f64>() / cells as f64
    }

    /// Hottest temperature in one layer.
    pub fn layer_max(&self, layer: usize) -> f64 {
        let cells = self.rows * self.cols;
        let start = layer * cells;
        self.temps[start..start + cells].iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest temperature in one layer.
    pub fn layer_min(&self, layer: usize) -> f64 {
        let cells = self.rows * self.cols;
        let start = layer * cells;
        self.temps[start..start + cells].iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Hottest temperature within the rectangle `[x0,x1) × [y0,y1)`
    /// (metres) of one layer — used for per-block hotspot queries.
    /// Cells are selected by centre point; rectangles smaller than a cell
    /// still claim the cell containing them.
    pub fn max_in_rect(&self, layer: usize, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        let dx = self.width_m / self.cols as f64;
        let dy = self.height_m / self.rows as f64;
        let mut best = f64::NEG_INFINITY;
        for r in 0..self.rows {
            let cy = (r as f64 + 0.5) * dy;
            for c in 0..self.cols {
                let cx = (c as f64 + 0.5) * dx;
                let inside = cx >= x0 && cx < x1 && cy >= y0 && cy < y1;
                let claims = x0 >= c as f64 * dx
                    && x1 <= (c + 1) as f64 * dx
                    && y0 >= r as f64 * dy
                    && y1 <= (r + 1) as f64 * dy;
                if inside || claims {
                    best = best.max(self.temp_at(layer, r, c));
                }
            }
        }
        best
    }

    /// Renders one layer as an ASCII heat map with the given temperature
    /// range (kelvin). Characters run cold→hot through ` .:-=+*#%@`.
    pub fn render_layer(&self, layer: usize, t_min: f64, t_max: f64) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let span = (t_max - t_min).max(1e-9);
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let t = self.temp_at(layer, r, c);
                let frac = ((t - t_min) / span).clamp(0.0, 1.0);
                let idx = (frac * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }

    /// An owning copy of the viewed field.
    pub fn to_map(&self) -> ThermalMap {
        ThermalMap::new(
            self.rows,
            self.cols,
            self.layers,
            self.width_m,
            self.height_m,
            self.power_index.to_vec(),
            self.temps.to_vec(),
        )
    }
}

impl ThermalMap {
    pub(crate) fn new(
        rows: usize,
        cols: usize,
        layers: usize,
        width_m: f64,
        height_m: f64,
        power_index: Vec<Option<usize>>,
        temps: Vec<f64>,
    ) -> ThermalMap {
        assert_eq!(temps.len(), rows * cols * layers, "temperature field shape");
        assert_eq!(power_index.len(), layers);
        ThermalMap { rows, cols, layers, width_m, height_m, power_index, temps }
    }

    /// A borrowed view with the same queries.
    pub fn view(&self) -> MapView<'_> {
        MapView {
            rows: self.rows,
            cols: self.cols,
            layers: self.layers,
            width_m: self.width_m,
            height_m: self.height_m,
            power_index: &self.power_index,
            temps: &self.temps,
        }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stack layers.
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// Raw temperatures, layer-major then row-major.
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Temperature of cell `(layer, row, col)`, kelvin.
    pub fn temp_at(&self, layer: usize, row: usize, col: usize) -> f64 {
        self.view().temp_at(layer, row, col)
    }

    /// Hottest temperature anywhere in the stack.
    pub fn max_temp(&self) -> f64 {
        self.view().max_temp()
    }

    /// Index `(layer, row, col)` of the hottest cell.
    pub fn argmax(&self) -> (usize, usize, usize) {
        self.view().argmax()
    }

    /// The stack layer carrying power grid `power_index` (die index).
    pub fn layer_of_power_index(&self, power_index: usize) -> Option<usize> {
        self.view().layer_of_power_index(power_index)
    }

    /// Mean temperature of one layer.
    pub fn layer_mean(&self, layer: usize) -> f64 {
        self.view().layer_mean(layer)
    }

    /// Hottest temperature in one layer.
    pub fn layer_max(&self, layer: usize) -> f64 {
        self.view().layer_max(layer)
    }

    /// Coolest temperature in one layer.
    pub fn layer_min(&self, layer: usize) -> f64 {
        self.view().layer_min(layer)
    }

    /// Hottest temperature within the rectangle `[x0,x1) × [y0,y1)`
    /// (metres) of one layer — used for per-block hotspot queries.
    /// Cells are selected by centre point; rectangles smaller than a cell
    /// still claim the cell containing them.
    pub fn max_in_rect(&self, layer: usize, x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
        self.view().max_in_rect(layer, x0, y0, x1, y1)
    }

    /// Renders one layer as an ASCII heat map with the given temperature
    /// range (kelvin). Characters run cold→hot through ` .:-=+*#%@`.
    pub fn render_layer(&self, layer: usize, t_min: f64, t_max: f64) -> String {
        self.view().render_layer(layer, t_min, t_max)
    }
}

impl fmt::Display for ThermalMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ThermalMap {}x{}x{}: max {:.1} K (layer {})",
            self.layers,
            self.rows,
            self.cols,
            self.max_temp(),
            self.argmax().0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ThermalMap {
        // 2 layers, 2x3 grid; layer 1 is the active one.
        let temps = vec![
            300.0, 301.0, 302.0, //
            303.0, 304.0, 305.0, //
            310.0, 311.0, 312.0, //
            313.0, 314.0, 320.0,
        ];
        ThermalMap::new(2, 3, 2, 0.003, 0.002, vec![None, Some(0)], temps)
    }

    #[test]
    fn indexing() {
        let m = sample();
        assert_eq!(m.temp_at(0, 0, 0), 300.0);
        assert_eq!(m.temp_at(1, 1, 2), 320.0);
        assert_eq!(m.max_temp(), 320.0);
        assert_eq!(m.argmax(), (1, 1, 2));
    }

    #[test]
    fn layer_stats() {
        let m = sample();
        assert!((m.layer_mean(0) - 302.5).abs() < 1e-12);
        assert_eq!(m.layer_max(1), 320.0);
        assert_eq!(m.layer_of_power_index(0), Some(1));
        assert_eq!(m.layer_of_power_index(1), None);
    }

    #[test]
    fn rect_query_picks_hot_corner() {
        let m = sample();
        // Bottom-right cell of layer 1: x in [0.002,0.003), y in [0.001,0.002).
        let t = m.max_in_rect(1, 0.002, 0.001, 0.003, 0.002);
        assert_eq!(t, 320.0);
        // Left column only.
        let t = m.max_in_rect(1, 0.0, 0.0, 0.001, 0.002);
        assert_eq!(t, 313.0);
    }

    #[test]
    fn tiny_rect_claims_containing_cell() {
        let m = sample();
        let t = m.max_in_rect(1, 0.00205, 0.00105, 0.0021, 0.0011);
        assert_eq!(t, 320.0);
    }

    #[test]
    fn render_shape_and_extremes() {
        let m = sample();
        let art = m.render_layer(1, 310.0, 320.0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 3);
        assert!(art.contains('@'), "hottest cell should render as @");
        assert!(art.starts_with(' '), "coldest cell should render as space");
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn wrong_shape_rejected() {
        let _ = ThermalMap::new(2, 2, 2, 1.0, 1.0, vec![None, None], vec![0.0; 7]);
    }
}
