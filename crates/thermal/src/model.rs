//! The vertical stack model: layers plus heat-sink boundary condition.

use crate::materials::Material;

/// One layer of the thermal stack, ordered from the heat sink downward.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelLayer {
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Material of the layer.
    pub material: Material,
    /// If this is an active (power-dissipating) layer, the index of the
    /// power grid that feeds it (die index for processor stacks).
    pub power_index: Option<usize>,
}

impl ModelLayer {
    /// A passive layer.
    pub fn passive(thickness_m: f64, material: Material) -> ModelLayer {
        ModelLayer { thickness_m, material, power_index: None }
    }

    /// An active layer fed by power grid `index`.
    pub fn active(thickness_m: f64, material: Material, index: usize) -> ModelLayer {
        ModelLayer { thickness_m, material, power_index: Some(index) }
    }
}

/// The package boundary above the stack: a convection resistance from the
/// top layer to ambient air.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeatSink {
    /// Total sink-to-ambient thermal resistance, K/W. Typical
    /// high-performance air coolers are 0.1–0.3 K/W.
    pub resistance_k_per_w: f64,
    /// Ambient temperature, kelvin.
    pub ambient_k: f64,
}

impl Default for HeatSink {
    fn default() -> HeatSink {
        HeatSink { resistance_k_per_w: 0.25, ambient_k: crate::AMBIENT_K }
    }
}

/// A complete thermal model of a die stack: lateral extent, vertical
/// layers, and the heat-sink boundary.
///
/// ```
/// use th_thermal::{Material, ModelLayer, StackModel};
/// let model = StackModel::new(
///     0.011, 0.0116, // 11 x 11.6 mm die
///     vec![
///         ModelLayer::passive(1.0e-3, Material::COPPER),   // spreader
///         ModelLayer::passive(50e-6, Material::TIM_ALLOY), // TIM
///         ModelLayer::passive(300e-6, Material::SILICON),  // bulk
///         ModelLayer::active(2e-6, Material::SILICON, 0),  // devices
///     ],
///     Default::default(),
/// );
/// assert_eq!(model.power_layer_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct StackModel {
    width_m: f64,
    height_m: f64,
    layers: Vec<ModelLayer>,
    sink: HeatSink,
}

impl StackModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are non-positive, `layers` is empty, or the
    /// power-grid indices are not dense `0..n`.
    pub fn new(width_m: f64, height_m: f64, layers: Vec<ModelLayer>, sink: HeatSink) -> StackModel {
        assert!(width_m > 0.0 && height_m > 0.0, "die dimensions must be positive");
        assert!(!layers.is_empty(), "stack needs at least one layer");
        let mut indices: Vec<usize> = layers.iter().filter_map(|l| l.power_index).collect();
        indices.sort_unstable();
        for (expect, got) in indices.iter().enumerate() {
            assert_eq!(expect, *got, "power indices must be dense 0..n");
        }
        StackModel { width_m, height_m, layers, sink }
    }

    /// Lateral width (x extent), metres.
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// Lateral height (y extent), metres.
    pub fn height_m(&self) -> f64 {
        self.height_m
    }

    /// The layer stack, heat sink first.
    pub fn layers(&self) -> &[ModelLayer] {
        &self.layers
    }

    /// The heat-sink boundary.
    pub fn sink(&self) -> &HeatSink {
        &self.sink
    }

    /// Number of distinct power grids the model expects.
    pub fn power_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.power_index.is_some()).count()
    }

    /// Index (within [`StackModel::layers`]) of the layer fed by power
    /// grid `power_index`.
    pub fn layer_of_power_index(&self, power_index: usize) -> Option<usize> {
        self.layers.iter().position(|l| l.power_index == Some(power_index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> StackModel {
        StackModel::new(
            0.01,
            0.01,
            vec![
                ModelLayer::passive(1e-3, Material::COPPER),
                ModelLayer::active(2e-6, Material::SILICON, 0),
            ],
            HeatSink::default(),
        )
    }

    #[test]
    fn accessors() {
        let m = simple();
        assert_eq!(m.layers().len(), 2);
        assert_eq!(m.power_layer_count(), 1);
        assert_eq!(m.layer_of_power_index(0), Some(1));
        assert_eq!(m.layer_of_power_index(1), None);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_power_indices_rejected() {
        StackModel::new(
            0.01,
            0.01,
            vec![ModelLayer::active(2e-6, Material::SILICON, 1)],
            HeatSink::default(),
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        StackModel::new(0.0, 0.01, vec![ModelLayer::passive(1e-3, Material::COPPER)], HeatSink::default());
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_layers_rejected() {
        StackModel::new(0.01, 0.01, vec![], HeatSink::default());
    }

    #[test]
    fn default_sink_is_air_cooler_class() {
        let s = HeatSink::default();
        assert!(s.resistance_k_per_w > 0.05 && s.resistance_k_per_w < 0.5);
        assert!((s.ambient_k - 318.15).abs() < 1e-9);
    }
}
