//! BioBench/BioPerf-class kernels: exact k-mer matching over a DNA
//! sequence, Smith-Waterman-style dynamic-programming alignment, and
//! profile-HMM Viterbi scoring. Byte alphabets and 16-bit scores make
//! these low-width-rich, like the media suite, but with more irregular
//! control flow.

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![blast_like(), swalign_like(), hmmer_like()]
}

/// `hmmer`-like: profile-HMM Viterbi scoring — per sequence position,
/// take the max over match/delete transitions with small log-odds scores.
/// Compute-bound with two data-dependent selects per cell.
fn hmmer_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x68_6d_6d);
    let states = 64usize;
    let seqlen = 500usize;
    // Emission scores per (state, symbol): small signed values.
    let emit: Vec<u64> =
        (0..states * 4).map(|_| rng.gen_range(-8i64..12) as u64).collect();
    let seq: Vec<u8> = (0..seqlen).map(|_| rng.gen::<u8>() % 4).collect();
    a.data_u64s("emit", &emit);
    a.data_bytes("seq", &seq);
    a.data_zeros("vprev", states * 8);
    a.data_zeros("vcurr", states * 8);

    a.la(Reg::X5, "seq");
    a.li(Reg::X6, seqlen as i64);
    a.li(Reg::X26, 0); // best path score
    a.label("position");
    a.lbu(Reg::X7, 0, Reg::X5); // symbol
    a.la(Reg::X8, "emit");
    a.slli(Reg::X9, Reg::X7, 3);
    a.add(Reg::X8, Reg::X8, Reg::X9); // &emit[0][sym]; state stride 32 B
    a.la(Reg::X10, "vprev");
    a.la(Reg::X11, "vcurr");
    a.li(Reg::X12, states as i64 - 1);
    a.li(Reg::X13, 0); // diagonal carry (vprev[k-1])
    a.label("state");
    // match = max(vprev[k], vprev[k-1] + 2)
    a.ld(Reg::X14, 0, Reg::X10);
    a.addi(Reg::X15, Reg::X13, 2);
    a.bge(Reg::X14, Reg::X15, "keep");
    a.mv(Reg::X14, Reg::X15);
    a.label("keep");
    // add the emission for this state/symbol
    a.ld(Reg::X16, 0, Reg::X8);
    a.add(Reg::X14, Reg::X14, Reg::X16);
    // delete-path decay: drop by 1, clamp at 0
    a.addi(Reg::X14, Reg::X14, -1);
    a.bge(Reg::X14, Reg::X0, "clamped");
    a.li(Reg::X14, 0);
    a.label("clamped");
    a.sd(Reg::X14, 0, Reg::X11);
    a.ld(Reg::X13, 0, Reg::X10); // new diagonal = old vprev[k]
    a.blt(Reg::X14, Reg::X26, "not_best");
    a.mv(Reg::X26, Reg::X14);
    a.label("not_best");
    a.addi(Reg::X8, Reg::X8, 32); // next state's emission row
    a.addi(Reg::X10, Reg::X10, 8);
    a.addi(Reg::X11, Reg::X11, 8);
    a.addi(Reg::X12, Reg::X12, -1);
    a.bne(Reg::X12, Reg::X0, "state");
    // vprev <- vcurr
    a.la(Reg::X10, "vprev");
    a.la(Reg::X11, "vcurr");
    a.li(Reg::X12, states as i64);
    a.label("copy");
    a.ld(Reg::X14, 0, Reg::X11);
    a.sd(Reg::X14, 0, Reg::X10);
    a.addi(Reg::X10, Reg::X10, 8);
    a.addi(Reg::X11, Reg::X11, 8);
    a.addi(Reg::X12, Reg::X12, -1);
    a.bne(Reg::X12, Reg::X0, "copy");
    a.addi(Reg::X5, Reg::X5, 1);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "position");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "hmmer-like",
        suite: Suite::Bio,
        program: a.assemble().expect("hmmer-like assembles"),
        inst_budget: 800_000,
    }
}

/// `blast`-like seed matching: slide an 8-mer over a DNA sequence using a
/// rolling 2-bit-packed code and count exact seed hits.
fn blast_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x62_6c_61);
    let n = 30_000usize;
    let dna: Vec<u8> = (0..n).map(|_| rng.gen::<u8>() % 4).collect();
    a.data_bytes("dna", &dna);
    // The query seed: the 8-mer starting at a chosen position, so at
    // least one hit is guaranteed.
    let seed_pos = 12_345usize;
    let mut seed_code = 0u64;
    for i in 0..8 {
        seed_code = (seed_code << 2) | dna[seed_pos + i] as u64;
    }

    a.la(Reg::X5, "dna");
    a.li(Reg::X6, n as i64);
    a.li(Reg::X7, seed_code as i64);
    a.li(Reg::X11, 0); // hit count
    a.li(Reg::X12, 0xffff); // 16-bit mask (8 bases × 2 bits)
    a.li(Reg::X29, 2); // database passes (one per query batch)
    a.label("pass");
    a.li(Reg::X9, 0); // rolling code
    a.li(Reg::X10, 0); // position
    a.label("loop");
    a.add(Reg::X13, Reg::X5, Reg::X10);
    a.lbu(Reg::X14, 0, Reg::X13);
    a.slli(Reg::X9, Reg::X9, 2);
    a.or(Reg::X9, Reg::X9, Reg::X14);
    a.and(Reg::X9, Reg::X9, Reg::X12);
    a.bne(Reg::X9, Reg::X7, "miss");
    a.addi(Reg::X11, Reg::X11, 1);
    a.label("miss");
    a.addi(Reg::X10, Reg::X10, 1);
    a.bne(Reg::X10, Reg::X6, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X11);
    a.halt();

    Workload {
        name: "blast-like",
        suite: Suite::Bio,
        program: a.assemble().expect("blast-like assembles"),
        inst_budget: 650_000,
    }
}

/// Smith-Waterman-like local alignment: the DP inner loop with
/// match/mismatch scoring and a max-with-zero clamp — 16-bit scores,
/// three data-dependent selects per cell.
fn swalign_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x73_77_61);
    let qlen = 48usize;
    let dlen = 600usize;
    let query: Vec<u8> = (0..qlen).map(|_| rng.gen::<u8>() % 4).collect();
    let db: Vec<u8> = (0..dlen).map(|_| rng.gen::<u8>() % 4).collect();
    a.data_bytes("query", &query);
    a.data_bytes("db", &db);
    // Two DP rows of 16-bit scores.
    a.data_zeros("prev", (qlen + 1) * 2);
    a.data_zeros("curr", (qlen + 1) * 2);

    a.li(Reg::X26, 0); // best score
    a.la(Reg::X5, "db");
    a.li(Reg::X6, dlen as i64);
    a.label("outer");
    a.lbu(Reg::X7, 0, Reg::X5); // db char
    a.la(Reg::X8, "query");
    a.la(Reg::X9, "prev");
    a.la(Reg::X10, "curr");
    a.li(Reg::X11, qlen as i64);
    a.li(Reg::X12, 0); // left neighbour (curr[j-1])
    a.label("inner");
    a.lbu(Reg::X13, 0, Reg::X8); // query char
    a.lhu(Reg::X14, 0, Reg::X9); // prev[j-1] (diagonal)
    // score = diag + (match ? +3 : -2)
    a.beq(Reg::X13, Reg::X7, "match");
    a.addi(Reg::X15, Reg::X14, -2);
    a.jmp("gap");
    a.label("match");
    a.addi(Reg::X15, Reg::X14, 3);
    a.label("gap");
    // up = prev[j] - 1; left = curr[j-1] - 1
    a.lhu(Reg::X16, 2, Reg::X9);
    a.addi(Reg::X16, Reg::X16, -1);
    a.addi(Reg::X17, Reg::X12, -1);
    // cell = max(score, up, left, 0)
    a.blt(Reg::X16, Reg::X15, "skip_up");
    a.mv(Reg::X15, Reg::X16);
    a.label("skip_up");
    a.blt(Reg::X17, Reg::X15, "skip_left");
    a.mv(Reg::X15, Reg::X17);
    a.label("skip_left");
    a.bge(Reg::X15, Reg::X0, "clamped");
    a.li(Reg::X15, 0);
    a.label("clamped");
    a.sh(Reg::X15, 2, Reg::X10);
    a.mv(Reg::X12, Reg::X15);
    // track the best
    a.blt(Reg::X15, Reg::X26, "not_best");
    a.mv(Reg::X26, Reg::X15);
    a.label("not_best");
    a.addi(Reg::X8, Reg::X8, 1);
    a.addi(Reg::X9, Reg::X9, 2);
    a.addi(Reg::X10, Reg::X10, 2);
    a.addi(Reg::X11, Reg::X11, -1);
    a.bne(Reg::X11, Reg::X0, "inner");
    // Swap rows: copy curr -> prev (round the 2-byte cells up to whole
    // 8-byte chunks; the trailing padding bytes are dead space).
    a.la(Reg::X9, "prev");
    a.la(Reg::X10, "curr");
    a.li(Reg::X11, ((qlen + 1) * 2).div_ceil(8) as i64);
    a.label("copy");
    a.ld(Reg::X13, 0, Reg::X10);
    a.sd(Reg::X13, 0, Reg::X9);
    a.addi(Reg::X9, Reg::X9, 8);
    a.addi(Reg::X10, Reg::X10, 8);
    a.addi(Reg::X11, Reg::X11, -1);
    a.bne(Reg::X11, Reg::X0, "copy");
    a.addi(Reg::X5, Reg::X5, 1);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "outer");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "swalign-like",
        suite: Suite::Bio,
        program: a.assemble().expect("swalign-like assembles"),
        inst_budget: 900_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn blast_finds_the_planted_seed() {
        let w = blast_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let hits = m.reg(Reg::X28);
        // The planted occurrence guarantees ≥1; random 8-mers over a
        // 4-letter alphabet give ~30000/65536 expected extras.
        assert!(hits >= 2, "no seed hits (two passes)");
        assert!(hits.is_multiple_of(2), "both passes must agree: {hits}");
        assert!(hits < 100, "implausible hit count {hits}");
    }

    #[test]
    fn hmmer_score_is_positive_and_bounded() {
        let w = hmmer_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let best = m.reg(Reg::X28) as i64;
        // Clamped-at-zero Viterbi with max emission 11 and diagonal bonus
        // 2: the best score is positive and bounded by seqlen × 13.
        assert!(best > 0, "best = {best}");
        assert!(best <= 500 * 13, "best = {best}");
    }

    #[test]
    fn swalign_score_is_positive_and_bounded() {
        let w = swalign_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let best = m.reg(Reg::X28) as i64;
        // A 48-long query over a 4-letter alphabet: local alignment score
        // must be positive (matches exist) and ≤ 3×qlen.
        assert!(best > 0, "best = {best}");
        assert!(best <= 3 * 48, "best = {best}");
    }
}
