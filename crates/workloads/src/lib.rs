//! # TH64 benchmark kernels.
//!
//! The paper evaluated 106 application traces from SPECint2000, SPECfp2000,
//! MediaBench, MiBench, the Wisconsin pointer-intensive suite, and the
//! BioBench/BioPerf bioinformatics suites (§4). The binaries and their
//! SimPoints are not available, so this crate provides hand-written TH64
//! kernels grouped into the same six [`Suite`]s. Each kernel is written to
//! land at its suite's point in the behavioural space that drives the
//! paper's results:
//!
//! * **memory intensity** (DRAM accesses per kilo-instruction) — separates
//!   `mcf`-like (min speedup, 7 %) from `crafty`/`patricia`-like (max
//!   speedup, 65–77 %), and SPECfp's mid-pack 29.5 %;
//! * **operand width distribution** — media/embedded kernels process 8/16
//!   bit data (max power savings, 30 %); chess bitboards and FP are
//!   full-width; `yacr2`-like mixes widths (min savings, 15 %);
//! * **branch behaviour** — predictable loop nests vs data-dependent
//!   branches.
//!
//! Every kernel is a complete program that runs to `halt` and
//! self-validates (tests check final register checksums against the
//! functional interpreter).
//!
//! ```
//! use th_workloads::{all_workloads, Suite};
//! let suite: Vec<_> = all_workloads();
//! assert!(suite.len() >= 18);
//! assert!(suite.iter().any(|w| w.suite == Suite::SpecInt));
//! ```

#![deny(missing_docs)]

mod bio;
mod embedded;
mod media;
mod pointer;
mod specfp;
mod specint;

use std::fmt;
use th_isa::Program;

/// The benchmark suite a workload belongs to (the grouping of Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// SPECint2000-class integer applications.
    SpecInt,
    /// SPECfp2000-class floating-point applications.
    SpecFp,
    /// MediaBench-class media kernels.
    Media,
    /// MiBench-class embedded kernels.
    Embedded,
    /// Wisconsin pointer-intensive-class applications.
    Pointer,
    /// BioBench/BioPerf-class bioinformatics kernels.
    Bio,
}

impl Suite {
    /// All suites in Figure 8's presentation order.
    pub fn all() -> &'static [Suite] {
        &[Suite::SpecInt, Suite::SpecFp, Suite::Media, Suite::Embedded, Suite::Pointer, Suite::Bio]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::SpecInt => "SPECint",
            Suite::SpecFp => "SPECfp",
            Suite::Media => "MediaBench",
            Suite::Embedded => "MiBench",
            Suite::Pointer => "Pointer",
            Suite::Bio => "Bio",
        }
    }
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A runnable benchmark kernel.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Kernel name (e.g. `"mcf-like"`).
    pub name: &'static str,
    /// Which suite it represents.
    pub suite: Suite,
    /// The assembled program.
    pub program: Program,
    /// Instruction budget for timing simulation (the kernel halts within
    /// this budget; the budget mirrors SimPoint-style fixed-length
    /// simulation windows).
    pub inst_budget: u64,
}

/// Builds every workload in the registry.
pub fn all_workloads() -> Vec<Workload> {
    let mut v = Vec::new();
    v.extend(specint::workloads());
    v.extend(specfp::workloads());
    v.extend(media::workloads());
    v.extend(embedded::workloads());
    v.extend(pointer::workloads());
    v.extend(bio::workloads());
    v
}

/// Builds the workloads of one suite.
pub fn suite_workloads(suite: Suite) -> Vec<Workload> {
    all_workloads().into_iter().filter(|w| w.suite == suite).collect()
}

/// Builds a single workload by name.
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn registry_covers_all_suites() {
        let all = all_workloads();
        for &suite in Suite::all() {
            let n = all.iter().filter(|w| w.suite == suite).count();
            assert!(n >= 2, "suite {suite} has only {n} workloads");
        }
        assert!(all.len() >= 18, "only {} workloads", all.len());
    }

    #[test]
    fn names_are_unique() {
        let all = all_workloads();
        let mut names: Vec<_> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }

    #[test]
    fn every_workload_halts_within_budget() {
        for w in all_workloads() {
            let mut m = Machine::new(&w.program);
            let summary = m
                .run(w.inst_budget)
                .unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            assert!(
                summary.halted,
                "{} did not halt within {} instructions ({} executed)",
                w.name, w.inst_budget, summary.instructions
            );
            assert!(
                summary.instructions > w.inst_budget / 20,
                "{} is trivially short: {} instructions",
                w.name,
                summary.instructions
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("mcf-like").is_some());
        assert!(workload_by_name("nonexistent").is_none());
    }

    #[test]
    fn suite_filter() {
        for w in suite_workloads(Suite::Media) {
            assert_eq!(w.suite, Suite::Media);
        }
    }
}
