//! SPECfp2000-class kernels: stencil sweeps, neural-net dot products, and
//! sparse gathers. Floating-point values are always full-width, and the
//! working sets stream from L2/DRAM — which is why the paper's FP group
//! sees the smallest (29.5 %) speedup.

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![swim_like(), art_like(), equake_like()]
}

/// `swim`-like: a 1-D three-point stencil swept over a 2 MB f64 field —
/// streaming FP with every line touched once.
fn swim_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x73_77_69);
    let n = 256 * 1024usize; // 2 MB
    let field: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
    a.data_f64s("field", &field);
    a.data_zeros("out", n * 8);

    a.la(Reg::X5, "field");
    a.la(Reg::X6, "out");
    a.li(Reg::X7, (n - 2) as i64 / 8); // process every 8th point: one per line
    // Stencil coefficients 0.25, 0.5, 0.25.
    a.li(Reg::X8, 1);
    a.fcvtdl(Reg::F10, Reg::X8);
    a.li(Reg::X8, 4);
    a.fcvtdl(Reg::F11, Reg::X8);
    a.fdiv(Reg::F10, Reg::F10, Reg::F11); // 0.25
    a.fadd(Reg::F12, Reg::F10, Reg::F10); // 0.5
    a.label("loop");
    a.fld(Reg::F1, 0, Reg::X5);
    a.fld(Reg::F2, 8, Reg::X5);
    a.fld(Reg::F3, 16, Reg::X5);
    a.fmul(Reg::F1, Reg::F1, Reg::F10);
    a.fmul(Reg::F2, Reg::F2, Reg::F12);
    a.fmul(Reg::F3, Reg::F3, Reg::F10);
    a.fadd(Reg::F4, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.fsd(Reg::F4, 8, Reg::X6);
    a.addi(Reg::X5, Reg::X5, 64);
    a.addi(Reg::X6, Reg::X6, 64);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "loop");
    a.fcvtld(Reg::X28, Reg::F4);
    a.halt();

    Workload {
        name: "swim-like",
        suite: Suite::SpecFp,
        program: a.assemble().expect("swim-like assembles"),
        inst_budget: 600_000,
    }
}

/// `art`-like: repeated dot products against an L2-resident weight matrix
/// (neural-network F1 layer) — FP compute with L1-miss traffic.
fn art_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x61_72_74);
    let neurons = 64usize;
    let inputs = 256usize;
    let weights: Vec<f64> =
        (0..neurons * inputs).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let input: Vec<f64> = (0..inputs).map(|_| rng.gen_range(0.0..1.0)).collect();
    a.data_f64s("weights", &weights);
    a.data_f64s("input", &input);
    a.data_zeros("activations", neurons * 8);

    a.li(Reg::X20, 5); // epochs
    a.label("epoch");
    a.la(Reg::X5, "weights");
    a.la(Reg::X7, "activations");
    a.li(Reg::X8, neurons as i64);
    a.label("neuron");
    a.la(Reg::X6, "input");
    a.li(Reg::X9, inputs as i64 / 4);
    a.fmvdx(Reg::F4, Reg::X0); // accumulator = 0
    a.label("dot");
    a.fld(Reg::F1, 0, Reg::X5);
    a.fld(Reg::F2, 0, Reg::X6);
    a.fmul(Reg::F3, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.fld(Reg::F1, 8, Reg::X5);
    a.fld(Reg::F2, 8, Reg::X6);
    a.fmul(Reg::F3, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.fld(Reg::F1, 16, Reg::X5);
    a.fld(Reg::F2, 16, Reg::X6);
    a.fmul(Reg::F3, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.fld(Reg::F1, 24, Reg::X5);
    a.fld(Reg::F2, 24, Reg::X6);
    a.fmul(Reg::F3, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.addi(Reg::X5, Reg::X5, 32);
    a.addi(Reg::X6, Reg::X6, 32);
    a.addi(Reg::X9, Reg::X9, -1);
    a.bne(Reg::X9, Reg::X0, "dot");
    a.fsd(Reg::F4, 0, Reg::X7);
    a.addi(Reg::X7, Reg::X7, 8);
    a.addi(Reg::X8, Reg::X8, -1);
    a.bne(Reg::X8, Reg::X0, "neuron");
    a.addi(Reg::X20, Reg::X20, -1);
    a.bne(Reg::X20, Reg::X0, "epoch");
    a.fcvtld(Reg::X28, Reg::F4);
    a.halt();

    Workload {
        name: "art-like",
        suite: Suite::SpecFp,
        program: a.assemble().expect("art-like assembles"),
        inst_budget: 800_000,
    }
}

/// `equake`-like: sparse matrix-vector product — indirect integer indexing
/// feeding FP accumulation, with a 4 MB-class combined working set.
fn equake_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x65_71_75);
    let nnz = 16_000usize;
    let ncols = 128 * 1024usize; // 1 MB vector
    let cols: Vec<u64> = (0..nnz).map(|_| rng.gen_range(0..ncols as u64)).collect();
    let vals: Vec<f64> = (0..nnz).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let vec: Vec<f64> = (0..ncols).map(|_| rng.gen_range(0.0..1.0)).collect();
    a.data_u64s("cols", &cols);
    a.data_f64s("vals", &vals);
    a.data_f64s("vec", &vec);

    a.li(Reg::X29, 3); // solver iterations
    a.fmvdx(Reg::F4, Reg::X0);
    a.label("iter");
    a.la(Reg::X5, "cols");
    a.la(Reg::X6, "vals");
    a.la(Reg::X7, "vec");
    a.li(Reg::X8, nnz as i64);
    a.label("loop");
    a.ld(Reg::X9, 0, Reg::X5); // column index
    a.slli(Reg::X9, Reg::X9, 3);
    a.add(Reg::X9, Reg::X9, Reg::X7);
    a.fld(Reg::F1, 0, Reg::X9); // gather
    a.fld(Reg::F2, 0, Reg::X6);
    a.fmul(Reg::F3, Reg::F1, Reg::F2);
    a.fadd(Reg::F4, Reg::F4, Reg::F3);
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X6, Reg::X6, 8);
    a.addi(Reg::X8, Reg::X8, -1);
    a.bne(Reg::X8, Reg::X0, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "iter");
    a.fcvtld(Reg::X28, Reg::F4);
    a.halt();

    Workload {
        name: "equake-like",
        suite: Suite::SpecFp,
        program: a.assemble().expect("equake-like assembles"),
        inst_budget: 700_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn swim_writes_smoothed_field() {
        let w = swim_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let out = w.program.label("out").unwrap();
        let v = f64::from_bits(m.mem().read_u64(out + 8));
        assert!(v > 0.0 && v < 1.0, "smoothed value {v}");
    }

    #[test]
    fn art_activations_are_finite() {
        let w = art_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let act = w.program.label("activations").unwrap();
        for i in 0..64u64 {
            let v = f64::from_bits(m.mem().read_u64(act + i * 8));
            assert!(v.is_finite(), "activation {i} = {v}");
            assert!(v.abs() < 512.0);
        }
    }

    #[test]
    fn equake_dot_product_matches_reference() {
        let w = equake_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        // Recompute the sparse dot product from the memory image.
        let cols = w.program.label("cols").unwrap();
        let vals = w.program.label("vals").unwrap();
        let vec = w.program.label("vec").unwrap();
        let mut acc = 0.0f64;
        for _ in 0..3 {
            for i in 0..16_000u64 {
                let c = m.mem().read_u64(cols + i * 8);
                let v = f64::from_bits(m.mem().read_u64(vals + i * 8));
                let x = f64::from_bits(m.mem().read_u64(vec + c * 8));
                acc += v * x;
            }
        }
        assert_eq!(m.reg(Reg::X28), acc as i64 as u64);
    }
}
