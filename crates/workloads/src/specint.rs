//! SPECint2000-class kernels: compression, compiler-style dispatch,
//! memory-bound network optimisation, and chess bitboards.

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![gzip_like(), gcc_like(), mcf_like(), crafty_like(), parser_like()]
}

/// `parser`-like: dictionary hash-table probing — an L1-resident table,
/// short dependence chains, data-dependent hit/miss branches.
fn parser_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x70_61_72);
    let table_entries = 2_048usize;
    // Dictionary: ~60% of slots filled with the key that hashes there.
    let table: Vec<u64> = (0..table_entries)
        .map(|i| if rng.gen_bool(0.6) { ((i as u64) << 16) | 1 } else { 0 })
        .collect();
    a.data_u64s("dict", &table);
    let words: Vec<u64> = (0..8_192).map(|_| rng.gen::<u64>() & 0x7ff).collect();
    a.data_u64s("words", &words);

    a.li(Reg::X29, 3); // sentence batches
    a.li(Reg::X26, 0); // found-word count
    a.la(Reg::X5, "dict");
    a.label("batch");
    a.la(Reg::X6, "words");
    a.li(Reg::X7, words.len() as i64);
    a.label("word");
    a.ld(Reg::X8, 0, Reg::X6);
    // Hash: multiplicative, masked to the table.
    a.slli(Reg::X9, Reg::X8, 5);
    a.add(Reg::X9, Reg::X9, Reg::X8);
    a.andi(Reg::X9, Reg::X9, (table_entries - 1) as i32);
    a.slli(Reg::X10, Reg::X9, 3);
    a.add(Reg::X10, Reg::X10, Reg::X5);
    a.ld(Reg::X11, 0, Reg::X10); // probe
    a.srli(Reg::X12, Reg::X11, 16);
    a.bne(Reg::X12, Reg::X9, "miss");
    a.addi(Reg::X26, Reg::X26, 1);
    a.label("miss");
    a.addi(Reg::X6, Reg::X6, 8);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "word");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "batch");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "parser-like",
        suite: Suite::SpecInt,
        program: a.assemble().expect("parser-like assembles"),
        inst_budget: 450_000,
    }
}

/// `gzip`-like: byte histogram plus rolling hash over pseudo-text.
///
/// Byte-granular data makes nearly every value low-width; the 64 KB text
/// streams through the L1 while the histogram stays resident.
fn gzip_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x67_7a_69_70);
    // Skewed byte distribution, like real text.
    let text: Vec<u8> = (0..12_000).map(|_| (rng.gen::<u8>() % 64) + 32).collect();
    a.data_bytes("text", &text);
    a.data_zeros("hist", 256 * 8);

    a.li(Reg::X29, 2); // passes (deflate re-scans its window)
    a.label("pass");
    a.la(Reg::X5, "text");
    a.li(Reg::X6, text.len() as i64);
    a.la(Reg::X7, "hist");
    a.li(Reg::X11, 0); // rolling hash
    a.label("loop");
    a.lbu(Reg::X8, 0, Reg::X5);
    a.slli(Reg::X9, Reg::X8, 3);
    a.add(Reg::X9, Reg::X9, Reg::X7);
    a.ld(Reg::X10, 0, Reg::X9);
    a.addi(Reg::X10, Reg::X10, 1);
    a.sd(Reg::X10, 0, Reg::X9);
    a.slli(Reg::X11, Reg::X11, 1);
    a.xor(Reg::X11, Reg::X11, Reg::X8);
    a.andi(Reg::X11, Reg::X11, 0x7fff);
    a.addi(Reg::X5, Reg::X5, 1);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X11); // checksum
    a.halt();

    Workload {
        name: "gzip-like",
        suite: Suite::SpecInt,
        program: a.assemble().expect("gzip-like assembles"),
        inst_budget: 400_000,
    }
}

/// `gcc`-like: interpret a pseudo-IR stream with a compare-branch opcode
/// switch — branchy integer code with a mid-size table working set.
fn gcc_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x67_63_63);
    // IR: (opcode in 0..4, operand) pairs, packed as u64s.
    let n = 8_000usize;
    let ir: Vec<u64> =
        (0..n).map(|_| ((rng.gen::<u64>() % 4) << 32) | (rng.gen::<u64>() % 1000)).collect();
    a.data_u64s("ir", &ir);
    a.data_zeros("symtab", 1024 * 8);

    a.li(Reg::X29, 2); // compiler passes over the IR
    a.label("pass");
    a.la(Reg::X5, "ir");
    a.li(Reg::X6, n as i64);
    a.la(Reg::X7, "symtab");
    a.li(Reg::X12, 0); // accumulator
    a.label("loop");
    a.ld(Reg::X8, 0, Reg::X5);
    a.srli(Reg::X9, Reg::X8, 32); // opcode
    a.slli(Reg::X10, Reg::X8, 32);
    a.srli(Reg::X10, Reg::X10, 32); // operand
    a.li(Reg::X11, 1);
    a.beq(Reg::X9, Reg::X0, "op_add");
    a.beq(Reg::X9, Reg::X11, "op_store");
    a.addi(Reg::X11, Reg::X11, 1);
    a.beq(Reg::X9, Reg::X11, "op_load");
    // default: shift-mix
    a.slli(Reg::X12, Reg::X12, 1);
    a.xor(Reg::X12, Reg::X12, Reg::X10);
    a.jmp("next");
    a.label("op_add");
    a.add(Reg::X12, Reg::X12, Reg::X10);
    a.jmp("next");
    a.label("op_store");
    a.andi(Reg::X13, Reg::X10, 1023);
    a.slli(Reg::X13, Reg::X13, 3);
    a.add(Reg::X13, Reg::X13, Reg::X7);
    a.sd(Reg::X12, 0, Reg::X13);
    a.jmp("next");
    a.label("op_load");
    a.andi(Reg::X13, Reg::X10, 1023);
    a.slli(Reg::X13, Reg::X13, 3);
    a.add(Reg::X13, Reg::X13, Reg::X7);
    a.ld(Reg::X14, 0, Reg::X13);
    a.add(Reg::X12, Reg::X12, Reg::X14);
    a.label("next");
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X12);
    a.halt();

    Workload {
        name: "gcc-like",
        suite: Suite::SpecInt,
        program: a.assemble().expect("gcc-like assembles"),
        inst_budget: 400_000,
    }
}

/// `mcf`-like: serialized pointer chasing across a 16 MB permutation —
/// the archetypal DRAM-latency-bound workload (the paper's 7 % minimum
/// speedup case).
fn mcf_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x6d_63_66);
    // A single-cycle random permutation (Sattolo's algorithm) so the
    // chase visits distinct cache lines for the full run.
    let n = 1 << 21; // 2M entries × 8 B = 16 MB
    let mut next: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    a.data_u64s("net", &next);

    a.la(Reg::X5, "net");
    a.li(Reg::X6, 10_000); // chase steps
    a.li(Reg::X7, 0); // current node
    a.li(Reg::X9, 0); // cost accumulator
    a.label("loop");
    a.slli(Reg::X8, Reg::X7, 3);
    a.add(Reg::X8, Reg::X8, Reg::X5);
    a.ld(Reg::X7, 0, Reg::X8); // dependent load: the chase
    a.add(Reg::X9, Reg::X9, Reg::X7); // arc cost update
    a.srli(Reg::X10, Reg::X7, 4);
    a.xor(Reg::X9, Reg::X9, Reg::X10);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.mv(Reg::X28, Reg::X9);
    a.halt();

    Workload {
        name: "mcf-like",
        suite: Suite::SpecInt,
        program: a.assemble().expect("mcf-like assembles"),
        inst_budget: 150_000,
    }
}

/// `crafty`-like: chess bitboard evaluation — full-width 64-bit masks,
/// parallel popcounts, high ILP, cache-resident (the paper's 65 % case).
fn crafty_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x63_72_61);
    let masks: Vec<u64> = (0..256).map(|_| rng.gen()).collect();
    a.data_u64s("masks", &masks);

    a.la(Reg::X5, "masks");
    a.li(Reg::X6, 10_000); // positions evaluated
    a.li(Reg::X7, 0x9e3779b97f4a7c15u64 as i64); // board state seed
    // Popcount constants.
    a.li(Reg::X20, 0x5555555555555555u64 as i64);
    a.li(Reg::X21, 0x3333333333333333u64 as i64);
    a.li(Reg::X22, 0x0f0f0f0f0f0f0f0fu64 as i64);
    a.li(Reg::X23, 0x0101010101010101u64 as i64);
    a.li(Reg::X26, 0); // score
    a.label("loop");
    // Evolve the "board" with an LCG-style mix.
    a.li(Reg::X8, 6364136223846793005);
    a.mul(Reg::X7, Reg::X7, Reg::X8);
    a.addi(Reg::X7, Reg::X7, 1442695041);
    // Pick an attack mask.
    a.srli(Reg::X9, Reg::X7, 40);
    a.andi(Reg::X9, Reg::X9, 255);
    a.slli(Reg::X9, Reg::X9, 3);
    a.add(Reg::X9, Reg::X9, Reg::X5);
    a.ld(Reg::X10, 0, Reg::X9);
    a.and(Reg::X11, Reg::X10, Reg::X7); // attacked squares
    // Parallel popcount of x11.
    a.srli(Reg::X12, Reg::X11, 1);
    a.and(Reg::X12, Reg::X12, Reg::X20);
    a.sub(Reg::X11, Reg::X11, Reg::X12);
    a.srli(Reg::X12, Reg::X11, 2);
    a.and(Reg::X12, Reg::X12, Reg::X21);
    a.and(Reg::X11, Reg::X11, Reg::X21);
    a.add(Reg::X11, Reg::X11, Reg::X12);
    a.srli(Reg::X12, Reg::X11, 4);
    a.add(Reg::X11, Reg::X11, Reg::X12);
    a.and(Reg::X11, Reg::X11, Reg::X22);
    a.mul(Reg::X11, Reg::X11, Reg::X23);
    a.srli(Reg::X11, Reg::X11, 56);
    // Mobility bonus with a data-dependent branch.
    a.slti(Reg::X13, Reg::X11, 28);
    a.beq(Reg::X13, Reg::X0, "strong");
    a.add(Reg::X26, Reg::X26, Reg::X11);
    a.jmp("cont");
    a.label("strong");
    a.slli(Reg::X14, Reg::X11, 1);
    a.add(Reg::X26, Reg::X26, Reg::X14);
    a.label("cont");
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "crafty-like",
        suite: Suite::SpecInt,
        program: a.assemble().expect("crafty-like assembles"),
        inst_budget: 500_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn gzip_histogram_sums_to_text_length() {
        let w = gzip_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let hist = w.program.label("hist").unwrap();
        let total: u64 = (0..256).map(|i| m.mem().read_u64(hist + i * 8)).sum();
        assert_eq!(total, 24_000); // 2 passes x 12_000 bytes
    }

    #[test]
    fn mcf_chase_follows_permutation() {
        let w = mcf_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        // Independently chase the first few steps.
        let net = w.program.label("net").unwrap();
        let mut node = 0u64;
        for _ in 0..10_000 {
            node = {
                // Read from the *final* memory image: the kernel never
                // writes the array, so this matches the initial data.
                m.mem().read_u64(net + node * 8)
            };
        }
        // The chase ends wherever x7 ended up.
        assert_eq!(m.reg(Reg::X7), node);
    }

    #[test]
    fn crafty_scores_are_plausible_popcounts() {
        let w = crafty_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let score = m.reg(Reg::X28);
        // Mean popcount of (random & random) ≈ 16, doubled when ≥ 28;
        // the score of 10k evaluations must land in a sane band.
        assert!(score > 100_000 && score < 400_000, "score = {score}");
    }

    #[test]
    fn gcc_interpreter_halts_with_checksum() {
        let w = gcc_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        assert_ne!(m.reg(Reg::X28), 0);
    }
}
