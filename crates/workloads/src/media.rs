//! MediaBench-class kernels: DCT-based video encoding, ADPCM speech
//! coding, JPEG quantisation, and GSM-style LPC filtering. Media data is 8/16-bit, so these kernels
//! are the richest in low-width values — and `mpeg2`-like is the paper's
//! peak-power workload (Figure 9).

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![mpeg2_like(), adpcm_like(), jpeg_like(), gsm_like()]
}

/// `gsm`-like: LPC short-term analysis filtering — an 8-tap
/// multiply-accumulate lattice over 16-bit speech samples with
/// saturation checks. Pure 16-bit compute, tiny working set.
fn gsm_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x67_73_6d);
    let n = 6_000usize;
    let mut s = 0i32;
    let samples: Vec<u64> = (0..n)
        .map(|_| {
            s = (s + rng.gen_range(-700..=700)).clamp(-20_000, 20_000);
            (s as i64) as u64
        })
        .collect();
    let coeffs: Vec<u64> = [13, -27, 42, -57, 57, -42, 27, -13]
        .iter()
        .map(|&c: &i64| c as u64)
        .collect();
    a.data_u64s("samples", &samples);
    a.data_u64s("coeffs", &coeffs);
    a.data_zeros("filtered", n * 8);

    a.la(Reg::X5, "samples");
    a.la(Reg::X6, "filtered");
    a.li(Reg::X7, (n - 8) as i64);
    a.la(Reg::X8, "coeffs");
    // Load the 8 filter taps once.
    for (i, reg) in [Reg::X16, Reg::X17, Reg::X18, Reg::X19, Reg::X20, Reg::X21, Reg::X22, Reg::X23]
        .into_iter()
        .enumerate()
    {
        a.ld(reg, (i * 8) as i32, Reg::X8);
    }
    a.li(Reg::X24, 32767); // saturation bound
    a.li(Reg::X29, 2); // analysis passes (short-term then long-term)
    a.label("pass");
    a.la(Reg::X5, "samples");
    a.la(Reg::X6, "filtered");
    a.li(Reg::X7, (n - 8) as i64);
    a.label("loop");
    // 8-tap MAC, fully unrolled.
    a.ld(Reg::X9, 0, Reg::X5);
    a.mul(Reg::X10, Reg::X9, Reg::X16);
    a.ld(Reg::X9, 8, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X17);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 16, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X18);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 24, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X19);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 32, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X20);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 40, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X21);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 48, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X22);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    a.ld(Reg::X9, 56, Reg::X5);
    a.mul(Reg::X11, Reg::X9, Reg::X23);
    a.add(Reg::X10, Reg::X10, Reg::X11);
    // Rescale and saturate to 16 bits.
    a.srai(Reg::X10, Reg::X10, 7);
    a.blt(Reg::X10, Reg::X24, "no_sat_hi");
    a.mv(Reg::X10, Reg::X24);
    a.label("no_sat_hi");
    a.sub(Reg::X12, Reg::X0, Reg::X24);
    a.bge(Reg::X10, Reg::X12, "no_sat_lo");
    a.mv(Reg::X10, Reg::X12);
    a.label("no_sat_lo");
    a.sd(Reg::X10, 0, Reg::X6);
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X6, Reg::X6, 8);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X10);
    a.halt();

    Workload {
        name: "gsm-like",
        suite: Suite::Media,
        program: a.assemble().expect("gsm-like assembles"),
        inst_budget: 600_000,
    }
}

/// `mpeg2`-encode-like: 1-D 8-point integer DCT butterflies applied to
/// every row of 8×8 pixel blocks — compute-bound, high-ILP, 16-bit data.
fn mpeg2_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x6d_70_67);
    // A cache-resident frame slice processed repeatedly (motion search
    // revisits reference blocks many times in a real encoder).
    let blocks = 80usize;
    let pixels: Vec<u8> = (0..blocks * 64).map(|_| rng.gen()).collect();
    a.data_bytes("pixels", &pixels);
    a.data_zeros("coeffs", blocks * 64 * 2);

    a.li(Reg::X29, 10); // encoding passes
    a.label("pass");
    a.la(Reg::X5, "pixels");
    a.la(Reg::X6, "coeffs");
    a.li(Reg::X7, (blocks * 8) as i64); // rows of 8 pixels
    a.label("row");
    // Load 8 pixels.
    a.lbu(Reg::X10, 0, Reg::X5);
    a.lbu(Reg::X11, 1, Reg::X5);
    a.lbu(Reg::X12, 2, Reg::X5);
    a.lbu(Reg::X13, 3, Reg::X5);
    a.lbu(Reg::X14, 4, Reg::X5);
    a.lbu(Reg::X15, 5, Reg::X5);
    a.lbu(Reg::X16, 6, Reg::X5);
    a.lbu(Reg::X17, 7, Reg::X5);
    // Stage 1 butterflies: s[i] = x[i] + x[7-i], d[i] = x[i] - x[7-i].
    a.add(Reg::X18, Reg::X10, Reg::X17);
    a.sub(Reg::X19, Reg::X10, Reg::X17);
    a.add(Reg::X20, Reg::X11, Reg::X16);
    a.sub(Reg::X21, Reg::X11, Reg::X16);
    a.add(Reg::X22, Reg::X12, Reg::X15);
    a.sub(Reg::X23, Reg::X12, Reg::X15);
    a.add(Reg::X24, Reg::X13, Reg::X14);
    a.sub(Reg::X25, Reg::X13, Reg::X14);
    // Stage 2.
    a.add(Reg::X10, Reg::X18, Reg::X24);
    a.sub(Reg::X11, Reg::X18, Reg::X24);
    a.add(Reg::X12, Reg::X20, Reg::X22);
    a.sub(Reg::X13, Reg::X20, Reg::X22);
    // Stage 3 with scaled rotations (integer approximation).
    a.add(Reg::X14, Reg::X10, Reg::X12); // DC
    a.sub(Reg::X15, Reg::X10, Reg::X12);
    a.slli(Reg::X16, Reg::X11, 1);
    a.add(Reg::X16, Reg::X16, Reg::X13);
    a.slli(Reg::X17, Reg::X19, 1);
    a.add(Reg::X17, Reg::X17, Reg::X21);
    a.add(Reg::X17, Reg::X17, Reg::X23);
    a.add(Reg::X17, Reg::X17, Reg::X25);
    // Store 4 coefficients (16-bit).
    a.sh(Reg::X14, 0, Reg::X6);
    a.sh(Reg::X15, 2, Reg::X6);
    a.sh(Reg::X16, 4, Reg::X6);
    a.sh(Reg::X17, 6, Reg::X6);
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X6, Reg::X6, 16);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "row");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X14);
    a.halt();

    Workload {
        name: "mpeg2-like",
        suite: Suite::Media,
        program: a.assemble().expect("mpeg2-like assembles"),
        inst_budget: 300_000,
    }
}

/// `adpcm`-like: adaptive step-size speech coder — byte samples, a
/// data-dependent branch per sample, tiny working set.
fn adpcm_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x61_64_70);
    let n = 20_000usize;
    // Smooth-ish waveform: random walk clamped to i8.
    let mut s = 0i32;
    let samples: Vec<u8> = (0..n)
        .map(|_| {
            s = (s + rng.gen_range(-9..=9)).clamp(-120, 120);
            s as i8 as u8
        })
        .collect();
    a.data_bytes("samples", &samples);
    a.data_zeros("encoded", n);

    a.la(Reg::X5, "samples");
    a.la(Reg::X6, "encoded");
    a.li(Reg::X7, n as i64);
    a.li(Reg::X10, 0); // predictor
    a.li(Reg::X11, 4); // step
    a.label("loop");
    a.lb(Reg::X12, 0, Reg::X5);
    a.sub(Reg::X13, Reg::X12, Reg::X10); // diff
    a.blt(Reg::X13, Reg::X0, "neg");
    // diff >= 0: code = diff / step (clamped), grow step.
    a.div(Reg::X14, Reg::X13, Reg::X11);
    a.addi(Reg::X11, Reg::X11, 1);
    a.jmp("emit");
    a.label("neg");
    a.sub(Reg::X13, Reg::X0, Reg::X13);
    a.div(Reg::X14, Reg::X13, Reg::X11);
    a.sub(Reg::X14, Reg::X0, Reg::X14);
    a.srai(Reg::X11, Reg::X11, 1);
    a.ori(Reg::X11, Reg::X11, 2); // keep step ≥ 2
    a.label("emit");
    a.sb(Reg::X14, 0, Reg::X6);
    // Reconstruct predictor: pred += code * step.
    a.mul(Reg::X15, Reg::X14, Reg::X11);
    a.add(Reg::X10, Reg::X10, Reg::X15);
    a.addi(Reg::X5, Reg::X5, 1);
    a.addi(Reg::X6, Reg::X6, 1);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "loop");
    a.mv(Reg::X28, Reg::X10);
    a.halt();

    Workload {
        name: "adpcm-like",
        suite: Suite::Media,
        program: a.assemble().expect("adpcm-like assembles"),
        inst_budget: 400_000,
    }
}

/// `jpeg`-like: coefficient quantisation — multiply/shift on 16-bit data
/// against a 64-entry quantisation table.
fn jpeg_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x6a_70_67);
    // An L1/L2-resident coefficient batch re-quantised at several quality
    // levels, as an encoder's rate-control loop does.
    let n = 8_000usize;
    let coeffs: Vec<u64> = (0..n).map(|_| (rng.gen::<i16>() / 8) as i64 as u64).collect();
    let qtable: Vec<u64> = (0..64).map(|i| 8 + (i as u64 * 3) % 24).collect();
    a.data_u64s("coeffs", &coeffs);
    a.data_u64s("qtable", &qtable);
    a.data_zeros("quant", n * 8);

    a.li(Reg::X29, 3); // quality levels
    a.label("pass");
    a.la(Reg::X5, "coeffs");
    a.la(Reg::X6, "qtable");
    a.la(Reg::X7, "quant");
    a.li(Reg::X8, n as i64);
    a.li(Reg::X9, 0); // position within block (0..64)
    a.label("loop");
    a.ld(Reg::X10, 0, Reg::X5);
    a.slli(Reg::X11, Reg::X9, 3);
    a.add(Reg::X11, Reg::X11, Reg::X6);
    a.ld(Reg::X12, 0, Reg::X11); // quantiser
    a.div(Reg::X13, Reg::X10, Reg::X12);
    a.sd(Reg::X13, 0, Reg::X7);
    a.addi(Reg::X9, Reg::X9, 1);
    a.andi(Reg::X9, Reg::X9, 63);
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X7, Reg::X7, 8);
    a.addi(Reg::X8, Reg::X8, -1);
    a.bne(Reg::X8, Reg::X0, "loop");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X13);
    a.halt();

    Workload {
        name: "jpeg-like",
        suite: Suite::Media,
        program: a.assemble().expect("jpeg-like assembles"),
        inst_budget: 400_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn mpeg2_dc_coefficient_is_pixel_sum() {
        let w = mpeg2_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        // DC of the first row = sum of its 8 pixels (by construction of
        // the butterfly network).
        let pixels = w.program.label("pixels").unwrap();
        let coeffs = w.program.label("coeffs").unwrap();
        let sum: u16 = (0..8).map(|i| m.mem().read_u8(pixels + i) as u16).sum();
        assert_eq!(m.mem().read_u16(coeffs), sum);
    }

    #[test]
    fn adpcm_tracks_waveform() {
        let w = adpcm_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        // The predictor must stay in the vicinity of the waveform range.
        let pred = m.reg(Reg::X28) as i64;
        assert!(pred.abs() < 1024, "predictor diverged: {pred}");
    }

    #[test]
    fn gsm_filter_output_is_saturated_16_bit() {
        let w = gsm_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let out = w.program.label("filtered").unwrap();
        for i in 0..500u64 {
            let v = m.mem().read_u64(out + i * 8) as i64;
            assert!((-32767..=32767).contains(&v), "sample {i} = {v}");
        }
    }

    #[test]
    fn jpeg_quantisation_matches_reference() {
        let w = jpeg_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let coeffs = w.program.label("coeffs").unwrap();
        let qtable = w.program.label("qtable").unwrap();
        let quant = w.program.label("quant").unwrap();
        for i in 0..200u64 {
            let c = m.mem().read_u64(coeffs + i * 8) as i64;
            let q = m.mem().read_u64(qtable + (i % 64) * 8) as i64;
            let got = m.mem().read_u64(quant + i * 8) as i64;
            assert_eq!(got, c.wrapping_div(q), "coeff {i}");
        }
    }
}
