//! Wisconsin pointer-intensive-class kernels. `yacr2`-like is the paper's
//! low end of the power savings range (15 %, §5.2) and its worst-case
//! thermal workload under Thermal Herding (the D-cache hotspot of Figure
//! 10c): memory-intensive, with mixed-width data that defeats width
//! prediction more often than the other suites.

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![yacr2_like(), treeadd_like(), bisort_like(), perimeter_like()]
}

/// `perimeter`-like: quadtree boundary walk — an L2-resident pointer
/// chase interleaved with per-node boundary arithmetic. Its performance
/// is L2-latency-sensitive, so it gains the most from the 3D pipeline's
/// faster L2 (the analogue of the paper's 77 % best case).
fn perimeter_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x70_65_72);
    // A shuffled ring of 8K nodes (64 KB — misses the L1, lives in the
    // L2): child pointers jump around the heap like a freshly built
    // quadtree.
    let n = 1 << 13;
    let mut next: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i);
        next.swap(i, j);
    }
    a.data_u64s("tree", &next);

    a.la(Reg::X5, "tree");
    a.li(Reg::X6, 28_000); // boundary cells visited
    a.li(Reg::X7, 0); // current cell
    a.li(Reg::X9, 0); // perimeter accumulator
    a.label("walk");
    a.slli(Reg::X8, Reg::X7, 3);
    a.add(Reg::X8, Reg::X8, Reg::X5);
    a.ld(Reg::X7, 0, Reg::X8); // dependent chase (L2 hit)
    // Boundary contribution: a dependent chain per cell whose result
    // feeds the next step's index computation (boundary state carries
    // from cell to cell), serialising load latency with the arithmetic.
    a.andi(Reg::X10, Reg::X7, 63);
    a.slli(Reg::X11, Reg::X10, 2);
    a.add(Reg::X11, Reg::X11, Reg::X10);
    a.srli(Reg::X12, Reg::X11, 1);
    a.xor(Reg::X12, Reg::X12, Reg::X10);
    a.add(Reg::X9, Reg::X9, Reg::X12);
    a.xor(Reg::X14, Reg::X12, Reg::X12); // always 0, but data-dependent
    a.add(Reg::X7, Reg::X7, Reg::X14);
    a.andi(Reg::X13, Reg::X7, 3);
    a.beq(Reg::X13, Reg::X0, "corner");
    a.addi(Reg::X9, Reg::X9, 1);
    a.label("corner");
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "walk");
    a.mv(Reg::X28, Reg::X9);
    a.halt();

    Workload {
        name: "perimeter-like",
        suite: Suite::Pointer,
        program: a.assemble().expect("perimeter-like assembles"),
        inst_budget: 500_000,
    }
}

/// `yacr2`-like: channel-routing constraint scans — streaming passes over
/// multi-megabyte track arrays holding full-width packed records, with a
/// data-dependent update per element.
fn yacr2_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x79_61_63);
    let n = 512 * 1024usize; // 4 MB of packed constraint records
    // Mixed widths on purpose: alternating cache lines hold small values
    // and full 64-bit packed records (the kernel reads one record per
    // line), so width prediction sees an unstable stream.
    let tracks: Vec<u64> =
        (0..n).map(|i| if (i / 8) % 2 == 0 { rng.gen::<u64>() % 256 } else { rng.gen() }).collect();
    a.data_u64s("tracks", &tracks);

    a.la(Reg::X5, "tracks");
    a.li(Reg::X6, 40_000); // records scanned (within one pass)
    a.li(Reg::X9, 0); // conflict count
    a.label("loop");
    a.ld(Reg::X7, 0, Reg::X5);
    a.srli(Reg::X8, Reg::X7, 56); // top byte: track id
    a.andi(Reg::X10, Reg::X7, 255); // bottom byte: pin
    a.bltu(Reg::X8, Reg::X10, "conflict");
    a.addi(Reg::X9, Reg::X9, 1);
    a.jmp("next");
    a.label("conflict");
    a.xor(Reg::X9, Reg::X9, Reg::X7);
    a.label("next");
    a.addi(Reg::X5, Reg::X5, 64); // one record per cache line
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.mv(Reg::X28, Reg::X9);
    a.halt();

    Workload {
        name: "yacr2-like",
        suite: Suite::Pointer,
        program: a.assemble().expect("yacr2-like assembles"),
        inst_budget: 500_000,
    }
}

/// `treeadd`-like: sum a pointer-linked binary tree with an explicit
/// stack — dependent loads over a shuffled 384 KB heap of nodes, traversed three times.
fn treeadd_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x74_72_65);
    // Nodes: [left_ptr, right_ptr, value] × 2^15, laid out in *shuffled*
    // order so child pointers jump around the heap.
    let n = 1 << 14;
    let mut order: Vec<u64> = (0..n as u64).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut slot_of = vec![0u64; n];
    for (slot, &node) in order.iter().enumerate() {
        slot_of[node as usize] = slot as u64;
    }
    let base = th_isa::Assembler::DEFAULT_DATA_BASE;
    let addr_of = |node: u64| base + slot_of[node as usize] * 24;
    let mut heap = vec![0u64; n * 3];
    for node in 0..n as u64 {
        let slot = slot_of[node as usize] as usize;
        let (l, r) = (2 * node + 1, 2 * node + 2);
        heap[slot * 3] = if l < n as u64 { addr_of(l) } else { 0 };
        heap[slot * 3 + 1] = if r < n as u64 { addr_of(r) } else { 0 };
        heap[slot * 3 + 2] = node % 97;
    }
    a.data_u64s("heap", &heap);
    a.data_zeros("stack", 64 * 1024);

    a.la(Reg::X5, "heap"); // == DEFAULT_DATA_BASE
    a.li(Reg::X9, 0); // sum
    a.li(Reg::X29, 3); // traversals
    let root = addr_of(0);
    a.label("traverse");
    a.la(Reg::X2, "stack");
    a.la(Reg::X10, "stack"); // stack base for emptiness test
    // Push root address.
    a.li(Reg::X7, root as i64);
    a.sd(Reg::X7, 0, Reg::X2);
    a.addi(Reg::X2, Reg::X2, 8);
    a.label("loop");
    a.beq(Reg::X2, Reg::X10, "done");
    a.addi(Reg::X2, Reg::X2, -8);
    a.ld(Reg::X7, 0, Reg::X2); // pop node address
    a.ld(Reg::X11, 0, Reg::X7); // left
    a.ld(Reg::X12, 8, Reg::X7); // right
    a.ld(Reg::X13, 16, Reg::X7); // value
    a.add(Reg::X9, Reg::X9, Reg::X13);
    a.beq(Reg::X11, Reg::X0, "no_left");
    a.sd(Reg::X11, 0, Reg::X2);
    a.addi(Reg::X2, Reg::X2, 8);
    a.label("no_left");
    a.beq(Reg::X12, Reg::X0, "loop");
    a.sd(Reg::X12, 0, Reg::X2);
    a.addi(Reg::X2, Reg::X2, 8);
    a.jmp("loop");
    a.label("done");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "traverse");
    a.mv(Reg::X28, Reg::X9);
    a.halt();

    Workload {
        name: "treeadd-like",
        suite: Suite::Pointer,
        program: a.assemble().expect("treeadd-like assembles"),
        inst_budget: 850_000,
    }
}

/// `bisort`-like: in-place bitonic-style compare-exchange passes over a
/// linked sequence of keys — pointer arithmetic plus unpredictable
/// compare branches.
fn bisort_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x62_69_73);
    let n = 8_192usize;
    let keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() >> 16).collect();
    a.data_u64s("keys", &keys);

    a.li(Reg::X20, 6); // passes
    a.label("pass");
    a.la(Reg::X5, "keys");
    a.li(Reg::X6, (n - 1) as i64);
    a.label("loop");
    a.ld(Reg::X7, 0, Reg::X5);
    a.ld(Reg::X8, 8, Reg::X5);
    a.bgeu(Reg::X8, Reg::X7, "inorder");
    a.sd(Reg::X8, 0, Reg::X5);
    a.sd(Reg::X7, 8, Reg::X5);
    a.label("inorder");
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X6, Reg::X6, -1);
    a.bne(Reg::X6, Reg::X0, "loop");
    a.addi(Reg::X20, Reg::X20, -1);
    a.bne(Reg::X20, Reg::X0, "pass");
    // Checksum: first and last keys after partial bubble passes.
    a.la(Reg::X5, "keys");
    a.ld(Reg::X28, 0, Reg::X5);
    a.halt();

    Workload {
        name: "bisort-like",
        suite: Suite::Pointer,
        program: a.assemble().expect("bisort-like assembles"),
        inst_budget: 600_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn treeadd_sum_matches_closed_form() {
        let w = treeadd_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let expected: u64 = 3 * (0..(1u64 << 14)).map(|v| v % 97).sum::<u64>();
        assert_eq!(m.reg(Reg::X28), expected);
    }

    #[test]
    fn bisort_passes_push_minimum_forward() {
        let w = bisort_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let keys = w.program.label("keys").unwrap();
        // After 6 bubble passes the first element is the minimum of a
        // prefix; it must be ≤ its successor.
        let k0 = m.mem().read_u64(keys);
        let k1 = m.mem().read_u64(keys + 8);
        assert!(k0 <= k1, "{k0} > {k1}");
    }

    #[test]
    fn yacr2_scans_expected_records() {
        let w = yacr2_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        // x5 advanced 40_000 records × 64 bytes.
        let tracks = w.program.label("tracks").unwrap();
        assert_eq!(m.reg(Reg::X5), tracks + 40_000 * 64);
    }
}
