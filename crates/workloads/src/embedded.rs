//! MiBench-class embedded kernels: SUSAN image smoothing, Patricia-trie
//! routing lookups, and Dijkstra shortest paths. `susan`-like is the
//! paper's best power-savings case (30 %, §5.2); `patricia`-like its best
//! speedup case (77 %, §5.1.2).

use crate::{Suite, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use th_isa::{Assembler, Reg};

pub(crate) fn workloads() -> Vec<Workload> {
    vec![susan_like(), patricia_like(), dijkstra_like()]
}

/// `susan`-smoothing-like: 3×1 box filter over an 8-bit image —
/// computation-intensive byte processing with an L1-resident window.
fn susan_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x73_75_73);
    let w = 128usize;
    let h = 96usize;
    let image: Vec<u8> = (0..w * h).map(|_| rng.gen()).collect();
    a.data_bytes("image", &image);
    a.data_zeros("smoothed", w * h);

    a.li(Reg::X20, 4); // passes (repeated smoothing)
    a.label("pass");
    a.la(Reg::X5, "image");
    a.la(Reg::X6, "smoothed");
    a.li(Reg::X7, (w * h - 2) as i64);
    a.label("loop");
    a.lbu(Reg::X10, 0, Reg::X5);
    a.lbu(Reg::X11, 1, Reg::X5);
    a.lbu(Reg::X12, 2, Reg::X5);
    // weighted average: (a + 2b + c) / 4
    a.slli(Reg::X13, Reg::X11, 1);
    a.add(Reg::X13, Reg::X13, Reg::X10);
    a.add(Reg::X13, Reg::X13, Reg::X12);
    a.srli(Reg::X13, Reg::X13, 2);
    a.sb(Reg::X13, 1, Reg::X6);
    a.addi(Reg::X5, Reg::X5, 1);
    a.addi(Reg::X6, Reg::X6, 1);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "loop");
    a.addi(Reg::X20, Reg::X20, -1);
    a.bne(Reg::X20, Reg::X0, "pass");
    a.mv(Reg::X28, Reg::X13);
    a.halt();

    Workload {
        name: "susan-like",
        suite: Suite::Embedded,
        program: a.assemble().expect("susan-like assembles"),
        inst_budget: 750_000,
    }
}

/// `patricia`-like: longest-prefix routing lookups in a bit trie. The
/// trie is cache-resident; each lookup is a short chain of dependent
/// loads and bit tests — branchy, high-frequency control flow.
fn patricia_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x70_61_74);
    // Trie nodes: [left, right] child indices (0 = leaf/end), 1023 nodes.
    let nodes = 1023usize;
    let mut trie = vec![0u64; nodes * 2];
    // A complete binary trie of depth 9 over the first 511 nodes, the
    // rest random back-links to mid-levels to vary lookup depth.
    for i in 0..511 {
        trie[i * 2] = (2 * i + 1) as u64;
        trie[i * 2 + 1] = (2 * i + 2) as u64;
    }
    for i in 511..nodes {
        trie[i * 2] = 0;
        trie[i * 2 + 1] = if rng.gen_bool(0.3) { rng.gen_range(1..256) } else { 0 };
    }
    a.data_u64s("trie", &trie);
    let queries: Vec<u64> = (0..4_000).map(|_| rng.gen()).collect();
    a.data_u64s("queries", &queries);

    a.la(Reg::X5, "trie");
    a.li(Reg::X26, 0); // matched-depth accumulator
    a.li(Reg::X29, 2); // rounds (routers re-resolve flows)
    a.label("round");
    a.la(Reg::X6, "queries");
    a.li(Reg::X7, queries.len() as i64);
    a.label("query");
    a.ld(Reg::X8, 0, Reg::X6); // key
    a.li(Reg::X9, 0); // node
    a.li(Reg::X10, 0); // depth
    a.label("walk");
    a.andi(Reg::X11, Reg::X8, 1); // branch bit
    a.slli(Reg::X12, Reg::X9, 4); // node * 16 bytes
    a.slli(Reg::X13, Reg::X11, 3);
    a.add(Reg::X12, Reg::X12, Reg::X13);
    a.add(Reg::X12, Reg::X12, Reg::X5);
    a.ld(Reg::X9, 0, Reg::X12); // next node
    a.srli(Reg::X8, Reg::X8, 1);
    a.addi(Reg::X10, Reg::X10, 1);
    a.bne(Reg::X9, Reg::X0, "walk");
    a.add(Reg::X26, Reg::X26, Reg::X10);
    a.addi(Reg::X6, Reg::X6, 8);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "query");
    a.addi(Reg::X29, Reg::X29, -1);
    a.bne(Reg::X29, Reg::X0, "round");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "patricia-like",
        suite: Suite::Embedded,
        program: a.assemble().expect("patricia-like assembles"),
        inst_budget: 1_100_000,
    }
}

/// `dijkstra`-like: repeated relaxation sweeps over a dense adjacency
/// matrix — regular loads and compare-branches on small integers.
fn dijkstra_like() -> Workload {
    let mut a = Assembler::new(0x1000);
    let mut rng = StdRng::seed_from_u64(0x64_69_6a);
    let n = 96usize;
    let adj: Vec<u64> =
        (0..n * n).map(|_| if rng.gen_bool(0.25) { rng.gen_range(1..100) } else { 10_000 }).collect();
    let mut dist = vec![10_000u64; n];
    dist[0] = 0;
    a.data_u64s("adj", &adj);
    a.data_u64s("dist", &dist);

    a.li(Reg::X20, 8); // relaxation rounds
    a.label("round");
    a.la(Reg::X5, "adj");
    a.la(Reg::X6, "dist");
    a.li(Reg::X7, 0); // u
    a.label("outer");
    a.slli(Reg::X8, Reg::X7, 3);
    a.add(Reg::X8, Reg::X8, Reg::X6);
    a.ld(Reg::X9, 0, Reg::X8); // dist[u]
    a.li(Reg::X10, 0); // v
    a.label("inner");
    a.ld(Reg::X11, 0, Reg::X5); // adj[u][v]
    a.add(Reg::X12, Reg::X9, Reg::X11); // candidate
    a.slli(Reg::X13, Reg::X10, 3);
    a.add(Reg::X13, Reg::X13, Reg::X6);
    a.ld(Reg::X14, 0, Reg::X13); // dist[v]
    a.bgeu(Reg::X12, Reg::X14, "no_relax");
    a.sd(Reg::X12, 0, Reg::X13);
    a.label("no_relax");
    a.addi(Reg::X5, Reg::X5, 8);
    a.addi(Reg::X10, Reg::X10, 1);
    a.slti(Reg::X15, Reg::X10, n as i32);
    a.bne(Reg::X15, Reg::X0, "inner");
    a.addi(Reg::X7, Reg::X7, 1);
    a.slti(Reg::X15, Reg::X7, n as i32);
    a.bne(Reg::X15, Reg::X0, "outer");
    a.addi(Reg::X20, Reg::X20, -1);
    a.bne(Reg::X20, Reg::X0, "round");
    // Checksum: sum of distances.
    a.la(Reg::X6, "dist");
    a.li(Reg::X7, n as i64);
    a.li(Reg::X26, 0);
    a.label("sum");
    a.ld(Reg::X9, 0, Reg::X6);
    a.add(Reg::X26, Reg::X26, Reg::X9);
    a.addi(Reg::X6, Reg::X6, 8);
    a.addi(Reg::X7, Reg::X7, -1);
    a.bne(Reg::X7, Reg::X0, "sum");
    a.mv(Reg::X28, Reg::X26);
    a.halt();

    Workload {
        name: "dijkstra-like",
        suite: Suite::Embedded,
        program: a.assemble().expect("dijkstra-like assembles"),
        inst_budget: 900_000,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::Machine;

    #[test]
    fn susan_smooths_toward_local_average() {
        let w = susan_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let img = w.program.label("image").unwrap();
        let out = w.program.label("smoothed").unwrap();
        // Check one pixel against the filter formula.
        let a0 = m.mem().read_u8(img) as u32;
        let b = m.mem().read_u8(img + 1) as u32;
        let c = m.mem().read_u8(img + 2) as u32;
        assert_eq!(m.mem().read_u8(out + 1) as u32, (a0 + 2 * b + c) / 4);
    }

    #[test]
    fn patricia_walks_full_depth_paths() {
        let w = patricia_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let total_depth = m.reg(Reg::X28);
        // 2 rounds x 4000 lookups of depth ≥ 9 each — some longer.
        assert!(total_depth >= 2 * 4_000 * 9, "total depth {total_depth}");
    }

    #[test]
    fn dijkstra_distances_converge() {
        let w = dijkstra_like();
        let mut m = Machine::new(&w.program);
        m.run(w.inst_budget).unwrap();
        assert!(m.is_halted());
        let dist = w.program.label("dist").unwrap();
        assert_eq!(m.mem().read_u64(dist), 0, "source distance");
        // After 8 rounds of Bellman-Ford-style sweeps on a dense random
        // graph, everything reachable should be far below the sentinel.
        let d1 = m.mem().read_u64(dist + 8);
        assert!(d1 < 1_000, "dist[1] = {d1}");
    }
}
