//! Characterisation tests: each suite must sit at the point in the
//! behavioural space (memory intensity, operand widths, branchiness) that
//! its role in the paper's results requires.

use th_sim::{SimConfig, Simulator};
use th_workloads::workload_by_name;

fn run(name: &str, cfg: SimConfig, budget: u64) -> th_sim::SimResult {
    let w = workload_by_name(name).unwrap_or_else(|| panic!("workload {name} missing"));
    Simulator::new(cfg).run(&w.program, budget.min(w.inst_budget)).expect("simulation runs")
}

#[test]
fn mcf_like_is_dram_bound() {
    let r = run("mcf-like", SimConfig::baseline(), 100_000);
    assert!(
        r.stats.dram_per_kilo_inst() > 50.0,
        "mcf-like dram/kinst = {:.1}",
        r.stats.dram_per_kilo_inst()
    );
    assert!(r.ipc() < 0.3, "mcf-like should crawl, ipc = {:.2}", r.ipc());
}

#[test]
fn crafty_like_is_compute_bound_and_full_width() {
    let r = run("crafty-like", SimConfig::baseline(), 150_000);
    assert!(
        r.stats.dram_per_kilo_inst() < 2.0,
        "crafty-like dram/kinst = {:.1}",
        r.stats.dram_per_kilo_inst()
    );
    assert!(r.ipc() > 1.0, "crafty-like ipc = {:.2}", r.ipc());
    // Bitboards are 64-bit: full-width ops dominate.
    assert!(
        r.stats.int_ops_full > r.stats.int_ops_low,
        "crafty-like low {} vs full {}",
        r.stats.int_ops_low,
        r.stats.int_ops_full
    );
}

#[test]
fn media_kernels_are_low_width_rich() {
    for name in ["mpeg2-like", "susan-like"] {
        let r = run(name, SimConfig::thermal_herding(), 150_000);
        assert!(
            r.stats.low_width_fraction() > 0.55,
            "{name} low-width fraction = {:.2}",
            r.stats.low_width_fraction()
        );
    }
}

#[test]
fn memory_intensity_ordering_matches_roles() {
    // mcf (worst speedup) must be the most *latency-bound* workload: its
    // misses are a serialized pointer chase, unlike swim's streaming
    // misses which overlap. patricia and mpeg2 (best speedups) barely
    // touch DRAM at all.
    let mcf = run("mcf-like", SimConfig::baseline(), 80_000);
    let swim = run("swim-like", SimConfig::baseline(), 150_000);
    let patricia = run("patricia-like", SimConfig::baseline(), 150_000);
    let mpeg2 = run("mpeg2-like", SimConfig::baseline(), 150_000);
    assert!(mcf.ipc() < swim.ipc() / 2.0, "mcf ipc {:.2} vs swim {:.2}", mcf.ipc(), swim.ipc());
    assert!(
        swim.stats.dram_per_kilo_inst() > patricia.stats.dram_per_kilo_inst(),
        "swim {:.1} !> patricia {:.1}",
        swim.stats.dram_per_kilo_inst(),
        patricia.stats.dram_per_kilo_inst()
    );
    assert!(
        mcf.stats.dram_per_kilo_inst() > 10.0 * mpeg2.stats.dram_per_kilo_inst().max(0.1),
        "mcf {:.1} vs mpeg2 {:.1}",
        mcf.stats.dram_per_kilo_inst(),
        mpeg2.stats.dram_per_kilo_inst()
    );
}

#[test]
fn width_prediction_accuracy_is_high_on_stable_kernels() {
    // §3.8: "97% of all instructions fetched have their widths correctly
    // predicted" — media/embedded kernels should be near that.
    let r = run("susan-like", SimConfig::thermal_herding(), 200_000);
    assert!(
        r.stats.width_pred.accuracy() > 0.93,
        "susan width accuracy = {:.3}",
        r.stats.width_pred.accuracy()
    );
}

#[test]
fn yacr2_defeats_width_prediction_more_than_media() {
    let yacr2 = run("yacr2-like", SimConfig::thermal_herding(), 150_000);
    let susan = run("susan-like", SimConfig::thermal_herding(), 150_000);
    assert!(
        yacr2.stats.width_pred.unsafe_rate() > susan.stats.width_pred.unsafe_rate(),
        "yacr2 unsafe {:.4} !> susan unsafe {:.4}",
        yacr2.stats.width_pred.unsafe_rate(),
        susan.stats.width_pred.unsafe_rate()
    );
}

#[test]
fn pointer_kernels_exercise_pam() {
    let r = run("treeadd-like", SimConfig::thermal_herding(), 150_000);
    assert!(r.stats.pam.total() > 1_000, "pam broadcasts {}", r.stats.pam.total());
}

#[test]
fn fp_kernels_use_the_fp_cluster() {
    for name in ["swim-like", "art-like", "equake-like"] {
        let r = run(name, SimConfig::baseline(), 100_000);
        let frac = r.stats.fp_ops as f64 / r.stats.committed as f64;
        assert!(frac > 0.15, "{name} fp fraction = {frac:.2}");
    }
}
