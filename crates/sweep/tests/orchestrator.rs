//! The orchestrator's acceptance properties, end to end on real run
//! directories:
//!
//! * **Resumability** — a sweep interrupted mid-run (emulated by
//!   deleting checkpoints, exactly the state a kill leaves behind) or
//!   degraded by injected faults resumes from the manifest, recomputes
//!   only the unfinished shards, and merges to metrics bit-identical to
//!   an uninterrupted run — at one thread and at four.
//! * **Fault tolerance** — `TH_SWEEP_FAULT`-style plans forcing N
//!   failures still complete the sweep: retries appear in the JSONL
//!   telemetry, permanently failing shards end up degraded, and their
//!   siblings are unaffected.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;
use th_exec::Pool;
use th_sweep::json::Json;
use th_sweep::{
    presets, run_sweep, FaultPlan, ShardRecord, ShardSpec, ShardStatus, ShardTask,
    SweepOptions, SweepSpec,
};
use thermal_herding::Variant;

/// A fresh run directory under the target-adjacent temp dir, removed on
/// drop so failed tests don't pollute reruns.
struct RunDir(PathBuf);

impl RunDir {
    fn new(tag: &str) -> RunDir {
        let dir = std::env::temp_dir().join(format!(
            "th-sweep-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        RunDir(dir)
    }
}

impl Drop for RunDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn fast_opts() -> SweepOptions {
    SweepOptions { backoff: Duration::from_millis(1), ..SweepOptions::default() }
}

/// Metric lists must match bit for bit — the determinism contract.
fn assert_metrics_identical(a: &[ShardRecord], b: &[ShardRecord]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.status, y.status, "{}: status differs", x.id);
        assert_eq!(x.metrics.len(), y.metrics.len(), "{}: metric counts differ", x.id);
        for ((ka, va), (kb, vb)) in x.metrics.iter().zip(&y.metrics) {
            assert_eq!(ka, kb, "{}: metric names differ", x.id);
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{}: metric {ka} differs: {va} vs {vb}",
                x.id
            );
        }
    }
}

fn telemetry_events(dir: &std::path::Path) -> Vec<(String, Json)> {
    let text = fs::read_to_string(dir.join("telemetry.jsonl")).expect("telemetry exists");
    text.lines()
        .map(|line| {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("bad telemetry {line:?}: {e}"));
            (v.get("event").and_then(Json::as_str).expect("event field").to_string(), v)
        })
        .collect()
}

/// A small grid of real simulation shards: two workloads × two design
/// points at a smoke budget, plus a coarse thermal solve — enough to
/// exercise the chip and solver paths (including their nested fan-outs)
/// without paper-scale cost.
fn mixed_spec() -> SweepSpec {
    let mut shards = Vec::new();
    for workload in ["gzip-like", "mpeg2-like"] {
        for variant in [Variant::Base, Variant::ThreeD] {
            shards.push(ShardSpec {
                id: format!("chip/{workload}/{}", variant.label()),
                task: ShardTask::ChipRun {
                    workload: workload.into(),
                    variant,
                    budget: 15_000,
                },
            });
        }
    }
    shards.push(ShardSpec {
        id: "thermal/gzip-like/3D".into(),
        task: ShardTask::ThermalRun {
            workload: "gzip-like".into(),
            variant: Variant::ThreeD,
            budget: 15_000,
            rows: 8,
        },
    });
    SweepSpec { name: "mixed".into(), shards }
}

#[test]
fn killed_sweep_resumes_from_manifest_and_recomputes_only_unfinished_shards() {
    // The reference: one uninterrupted run.
    let reference_dir = RunDir::new("ref");
    let spec = presets::selftest();
    let pool = Pool::new(2);
    let reference =
        run_sweep(&spec, &reference_dir.0, &fast_opts(), &pool).expect("reference run");
    assert_eq!(reference.done(), spec.shards.len());

    // The "killed" run: complete once, then erase three checkpoints —
    // the on-disk state of a sweep killed before those shards finished
    // (the manifest and the other checkpoints survive).
    let killed_dir = RunDir::new("killed");
    run_sweep(&spec, &killed_dir.0, &fast_opts(), &pool).expect("first pass");
    let shards_dir = killed_dir.0.join("shards");
    for id in ["selftest-1", "selftest-4", "selftest-6"] {
        fs::remove_file(shards_dir.join(format!("{id}.json"))).expect("checkpoint exists");
    }
    // A truncated checkpoint (killed mid-write before the rename) must
    // also count as unfinished, not crash the resume.
    fs::write(shards_dir.join("selftest-0.json"), "{\"id\": \"selftest-0\"").unwrap();

    let resumed = run_sweep(&spec, &killed_dir.0, &fast_opts(), &pool).expect("resume");
    assert_eq!(resumed.resumed, spec.shards.len() - 4, "finished shards must not rerun");
    assert_eq!(resumed.executed, 4, "only the missing/corrupt shards recompute");
    assert_eq!(resumed.done(), spec.shards.len());
    assert_metrics_identical(&resumed.records, &reference.records);

    // The resume's telemetry says so too.
    let events = telemetry_events(&killed_dir.0);
    let starts: Vec<&str> = events
        .iter()
        .filter(|(e, _)| e == "shard_start")
        .map(|(_, v)| v.get("shard").and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(starts.len(), spec.shards.len() + 4, "first pass + the four recomputes");
}

#[test]
fn fault_injected_resume_is_bit_identical_at_one_and_four_threads() {
    // Reference: the mixed grid, uninterrupted, single-threaded.
    let reference_dir = RunDir::new("mixed-ref");
    let spec = mixed_spec();
    let reference = run_sweep(&spec, &reference_dir.0, &fast_opts(), &Pool::new(1))
        .expect("reference run");
    assert_eq!(reference.done(), spec.shards.len());

    for threads in [1, 4] {
        let dir = RunDir::new(&format!("mixed-{threads}"));
        let pool = Pool::new(threads);

        // First pass: one shard recovers after a failure, one is
        // permanently down and ends degraded.
        let mut opts = fast_opts();
        opts.fault =
            FaultPlan::parse("chip/gzip-like/Base:1,thermal/*:inf").expect("valid plan");
        let first = run_sweep(&spec, &dir.0, &opts, &pool).expect("faulted pass");
        assert_eq!(first.degraded(), 1, "{threads} threads: thermal shard must degrade");
        assert_eq!(
            first.record("chip/gzip-like/Base").unwrap().attempts,
            2,
            "{threads} threads: recovered shard consumed a retry"
        );

        // Second pass, faults lifted: only the degraded shard reruns,
        // and the merged metrics equal the uninterrupted reference's,
        // bit for bit.
        let second = run_sweep(&spec, &dir.0, &fast_opts(), &pool).expect("resume");
        assert_eq!(second.resumed, spec.shards.len() - 1);
        assert_eq!(second.executed, 1);
        assert_metrics_identical(&second.records, &reference.records);
    }
}

#[test]
fn forced_failures_retry_then_degrade_without_aborting_siblings() {
    let dir = RunDir::new("faults");
    let spec = presets::selftest();
    let mut opts = fast_opts();
    // selftest-2 fails twice then recovers; selftest-5 panics forever.
    opts.fault = FaultPlan::parse("selftest-2:2,selftest-5:inf!").expect("valid plan");
    let outcome = run_sweep(&spec, &dir.0, &opts, &Pool::new(3)).expect("sweep completes");

    // The sweep completed around the permanent failure.
    assert_eq!(outcome.degraded(), 1);
    assert_eq!(outcome.done(), spec.shards.len() - 1);
    let recovered = outcome.record("selftest-2").unwrap();
    assert_eq!(recovered.status, ShardStatus::Done);
    assert_eq!(recovered.attempts, 3);
    let dead = outcome.record("selftest-5").unwrap();
    assert_eq!(dead.status, ShardStatus::Degraded);
    assert_eq!(dead.attempts, 3);
    assert!(
        dead.error.as_deref().unwrap_or("").contains("panic"),
        "panic mode must surface in the error: {:?}",
        dead.error
    );

    // Retries are visible in the telemetry stream.
    let events = telemetry_events(&dir.0);
    let retries_of = |id: &str| {
        events
            .iter()
            .filter(|(e, v)| {
                e == "shard_retry" && v.get("shard").and_then(Json::as_str) == Some(id)
            })
            .count()
    };
    assert_eq!(retries_of("selftest-2"), 2);
    assert_eq!(retries_of("selftest-5"), 2, "attempt 3 degrades instead of retrying");
    assert_eq!(
        events
            .iter()
            .filter(|(e, v)| {
                e == "shard_degraded"
                    && v.get("shard").and_then(Json::as_str) == Some("selftest-5")
            })
            .count(),
        1
    );
}

#[test]
fn timed_out_attempts_fail_and_degrade() {
    let dir = RunDir::new("timeout");
    // A shard that spins far longer than the timeout.
    let spec = SweepSpec {
        name: "slow".into(),
        shards: vec![
            ShardSpec {
                id: "slow-0".into(),
                task: ShardTask::SelfTest { seed: 1, spin: u64::MAX / 4 },
            },
            ShardSpec { id: "fast-0".into(), task: ShardTask::SelfTest { seed: 2, spin: 10 } },
        ],
    };
    let opts = SweepOptions {
        max_attempts: 2,
        backoff: Duration::from_millis(1),
        timeout: Some(Duration::from_millis(20)),
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&spec, &dir.0, &opts, &Pool::new(2)).expect("sweep completes");
    let slow = outcome.record("slow-0").unwrap();
    assert_eq!(slow.status, ShardStatus::Degraded);
    assert!(slow.error.as_deref().unwrap_or("").contains("timed out"), "{:?}", slow.error);
    assert_eq!(outcome.record("fast-0").unwrap().status, ShardStatus::Done);
}

#[test]
fn mismatched_spec_refuses_to_reuse_a_run_directory() {
    let dir = RunDir::new("mismatch");
    let pool = Pool::new(1);
    run_sweep(&presets::selftest(), &dir.0, &fast_opts(), &pool).expect("first sweep");

    // Same shard ids, different task parameters: the fingerprint check
    // must reject the directory rather than serve stale checkpoints.
    let mut altered = presets::selftest();
    altered.shards[0].task = ShardTask::SelfTest { seed: 1234, spin: 50_000 };
    let err = run_sweep(&altered, &dir.0, &fast_opts(), &pool).unwrap_err();
    assert!(err.to_string().contains("different sweep"), "{err}");
}

#[test]
fn telemetry_lines_all_parse_and_bracket_the_run() {
    let dir = RunDir::new("telemetry");
    let spec = presets::selftest();
    run_sweep(&spec, &dir.0, &fast_opts(), &Pool::new(2)).expect("sweep completes");
    let events = telemetry_events(&dir.0);
    assert_eq!(events.first().map(|(e, _)| e.as_str()), Some("sweep_start"));
    assert_eq!(events.last().map(|(e, _)| e.as_str()), Some("sweep_done"));
    let dones = events.iter().filter(|(e, _)| e == "shard_done").count();
    assert_eq!(dones, spec.shards.len());
}
