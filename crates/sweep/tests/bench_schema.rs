//! Golden schema test for the committed `BENCH_pipeline.json`: the
//! report the `bench_report` binary regenerates and `ci.sh` greps its
//! perf guards out of. If a bench_report change drops a block or lets a
//! guarded number drift out of its sane range, this fails before the
//! shell guards ever see it.

use th_sweep::json::Json;

fn report() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("BENCH_pipeline.json must be committed at the repo root: {e}"));
    Json::parse(&text).expect("BENCH_pipeline.json parses")
}

fn num(j: &Json, key: &str) -> f64 {
    j.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing numeric field {key:?}"))
}

#[test]
fn experiments_block_lists_the_three_sweeps_with_positive_timings() {
    let r = report();
    assert!(num(&r, "budget_insts") >= 1000.0, "implausibly small budget");
    assert!(num(&r, "fig10_rows") >= 4.0);
    let experiments = r.get("experiments").and_then(Json::as_arr).expect("experiments array");
    let names: Vec<&str> = experiments
        .iter()
        .map(|e| e.get("name").and_then(Json::as_str).expect("experiment name"))
        .collect();
    assert_eq!(names, ["fig8", "fig9", "fig10"]);
    for e in experiments {
        let seq_s = num(e, "seq_s");
        let par_s = num(e, "par_s");
        let speedup = num(e, "speedup");
        assert!(seq_s > 0.0 && par_s > 0.0, "timings must be positive");
        assert!(num(e, "threads") >= 1.0);
        assert!(
            (speedup - seq_s / par_s).abs() < 0.01,
            "speedup must be seq/par, got {speedup}"
        );
    }
}

#[test]
fn engine_block_compares_scan_and_event_on_fig8() {
    let r = report();
    let engine = r.get("engine").expect("engine block");
    assert_eq!(engine.get("experiment").and_then(Json::as_str), Some("fig8"));
    assert!(num(engine, "scan_s") > 0.0);
    assert!(num(engine, "event_s") > 0.0);
    // The event core exists because it is faster; a report showing it
    // at a 3x slowdown means the measurement (or the core) broke.
    assert!(num(engine, "speedup") > 0.33, "event engine implausibly slow");
}

#[test]
fn cosim_block_accounts_for_its_wall_clock() {
    let r = report();
    let cosim = r.get("cosim").expect("cosim block");
    let intervals = num(cosim, "intervals");
    let total_s = num(cosim, "total_s");
    assert!(intervals >= 1.0);
    assert!(total_s > 0.0);
    assert!((num(cosim, "intervals_per_s") - intervals / total_s).abs() < 0.1);
    let sim = num(cosim, "sim_wall_s");
    let solver = num(cosim, "solver_wall_s");
    assert!(sim >= 0.0 && solver >= 0.0);
    // The two tracked phases can't exceed the orchestrated total.
    assert!(sim + solver <= total_s * 1.05, "phase times exceed the total");
    let share = num(cosim, "solver_share");
    assert!((0.0..=1.0).contains(&share));
}

#[test]
fn herding_block_stays_within_its_guarded_ranges() {
    let r = report();
    let herding = r.get("herding").expect("herding block");
    assert!(herding.get("workload").and_then(Json::as_str).is_some());
    let ledger = num(herding, "ledger_dynamic_w");
    let modeled = num(herding, "modeled_dynamic_w");
    assert!(ledger > 0.0 && modeled > 0.0);
    let delta = num(herding, "delta_frac");
    assert!(
        (delta - (ledger - modeled).abs() / modeled).abs() < 0.01,
        "delta_frac must be the relative ledger/model gap"
    );
    assert!(delta < 0.08, "ledger and model disagree by {:.1}%", 100.0 * delta);
    let units = herding.get("units").and_then(Json::as_arr).expect("units array");
    assert!(!units.is_empty(), "at least one width-partitioned unit");
    for u in units {
        let label = u.get("unit").and_then(Json::as_str).expect("unit label");
        for key in ["measured_top_die", "modeled_top_die"] {
            let frac = num(u, key);
            assert!((0.0..=1.0).contains(&frac), "{label} {key} = {frac} out of [0,1]");
        }
    }
    // The register file is the paper's flagship herded structure: the
    // ledger must observe a real top-die bias, not a uniform split.
    let rf = units
        .iter()
        .find(|u| u.get("unit").and_then(Json::as_str) == Some("RegFile"))
        .expect("register file row");
    assert!(num(rf, "measured_top_die") > 0.4, "RF top-die concentration lost");
}

#[test]
fn thermal_solve_block_reports_both_kernels() {
    let r = report();
    let solve = r.get("thermal_solve_64x64x9").expect("thermal solve block");
    assert!(num(solve, "scalar_s") > 0.0);
    assert!(num(solve, "red_black_s") > 0.0);
    assert!(num(solve, "speedup") > 0.33, "red-black kernel implausibly slow");
}
