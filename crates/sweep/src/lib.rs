//! # th-sweep: a sharded, resumable experiment-sweep orchestrator.
//!
//! Every experiment driver in this workspace used to hand-roll a
//! one-shot run loop: a crash or a solver non-convergence 90 % of the
//! way through a sweep threw everything away, and nothing recorded
//! per-shard progress. This crate makes sweeps first-class,
//! checkpointed artifacts (the way interval thermal toolchains like
//! CoMeT become usable at scale):
//!
//! * A declarative [`SweepSpec`] — a list of [`ShardSpec`]s, each one an
//!   independently runnable unit of work ([`ShardTask`]): a chip run, a
//!   chip-plus-thermal solve, a closed-loop co-simulation, or a cheap
//!   self-test shard. [`presets`] expands the named grids reproducing
//!   the paper experiments (`fig8`, `fig9`, `fig10`, `dtm`).
//! * [`run_sweep`] executes the shards over an existing
//!   [`th_exec::Pool`], streaming one JSONL telemetry line per event
//!   into the run directory and durably checkpointing each completed
//!   shard (write-to-temp, rename). A killed sweep **resumes** from the
//!   manifest: finished shards load from their checkpoints bit-for-bit
//!   and only unfinished ones recompute.
//! * Per-shard failures — panics caught at the shard boundary, solver
//!   non-convergence, a configurable per-attempt timeout — are retried
//!   with exponential backoff and then recorded as **degraded** instead
//!   of aborting sibling shards. The [`FaultPlan`] / `TH_SWEEP_FAULT`
//!   knob injects such failures on demand for testing.
//!
//! ## Run-directory layout
//!
//! ```text
//! <dir>/manifest.json    the sweep's identity: name, shard ids, fingerprint
//! <dir>/telemetry.jsonl  append-only event stream (start/retry/done/degraded)
//! <dir>/shards/<id>.json one durable checkpoint per completed shard
//! ```
//!
//! Shard **metrics** are deterministic simulation outputs; wall-clock
//! numbers live in separate telemetry fields, so a resumed sweep's
//! merged metrics are bit-identical to an uninterrupted run's at any
//! `TH_THREADS`.

#![deny(missing_docs)]

mod fault;
pub mod json;
pub mod presets;

pub use fault::{FaultMode, FaultPlan, FAULT_ENV};

use json::Json;
use std::fs;
use std::io::{self, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use th_cosim::{CoSimConfig, PolicyKind};
use th_stack3d::Unit;
use th_workloads::workload_by_name;
use thermal_herding::experiments::dtm;
use thermal_herding::{run_chip, thermal_analysis, Variant};

/// One independently runnable unit of sweep work.
#[derive(Clone, Debug, PartialEq)]
pub enum ShardTask {
    /// Simulate one workload at one design point and price the chip.
    ChipRun {
        /// Workload name (see [`th_workloads::workload_by_name`]).
        workload: String,
        /// Design point.
        variant: Variant,
        /// Instruction budget per core.
        budget: u64,
    },
    /// [`ShardTask::ChipRun`] plus a steady-state thermal solve — the
    /// Figure 10 row unit. Solver non-convergence surfaces as a shard
    /// failure (retried, then degraded).
    ThermalRun {
        /// Workload name.
        workload: String,
        /// Design point.
        variant: Variant,
        /// Instruction budget per core.
        budget: u64,
        /// Thermal grid resolution (rows = cols).
        rows: usize,
    },
    /// A closed-loop perform/price/heat/react co-simulation under a DTM
    /// policy (the `dtm` experiment unit).
    CosimRun {
        /// Workload name.
        workload: String,
        /// Design point.
        variant: Variant,
        /// DTM policy.
        policy: PolicyKind,
        /// Temperature cap, kelvin.
        cap_k: f64,
        /// Thermal grid resolution.
        rows: usize,
        /// Thermal seconds per interval.
        interval_s: f64,
        /// Pipeline cycles per interval.
        slice_cycles: u64,
        /// Number of intervals.
        steps: usize,
    },
    /// A cheap, fully deterministic shard for exercising the
    /// orchestrator itself (tests, the CI resume gate).
    SelfTest {
        /// Seed for the deterministic pseudo-metrics.
        seed: u64,
        /// Busy-work rounds, so the shard has measurable wall time.
        spin: u64,
    },
}

impl ShardTask {
    /// A canonical, stable one-line description — the fingerprint input
    /// that pins a run directory to its spec.
    pub fn canonical(&self) -> String {
        match self {
            ShardTask::ChipRun { workload, variant, budget } => {
                format!("chip workload={workload} variant={} budget={budget}", variant.label())
            }
            ShardTask::ThermalRun { workload, variant, budget, rows } => format!(
                "thermal workload={workload} variant={} budget={budget} rows={rows}",
                variant.label()
            ),
            ShardTask::CosimRun {
                workload,
                variant,
                policy,
                cap_k,
                rows,
                interval_s,
                slice_cycles,
                steps,
            } => format!(
                "cosim workload={workload} variant={} policy={} cap_k={cap_k} rows={rows} \
                 interval_s={interval_s} slice_cycles={slice_cycles} steps={steps}",
                variant.label(),
                policy.name()
            ),
            ShardTask::SelfTest { seed, spin } => format!("selftest seed={seed} spin={spin}"),
        }
    }

    /// Runs the task to completion on the current thread.
    ///
    /// # Errors
    ///
    /// Unknown workloads, pipeline traps, and thermal-solver
    /// non-convergence, as messages.
    pub fn execute(&self) -> Result<ShardPayload, String> {
        match self {
            ShardTask::ChipRun { workload, variant, budget } => {
                let w = workload_by_name(workload)
                    .ok_or_else(|| format!("unknown workload {workload:?}"))?;
                let run = run_chip(*variant, &w, *budget)
                    .map_err(|t| format!("pipeline trap: {t:?}"))?;
                let table = run.die_table();
                Ok(ShardPayload {
                    metrics: vec![
                        ("ipc".into(), run.ipc()),
                        ("ipns".into(), run.ipns()),
                        ("total_w".into(), run.power.total_w()),
                        ("cycles".into(), run.cycles() as f64),
                        ("committed".into(), run.core_stats.committed as f64),
                        ("rf_top_die".into(), table.fractions(Unit::RegFile)[0]),
                    ],
                    timings: Vec::new(),
                })
            }
            ShardTask::ThermalRun { workload, variant, budget, rows } => {
                let w = workload_by_name(workload)
                    .ok_or_else(|| format!("unknown workload {workload:?}"))?;
                let run = run_chip(*variant, &w, *budget)
                    .map_err(|t| format!("pipeline trap: {t:?}"))?;
                let analysis = thermal_analysis(&run, *rows).map_err(|e| e.to_string())?;
                Ok(ShardPayload {
                    metrics: vec![
                        ("ipc".into(), run.ipc()),
                        ("total_w".into(), run.power.total_w()),
                        ("peak_k".into(), analysis.peak_k()),
                    ],
                    timings: Vec::new(),
                })
            }
            ShardTask::CosimRun {
                workload,
                variant,
                policy,
                cap_k,
                rows,
                interval_s,
                slice_cycles,
                steps,
            } => {
                let w = workload_by_name(workload)
                    .ok_or_else(|| format!("unknown workload {workload:?}"))?;
                let cfg = CoSimConfig::sampled(*interval_s, *slice_cycles, *steps);
                let trace = dtm::run_variant_scaled(
                    *variant,
                    &w,
                    *cap_k,
                    *rows,
                    policy.build(*cap_k),
                    cfg,
                );
                Ok(ShardPayload {
                    metrics: vec![
                        ("intervals".into(), trace.report.intervals.len() as f64),
                        ("max_peak_k".into(), trace.max_peak_k()),
                        ("mean_clock_ghz".into(), trace.mean_clock_ghz()),
                        ("throttled_fraction".into(), trace.throttled_fraction()),
                        ("delivered_ginst".into(), trace.delivered_ginst()),
                        ("ipc".into(), trace.ipc()),
                        ("rf_top_die".into(), trace.rf_top_die()),
                    ],
                    timings: vec![
                        ("sim_wall_s".into(), trace.report.sim_wall_s),
                        ("solver_wall_s".into(), trace.report.solver_wall_s),
                    ],
                })
            }
            ShardTask::SelfTest { seed, spin } => {
                let mut x = *seed ^ 0x9e37_79b9_7f4a_7c15;
                for _ in 0..(*spin).max(1) {
                    x = splitmix64(x);
                }
                Ok(ShardPayload {
                    metrics: vec![
                        ("seed".into(), *seed as f64),
                        ("value".into(), (x >> 11) as f64 / (1u64 << 53) as f64),
                    ],
                    timings: Vec::new(),
                })
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// What a successful shard produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardPayload {
    /// Deterministic simulation outputs (bit-identical across resumes
    /// and thread counts).
    pub metrics: Vec<(String, f64)>,
    /// Wall-clock measurements — telemetry, excluded from determinism.
    pub timings: Vec<(String, f64)>,
}

/// One shard of a sweep: a stable id plus its task.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Unique id within the sweep; also the checkpoint filename (after
    /// sanitization), so keep it filesystem-friendly.
    pub id: String,
    /// The work.
    pub task: ShardTask,
}

/// A declarative sweep: a name plus its shards, in execution order.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// The sweep's name (recorded in the manifest).
    pub name: String,
    /// The shards.
    pub shards: Vec<ShardSpec>,
}

impl SweepSpec {
    /// A fingerprint over the name and every shard's id + canonical
    /// task description. A run directory refuses to resume under a
    /// different fingerprint.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        eat(&self.name);
        for shard in &self.shards {
            eat(&shard.id);
            eat(&shard.task.canonical());
        }
        h
    }
}

/// Terminal status of a shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStatus {
    /// Completed successfully.
    Done,
    /// Every attempt failed; the recorded error is the last one. The
    /// sweep completed around it.
    Degraded,
}

impl ShardStatus {
    fn name(self) -> &'static str {
        match self {
            ShardStatus::Done => "done",
            ShardStatus::Degraded => "degraded",
        }
    }

    fn by_name(name: &str) -> Option<ShardStatus> {
        match name {
            "done" => Some(ShardStatus::Done),
            "degraded" => Some(ShardStatus::Degraded),
            _ => None,
        }
    }
}

/// The durable per-shard result.
#[derive(Clone, Debug)]
pub struct ShardRecord {
    /// Shard id.
    pub id: String,
    /// Terminal status.
    pub status: ShardStatus,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall-clock seconds across all attempts (telemetry).
    pub wall_s: f64,
    /// The last error, for degraded shards.
    pub error: Option<String>,
    /// Deterministic metrics (empty for degraded shards).
    pub metrics: Vec<(String, f64)>,
    /// Wall-clock measurements from inside the task (telemetry).
    pub timings: Vec<(String, f64)>,
    /// Loaded from a checkpoint rather than computed by this run.
    pub resumed: bool,
}

impl ShardRecord {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Looks up a timing by name.
    pub fn timing(&self, name: &str) -> Option<f64> {
        self.timings.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    fn to_json(&self) -> String {
        let pairs = |kv: &[(String, f64)]| {
            let body: Vec<String> =
                kv.iter().map(|(k, v)| format!("{}: {}", json::quote(k), json::num(*v))).collect();
            format!("{{{}}}", body.join(", "))
        };
        json::obj(&[
            ("id".into(), json::quote(&self.id)),
            ("status".into(), json::quote(self.status.name())),
            ("attempts".into(), format!("{}", self.attempts)),
            ("wall_s".into(), json::num(self.wall_s)),
            (
                "error".into(),
                self.error.as_deref().map_or("null".into(), json::quote),
            ),
            ("metrics".into(), pairs(&self.metrics)),
            ("timings".into(), pairs(&self.timings)),
        ])
    }

    fn from_json(v: &Json) -> Option<ShardRecord> {
        let kv = |key: &str| -> Option<Vec<(String, f64)>> {
            v.get(key)?
                .as_obj()?
                .iter()
                .map(|(k, val)| Some((k.clone(), val.as_f64()?)))
                .collect()
        };
        Some(ShardRecord {
            id: v.get("id")?.as_str()?.to_string(),
            status: ShardStatus::by_name(v.get("status")?.as_str()?)?,
            attempts: v.get("attempts")?.as_f64()? as u32,
            wall_s: v.get("wall_s")?.as_f64()?,
            error: match v.get("error")? {
                Json::Null => None,
                Json::Str(s) => Some(s.clone()),
                _ => return None,
            },
            metrics: kv("metrics")?,
            timings: kv("timings")?,
            resumed: true,
        })
    }
}

/// Orchestration knobs.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Attempts per shard before it is recorded degraded (>= 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Per-attempt wall-clock limit. `Some` runs each attempt on a
    /// watchdog thread; an attempt that overruns is abandoned (the
    /// thread is detached) and counts as a failure.
    pub timeout: Option<Duration>,
    /// Injected failures (see [`FaultPlan`]).
    pub fault: FaultPlan,
    /// Print per-shard progress to stderr.
    pub verbose: bool,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions {
            max_attempts: 3,
            backoff: Duration::from_millis(100),
            timeout: None,
            fault: FaultPlan::default(),
            verbose: false,
        }
    }
}

impl SweepOptions {
    /// Applies environment knobs: the [`FAULT_ENV`] fault plan.
    pub fn from_env() -> SweepOptions {
        SweepOptions { fault: FaultPlan::from_env(), ..SweepOptions::default() }
    }
}

/// The merged result of a sweep run.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// The sweep's name.
    pub sweep: String,
    /// The run directory.
    pub dir: PathBuf,
    /// One record per shard, in spec order (resumed and fresh alike).
    pub records: Vec<ShardRecord>,
    /// Shards loaded from checkpoints (not recomputed).
    pub resumed: usize,
    /// Shards computed by this run.
    pub executed: usize,
}

impl SweepOutcome {
    /// Number of successful shards.
    pub fn done(&self) -> usize {
        self.records.iter().filter(|r| r.status == ShardStatus::Done).count()
    }

    /// Number of degraded shards.
    pub fn degraded(&self) -> usize {
        self.records.iter().filter(|r| r.status == ShardStatus::Degraded).count()
    }

    /// A record by shard id.
    pub fn record(&self, id: &str) -> Option<&ShardRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// A metric of one shard.
    pub fn metric(&self, id: &str, name: &str) -> Option<f64> {
        self.record(id)?.metric(name)
    }
}

/// A shard id reduced to a safe checkpoint filename.
fn sanitize_id(id: &str) -> String {
    id.chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect()
}

fn manifest_json(spec: &SweepSpec) -> String {
    let ids: Vec<String> = spec.shards.iter().map(|s| json::quote(&s.id)).collect();
    let tasks: Vec<String> =
        spec.shards.iter().map(|s| json::quote(&s.task.canonical())).collect();
    json::obj(&[
        ("sweep".into(), json::quote(&spec.name)),
        ("fingerprint".into(), json::quote(&format!("{:016x}", spec.fingerprint()))),
        ("shards".into(), format!("{}", spec.shards.len())),
        ("ids".into(), format!("[{}]", ids.join(", "))),
        ("tasks".into(), format!("[{}]", tasks.join(", "))),
    ])
}

/// Writes `content` durably: to a temp file in the same directory, then
/// an atomic rename over the destination.
fn write_durable(path: &Path, content: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, content)?;
    fs::rename(&tmp, path)
}

fn err_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Append-only telemetry stream, shared across shard lanes.
struct Telemetry {
    file: Mutex<fs::File>,
}

impl Telemetry {
    fn open(path: &Path) -> io::Result<Telemetry> {
        let file = fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Telemetry { file: Mutex::new(file) })
    }

    fn emit(&self, pairs: &[(String, String)]) {
        let line = json::obj(pairs);
        let mut f = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry is best-effort: an unwritable line must not fail the
        // shard that produced it.
        let _ = writeln!(f, "{line}");
    }
}

fn str_pair(k: &str, v: &str) -> (String, String) {
    (k.to_string(), json::quote(v))
}

fn raw_pair(k: &str, v: String) -> (String, String) {
    (k.to_string(), v)
}

/// One attempt of a task, with the unwind boundary and optional
/// watchdog timeout.
fn run_attempt(task: &ShardTask, timeout: Option<Duration>) -> Result<ShardPayload, String> {
    let guarded = |task: &ShardTask| -> Result<ShardPayload, String> {
        match catch_unwind(AssertUnwindSafe(|| task.execute())) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(format!("panic at shard boundary: {msg}"))
            }
        }
    };
    match timeout {
        None => guarded(task),
        Some(limit) => {
            let (tx, rx) = std::sync::mpsc::channel();
            let task = task.clone();
            // The watchdog owns the attempt; on overrun the thread is
            // abandoned (detached) and its eventual result discarded.
            std::thread::Builder::new()
                .name("th-sweep-attempt".into())
                .spawn(move || {
                    let _ = tx.send(guarded(&task));
                })
                .map_err(|e| format!("spawn attempt thread: {e}"))?;
            match rx.recv_timeout(limit) {
                Ok(result) => result,
                Err(_) => Err(format!("attempt timed out after {:.3} s", limit.as_secs_f64())),
            }
        }
    }
}

/// Runs (or resumes) `spec` in `dir` over `pool`.
///
/// Finished shards found in `dir` are loaded from their checkpoints and
/// **not** recomputed; shards previously recorded degraded are retried.
/// Per-shard failures never abort sibling shards.
///
/// # Errors
///
/// I/O problems with the run directory, or a manifest that belongs to a
/// different spec (fingerprint mismatch).
pub fn run_sweep(
    spec: &SweepSpec,
    dir: &Path,
    opts: &SweepOptions,
    pool: &th_exec::Pool,
) -> io::Result<SweepOutcome> {
    assert!(opts.max_attempts >= 1, "at least one attempt");
    {
        let mut seen = std::collections::BTreeSet::new();
        for s in &spec.shards {
            if !seen.insert(sanitize_id(&s.id)) {
                return Err(err_data(format!("duplicate shard id {:?}", s.id)));
            }
        }
    }
    let shards_dir = dir.join("shards");
    fs::create_dir_all(&shards_dir)?;

    // Manifest: create on first run, verify identity on resume.
    let manifest_path = dir.join("manifest.json");
    match fs::read_to_string(&manifest_path) {
        Ok(text) => {
            let v = Json::parse(&text)
                .map_err(|e| err_data(format!("corrupt manifest: {e}")))?;
            let found = v.get("fingerprint").and_then(Json::as_str).unwrap_or("");
            let expect = format!("{:016x}", spec.fingerprint());
            if found != expect {
                return Err(err_data(format!(
                    "run directory {} belongs to a different sweep \
                     (manifest fingerprint {found}, spec {expect})",
                    dir.display()
                )));
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            write_durable(&manifest_path, &manifest_json(spec))?;
        }
        Err(e) => return Err(e),
    }

    // Partition: shards with a parseable Done checkpoint are complete;
    // everything else (missing, corrupt, degraded) is pending.
    let mut slots: Vec<Option<ShardRecord>> = vec![None; spec.shards.len()];
    let mut pending: Vec<usize> = Vec::new();
    for (i, shard) in spec.shards.iter().enumerate() {
        let path = shards_dir.join(format!("{}.json", sanitize_id(&shard.id)));
        let loaded = fs::read_to_string(&path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|v| ShardRecord::from_json(&v))
            .filter(|r| r.id == shard.id && r.status == ShardStatus::Done);
        match loaded {
            Some(record) => slots[i] = Some(record),
            None => pending.push(i),
        }
    }
    let resumed = spec.shards.len() - pending.len();

    let telemetry = Telemetry::open(&dir.join("telemetry.jsonl"))?;
    telemetry.emit(&[
        str_pair("event", "sweep_start"),
        str_pair("sweep", &spec.name),
        raw_pair("shards", format!("{}", spec.shards.len())),
        raw_pair("resumed_done", format!("{resumed}")),
        raw_pair("pending", format!("{}", pending.len())),
    ]);
    if opts.verbose && resumed > 0 {
        eprintln!(
            "sweep {}: resuming — {resumed} shard(s) already done, {} pending",
            spec.name,
            pending.len()
        );
    }

    let executed = pool.map(&pending, |&i| {
        let shard = &spec.shards[i];
        let t0 = Instant::now();
        telemetry.emit(&[str_pair("event", "shard_start"), str_pair("shard", &shard.id)]);
        let mut last_err = String::new();
        let mut result = None;
        let mut attempts = 0;
        for attempt in 1..=opts.max_attempts {
            attempts = attempt;
            let outcome = match opts.fault.should_fail(&shard.id, attempt) {
                Some(FaultMode::Error) => {
                    Err(format!("{FAULT_ENV}: injected failure (attempt {attempt})"))
                }
                Some(FaultMode::Panic) => run_attempt(
                    &ShardTask::SelfTest { seed: u64::MAX, spin: 0 },
                    // Route through the real unwind boundary so the
                    // injected panic exercises the same catch as a real
                    // one.
                    None,
                )
                .and_then(|_| -> Result<ShardPayload, String> {
                    panic_shard(attempt)
                }),
                None => run_attempt(&shard.task, opts.timeout),
            };
            match outcome {
                Ok(payload) => {
                    result = Some(payload);
                    break;
                }
                Err(msg) => {
                    last_err = msg;
                    if attempt < opts.max_attempts {
                        telemetry.emit(&[
                            str_pair("event", "shard_retry"),
                            str_pair("shard", &shard.id),
                            raw_pair("attempt", format!("{attempt}")),
                            str_pair("error", &last_err),
                        ]);
                        if opts.verbose {
                            eprintln!(
                                "sweep {}: shard {} attempt {attempt} failed ({last_err}); \
                                 retrying",
                                spec.name, shard.id
                            );
                        }
                        let backoff = opts.backoff.saturating_mul(1 << (attempt - 1).min(16));
                        if backoff > Duration::ZERO {
                            std::thread::sleep(backoff);
                        }
                    }
                }
            }
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let record = match result {
            Some(payload) => ShardRecord {
                id: shard.id.clone(),
                status: ShardStatus::Done,
                attempts,
                wall_s,
                error: None,
                metrics: payload.metrics,
                timings: payload.timings,
                resumed: false,
            },
            None => ShardRecord {
                id: shard.id.clone(),
                status: ShardStatus::Degraded,
                attempts,
                wall_s,
                error: Some(last_err.clone()),
                metrics: Vec::new(),
                timings: Vec::new(),
                resumed: false,
            },
        };
        // Durable checkpoint first, then the telemetry line announcing
        // it — a kill between the two re-runs nothing.
        let path = shards_dir.join(format!("{}.json", sanitize_id(&shard.id)));
        let write_err = write_durable(&path, &record.to_json()).err();
        match record.status {
            ShardStatus::Done => telemetry.emit(&[
                str_pair("event", "shard_done"),
                str_pair("shard", &shard.id),
                raw_pair("attempts", format!("{attempts}")),
                raw_pair("wall_s", json::num(wall_s)),
            ]),
            ShardStatus::Degraded => telemetry.emit(&[
                str_pair("event", "shard_degraded"),
                str_pair("shard", &shard.id),
                raw_pair("attempts", format!("{attempts}")),
                str_pair("error", &last_err),
            ]),
        }
        if opts.verbose {
            eprintln!(
                "sweep {}: shard {} {} ({attempts} attempt(s), {wall_s:.2} s)",
                spec.name,
                shard.id,
                record.status.name()
            );
        }
        (record, write_err)
    });

    let mut write_failure = None;
    for (record, write_err) in executed {
        let i = spec
            .shards
            .iter()
            .position(|s| s.id == record.id)
            .expect("executed shard is in the spec");
        if let Some(e) = write_err {
            write_failure.get_or_insert(e);
        }
        slots[i] = Some(record);
    }
    if let Some(e) = write_failure {
        return Err(e);
    }

    let records: Vec<ShardRecord> =
        slots.into_iter().map(|r| r.expect("every slot filled")).collect();
    let outcome = SweepOutcome {
        sweep: spec.name.clone(),
        dir: dir.to_path_buf(),
        records,
        resumed,
        executed: pending.len(),
    };
    telemetry.emit(&[
        str_pair("event", "sweep_done"),
        raw_pair("done", format!("{}", outcome.done())),
        raw_pair("degraded", format!("{}", outcome.degraded())),
    ]);
    Ok(outcome)
}

/// The injected-panic site, kept out of line so the backtrace names it.
fn panic_shard(attempt: u32) -> Result<ShardPayload, String> {
    let r = catch_unwind(AssertUnwindSafe(|| -> ShardPayload {
        panic!("{FAULT_ENV}: injected panic (attempt {attempt})")
    }));
    match r {
        Ok(p) => Ok(p),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "injected panic".into());
            Err(format!("panic at shard boundary: {msg}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn selftest_spec(n: usize) -> SweepSpec {
        SweepSpec {
            name: "unit".into(),
            shards: (0..n)
                .map(|i| ShardSpec {
                    id: format!("selftest-{i}"),
                    task: ShardTask::SelfTest { seed: i as u64, spin: 4 },
                })
                .collect(),
        }
    }

    #[test]
    fn fingerprint_is_stable_and_spec_sensitive() {
        let a = selftest_spec(3);
        assert_eq!(a.fingerprint(), selftest_spec(3).fingerprint());
        assert_ne!(a.fingerprint(), selftest_spec(4).fingerprint());
        let mut renamed = selftest_spec(3);
        renamed.name = "other".into();
        assert_ne!(a.fingerprint(), renamed.fingerprint());
        let mut retasked = selftest_spec(3);
        retasked.shards[1].task = ShardTask::SelfTest { seed: 99, spin: 4 };
        assert_ne!(a.fingerprint(), retasked.fingerprint());
    }

    #[test]
    fn shard_record_round_trips_through_json() {
        let record = ShardRecord {
            id: "fig8/gzip-like/3D".into(),
            status: ShardStatus::Done,
            attempts: 2,
            wall_s: 1.25,
            error: None,
            metrics: vec![("ipc".into(), 1.234567890123), ("x".into(), -0.0)],
            timings: vec![("sim_wall_s".into(), 0.5)],
            resumed: false,
        };
        let parsed =
            ShardRecord::from_json(&Json::parse(&record.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.id, record.id);
        assert_eq!(parsed.status, record.status);
        assert_eq!(parsed.attempts, record.attempts);
        assert_eq!(parsed.error, None);
        assert_eq!(parsed.metrics.len(), 2);
        for ((ka, va), (kb, vb)) in parsed.metrics.iter().zip(&record.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        assert!(parsed.resumed);

        let degraded = ShardRecord {
            status: ShardStatus::Degraded,
            error: Some("solver did not converge".into()),
            metrics: Vec::new(),
            ..record
        };
        let parsed =
            ShardRecord::from_json(&Json::parse(&degraded.to_json()).unwrap()).unwrap();
        assert_eq!(parsed.status, ShardStatus::Degraded);
        assert_eq!(parsed.error.as_deref(), Some("solver did not converge"));
    }

    #[test]
    fn selftest_task_is_deterministic() {
        let t = ShardTask::SelfTest { seed: 7, spin: 100 };
        let a = t.execute().unwrap();
        let b = t.execute().unwrap();
        assert_eq!(a, b);
        let other = ShardTask::SelfTest { seed: 8, spin: 100 }.execute().unwrap();
        assert_ne!(a.metrics, other.metrics);
    }

    #[test]
    fn unknown_workload_is_a_shard_error_not_a_panic() {
        let t = ShardTask::ChipRun {
            workload: "no-such-kernel".into(),
            variant: Variant::Base,
            budget: 1000,
        };
        let err = t.execute().unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn sanitize_keeps_safe_chars_and_replaces_the_rest() {
        assert_eq!(sanitize_id("fig8/gzip-like/3D"), "fig8-gzip-like-3D");
        assert_eq!(sanitize_id("a.b_c-9"), "a.b_c-9");
    }

    #[test]
    fn duplicate_shard_ids_are_rejected() {
        let mut spec = selftest_spec(2);
        spec.shards[1].id = spec.shards[0].id.clone();
        let dir = std::env::temp_dir().join(format!("th-sweep-dup-{}", std::process::id()));
        let pool = th_exec::Pool::new(1);
        let err = run_sweep(&spec, &dir, &SweepOptions::default(), &pool).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
