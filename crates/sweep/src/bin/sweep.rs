//! CLI front end for the sweep orchestrator.
//!
//! ```text
//! cargo run --release -p th-sweep --bin sweep -- <preset> [options]
//!
//!   <preset>            fig8 | fig9 | fig10 | dtm | dtm-smoke | selftest
//!   --dir <path>        run directory (default: sweeps/<preset>)
//!   --budget <insts>    per-core instruction budget (default: 60000)
//!   --rows <n>          fig10 thermal grid resolution (default: 16)
//!   --attempts <n>      attempts per shard before degrading (default: 3)
//!   --timeout-s <secs>  per-attempt wall-clock limit (default: none)
//!   --quiet             suppress per-shard progress on stderr
//! ```
//!
//! Rerunning with the same directory resumes: shards already
//! checkpointed as done are loaded, everything else (including shards
//! previously recorded degraded) is recomputed. `TH_SWEEP_FAULT` injects
//! failures (see the th-sweep crate docs), `TH_THREADS` sets the lane
//! count.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use th_sweep::{presets, run_sweep, ShardStatus, SweepOptions};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sweep <preset> [--dir <path>] [--budget <insts>] [--rows <n>] \
         [--attempts <n>] [--timeout-s <secs>] [--quiet]\n       presets: {}",
        presets::names().join(", ")
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut preset = None;
    let mut dir = None;
    let mut budget = presets::DEFAULT_BUDGET;
    let mut rows = presets::DEFAULT_ROWS;
    let mut opts = SweepOptions::from_env();
    opts.verbose = true;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or_else(|| eprintln!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--dir" => match value("--dir") {
                Ok(v) => dir = Some(PathBuf::from(v)),
                Err(()) => return usage(),
            },
            "--budget" => match value("--budget").map(str::parse) {
                Ok(Ok(v)) => budget = v,
                _ => return usage(),
            },
            "--rows" => match value("--rows").map(str::parse) {
                Ok(Ok(v)) => rows = v,
                _ => return usage(),
            },
            "--attempts" => match value("--attempts").map(str::parse) {
                Ok(Ok(v)) if v >= 1 => opts.max_attempts = v,
                _ => return usage(),
            },
            "--timeout-s" => match value("--timeout-s").map(str::parse::<f64>) {
                Ok(Ok(v)) if v > 0.0 => opts.timeout = Some(Duration::from_secs_f64(v)),
                _ => return usage(),
            },
            "--quiet" => opts.verbose = false,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if preset.is_none() && !name.starts_with('-') => {
                preset = Some(name.to_string());
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return usage();
            }
        }
    }

    let Some(preset) = preset else {
        return usage();
    };
    let Some(spec) = presets::by_name(&preset, budget, rows) else {
        eprintln!("unknown preset {preset:?}");
        return usage();
    };
    let dir = dir.unwrap_or_else(|| PathBuf::from("sweeps").join(&preset));

    let pool = th_exec::Pool::new(th_exec::threads_from_env().max(1));
    let outcome = match run_sweep(&spec, &dir, &opts, &pool) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "sweep {}: {} shard(s) — {} done, {} degraded ({} resumed, {} computed)",
        outcome.sweep,
        outcome.records.len(),
        outcome.done(),
        outcome.degraded(),
        outcome.resumed,
        outcome.executed,
    );
    for r in &outcome.records {
        let metrics: Vec<String> =
            r.metrics.iter().map(|(k, v)| format!("{k}={v:.4}")).collect();
        match r.status {
            ShardStatus::Done => {
                println!("  {:<28} {}", r.id, metrics.join(" "));
            }
            ShardStatus::Degraded => {
                println!(
                    "  {:<28} DEGRADED after {} attempt(s): {}",
                    r.id,
                    r.attempts,
                    r.error.as_deref().unwrap_or("unknown error")
                );
            }
        }
    }
    println!("run directory: {}", outcome.dir.display());
    ExitCode::SUCCESS
}
