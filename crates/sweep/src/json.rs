//! A minimal JSON value: just enough to emit and re-read the sweep's
//! manifests, per-shard checkpoints, and telemetry lines (the build
//! environment has no crates.io access, so serde is not an option).
//!
//! Numbers are `f64` and are emitted with Rust's shortest-round-trip
//! `Display`, so every finite value survives an emit/parse cycle
//! bit-for-bit — the property the sweep's resume determinism rests on.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order of appearance.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's fields.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-utf8 number at offset {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string content".to_string())?;
                    let ch = rest.chars().next().expect("peeked non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

/// A JSON string literal (quoted, escaped) for `s`.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A JSON number token for `v`: shortest-round-trip `Display` for finite
/// values, `null` for NaN/infinities (JSON has no spelling for them).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `Display` omits the fraction for integral values; spell the
        // token as a float anyway so readers see the field's type.
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// A `"key": value` pair list rendered as a JSON object.
pub fn obj(pairs: &[(String, String)]) -> String {
    let body: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{}: {}", quote(k), v)).collect();
    format!("{{{}}}", body.join(", "))
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => f.write_str(&num(*v)),
            Json::Str(s) => f.write_str(&quote(s)),
            Json::Arr(items) => {
                let body: Vec<String> = items.iter().map(|v| v.to_string()).collect();
                write!(f, "[{}]", body.join(", "))
            }
            Json::Obj(fields) => {
                let body: Vec<String> =
                    fields.iter().map(|(k, v)| format!("{}: {v}", quote(k))).collect();
                write!(f, "{{{}}}", body.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y"}, "d": null, "e": true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    proptest! {
        #[test]
        fn finite_numbers_round_trip_bit_exactly(bits in any::<u64>()) {
            let v = f64::from_bits(bits);
            prop_assume!(v.is_finite());
            let parsed = Json::parse(&num(v)).unwrap();
            prop_assert_eq!(parsed.as_f64().unwrap().to_bits(), v.to_bits());
        }

        #[test]
        fn strings_round_trip(s in "\\PC*") {
            let parsed = Json::parse(&quote(&s)).unwrap();
            prop_assert_eq!(parsed.as_str(), Some(s.as_str()));
        }
    }
}
