//! Named sweep presets reproducing the paper's experiment grids.
//!
//! Each preset expands one experiment into its independent shards:
//! `fig8` and `fig9` are chip-run grids (workload × design point),
//! `fig10` is the worst-case thermal search grid, and `dtm` is the
//! closed-loop policy comparison. `selftest` is the orchestrator's own
//! cheap exercise grid (used by tests and the CI resume gate).

use crate::{ShardSpec, ShardTask, SweepSpec};
use th_cosim::PolicyKind;
use th_workloads::all_workloads;
use thermal_herding::experiments::fig10::worst_case_candidates;
use thermal_herding::Variant;

/// Default per-core instruction budget for the chip-run presets.
pub const DEFAULT_BUDGET: u64 = 60_000;
/// Default thermal grid resolution for `fig10`.
pub const DEFAULT_ROWS: usize = 16;
/// The DTM presets' temperature cap, kelvin (between the herded and
/// unherded steady-state ceilings, as in the `dtm` experiment).
pub const DTM_CAP_K: f64 = 376.0;

/// The Figure 8 grid: every workload × the five design points.
pub fn fig8(budget: u64) -> SweepSpec {
    let shards = all_workloads()
        .iter()
        .flat_map(|w| {
            Variant::figure8().iter().map(|&variant| ShardSpec {
                id: format!("fig8/{}/{}", w.name, variant.label()),
                task: ShardTask::ChipRun {
                    workload: w.name.to_string(),
                    variant,
                    budget,
                },
            })
        })
        .collect();
    SweepSpec { name: "fig8".into(), shards }
}

/// The Figure 9 grid: every workload × {planar, 3D without herding,
/// 3D with herding}.
pub fn fig9(budget: u64) -> SweepSpec {
    let variants = [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD];
    let shards = all_workloads()
        .iter()
        .flat_map(|w| {
            variants.iter().map(|&variant| ShardSpec {
                id: format!("fig9/{}/{}", w.name, variant.label()),
                task: ShardTask::ChipRun {
                    workload: w.name.to_string(),
                    variant,
                    budget,
                },
            })
        })
        .collect();
    SweepSpec { name: "fig9".into(), shards }
}

/// The Figure 10 worst-case search grid: the hotspot candidate
/// workloads × {planar, 3D without herding, 3D with herding}, each
/// shard a chip run plus a steady-state thermal solve.
pub fn fig10(budget: u64, rows: usize) -> SweepSpec {
    let variants = [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD];
    let shards = variants
        .iter()
        .flat_map(|&variant| {
            worst_case_candidates().into_iter().map(move |w| ShardSpec {
                id: format!("fig10/{}/{}", w.name, variant.label()),
                task: ShardTask::ThermalRun {
                    workload: w.name.to_string(),
                    variant,
                    budget,
                    rows,
                },
            })
        })
        .collect();
    SweepSpec { name: "fig10".into(), shards }
}

/// The closed-loop DTM comparison: the two 3D design points × the three
/// active policies under one cap, at the scaled smoke-budget interval
/// structure (30 × 20 ms intervals, 20k-cycle slices, 12×12 grid).
pub fn dtm() -> SweepSpec {
    let variants = [Variant::ThreeDNoTh, Variant::ThreeD];
    let policies = [PolicyKind::Dvfs, PolicyKind::Fetch, PolicyKind::Herding];
    let shards = variants
        .iter()
        .flat_map(|&variant| {
            policies.iter().map(move |&policy| ShardSpec {
                id: format!("dtm/{}/{}", variant.label(), policy.name()),
                task: dtm_task(variant, policy),
            })
        })
        .collect();
    SweepSpec { name: "dtm".into(), shards }
}

/// The single-shard co-simulation smoke (the benchmark report's DTM
/// timing leg): the unherded 3D stack under the DVFS ladder.
pub fn dtm_smoke() -> SweepSpec {
    SweepSpec {
        name: "dtm-smoke".into(),
        shards: vec![ShardSpec {
            id: "dtm/3D-noTH/dvfs".into(),
            task: dtm_task(Variant::ThreeDNoTh, PolicyKind::Dvfs),
        }],
    }
}

fn dtm_task(variant: Variant, policy: PolicyKind) -> ShardTask {
    ShardTask::CosimRun {
        workload: "mpeg2-like".into(),
        variant,
        policy,
        cap_k: DTM_CAP_K,
        rows: 12,
        interval_s: 0.02,
        slice_cycles: 20_000,
        steps: 30,
    }
}

/// The Figure 10 worst-case row reduction, migrated from the
/// experiment's hand-rolled loop onto sweep records: for each design
/// point, the candidate with the highest solved peak (first strict
/// maximum in candidate order, as the sequential loop picks it).
/// Degraded shards simply don't compete. Returns
/// `(variant label, workload, peak kelvin)` rows in preset order.
pub fn fig10_worst_rows(outcome: &crate::SweepOutcome) -> Vec<(String, String, f64)> {
    let mut rows: Vec<(String, String, f64)> = Vec::new();
    for r in &outcome.records {
        let Some(peak_k) = r.metric("peak_k") else { continue };
        let mut parts = r.id.splitn(3, '/');
        let (Some("fig10"), Some(workload), Some(label)) =
            (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        match rows.iter_mut().find(|(l, _, _)| l == label) {
            Some(row) if peak_k > row.2 => *row = (label.into(), workload.into(), peak_k),
            Some(_) => {}
            None => rows.push((label.into(), workload.into(), peak_k)),
        }
    }
    rows
}

/// Eight cheap deterministic shards for exercising the orchestrator
/// itself (resume, retries, fault injection).
pub fn selftest() -> SweepSpec {
    SweepSpec {
        name: "selftest".into(),
        shards: (0..8)
            .map(|i| ShardSpec {
                id: format!("selftest-{i}"),
                task: ShardTask::SelfTest { seed: i, spin: 50_000 },
            })
            .collect(),
    }
}

/// All preset names, for help text.
pub fn names() -> &'static [&'static str] {
    &["fig8", "fig9", "fig10", "dtm", "dtm-smoke", "selftest"]
}

/// Expands a preset by name. `budget` and `rows` apply to the presets
/// that use them.
pub fn by_name(name: &str, budget: u64, rows: usize) -> Option<SweepSpec> {
    match name {
        "fig8" => Some(fig8(budget)),
        "fig9" => Some(fig9(budget)),
        "fig10" => Some(fig10(budget, rows)),
        "dtm" => Some(dtm()),
        "dtm-smoke" => Some(dtm_smoke()),
        "selftest" => Some(selftest()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_expands_with_unique_ids() {
        for name in names() {
            let spec = by_name(name, 1000, 8).unwrap();
            assert_eq!(&spec.name, name);
            assert!(!spec.shards.is_empty(), "{name} expanded empty");
            let mut ids: Vec<&str> = spec.shards.iter().map(|s| s.id.as_str()).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), spec.shards.len(), "{name} has duplicate shard ids");
        }
        assert!(by_name("bogus", 1000, 8).is_none());
    }

    #[test]
    fn grid_sizes_match_the_experiments() {
        let n = all_workloads().len();
        assert_eq!(fig8(1000).shards.len(), 5 * n);
        assert_eq!(fig9(1000).shards.len(), 3 * n);
        assert_eq!(fig10(1000, 8).shards.len(), 3 * worst_case_candidates().len());
        assert_eq!(dtm().shards.len(), 6);
        assert_eq!(dtm_smoke().shards.len(), 1);
    }

    #[test]
    fn fig10_row_reduction_picks_first_strict_maximum_per_variant() {
        let record = |id: &str, peak: Option<f64>| crate::ShardRecord {
            id: id.into(),
            status: if peak.is_some() {
                crate::ShardStatus::Done
            } else {
                crate::ShardStatus::Degraded
            },
            attempts: 1,
            wall_s: 0.0,
            error: None,
            metrics: peak.map(|p| ("peak_k".into(), p)).into_iter().collect(),
            timings: Vec::new(),
            resumed: false,
        };
        let outcome = crate::SweepOutcome {
            sweep: "fig10".into(),
            dir: std::path::PathBuf::new(),
            records: vec![
                record("fig10/mpeg2-like/Base", Some(360.0)),
                record("fig10/yacr2-like/Base", Some(360.0)), // tie: first wins
                record("fig10/gzip-like/Base", Some(355.0)),
                record("fig10/mpeg2-like/3D", Some(370.0)),
                record("fig10/yacr2-like/3D", Some(372.0)),
                record("fig10/gzip-like/3D", None), // degraded: out of the race
            ],
            resumed: 0,
            executed: 6,
        };
        let rows = fig10_worst_rows(&outcome);
        assert_eq!(
            rows,
            vec![
                ("Base".to_string(), "mpeg2-like".to_string(), 360.0),
                ("3D".to_string(), "yacr2-like".to_string(), 372.0),
            ]
        );
    }

    #[test]
    fn budget_changes_the_fingerprint() {
        assert_ne!(fig8(1000).fingerprint(), fig8(2000).fingerprint());
        assert_eq!(fig8(1000).fingerprint(), fig8(1000).fingerprint());
    }
}
