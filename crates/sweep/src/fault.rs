//! Deterministic fault injection for sweep shards.
//!
//! The `TH_SWEEP_FAULT` environment variable (or an explicit
//! [`FaultPlan`]) forces chosen shards to fail on demand, so the retry /
//! degrade / resume machinery is testable without flaky timing tricks.
//!
//! Syntax: comma-separated rules, each `pattern:count` —
//!
//! * `pattern` matches a shard id exactly, or as a prefix when it ends
//!   in `*` (`fig8/*`).
//! * `count` is how many leading attempts of each matching shard fail
//!   (`2` = the first two attempts fail, the third runs normally), or
//!   `inf` for every attempt (a permanently failing shard).
//! * a trailing `!` makes the injected failure a **panic** instead of a
//!   returned error, exercising the shard boundary's unwind catch:
//!   `selftest-3:1!`.
//!
//! Example: `TH_SWEEP_FAULT='selftest-2:1,selftest-5:inf!'`.

/// How an injected failure presents at the shard boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The shard returns an error.
    Error,
    /// The shard panics (caught by the orchestrator's unwind boundary).
    Panic,
}

#[derive(Clone, Debug, PartialEq)]
struct FaultRule {
    pattern: String,
    /// Attempts 1..=n fail; `None` means every attempt fails.
    attempts: Option<u32>,
    mode: FaultMode,
}

impl FaultRule {
    fn matches(&self, shard_id: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => shard_id.starts_with(prefix),
            None => self.pattern == shard_id,
        }
    }
}

/// A parsed set of fault-injection rules (empty by default: no faults).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

/// The fault-injection environment knob.
pub const FAULT_ENV: &str = "TH_SWEEP_FAULT";

impl FaultPlan {
    /// Parses the rule syntax described in the module docs. An empty
    /// (or all-whitespace) string is the empty plan.
    pub fn parse(text: &str) -> Option<FaultPlan> {
        let mut rules = Vec::new();
        for part in text.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (pattern, count) = part.rsplit_once(':')?;
            let pattern = pattern.trim();
            if pattern.is_empty() {
                return None;
            }
            let count = count.trim();
            let (count, mode) = match count.strip_suffix('!') {
                Some(c) => (c, FaultMode::Panic),
                None => (count, FaultMode::Error),
            };
            let attempts = if count == "inf" {
                None
            } else {
                Some(count.parse::<u32>().ok().filter(|n| *n >= 1)?)
            };
            rules.push(FaultRule { pattern: pattern.to_string(), attempts, mode });
        }
        Some(FaultPlan { rules })
    }

    /// The plan from [`FAULT_ENV`]; malformed values warn once on stderr
    /// and yield the empty plan.
    pub fn from_env() -> FaultPlan {
        th_exec::env_knob(FAULT_ENV, "rules like 'shard-id:2' or 'prefix*:inf!'", |s| {
            FaultPlan::parse(s)
        })
        .unwrap_or_default()
    }

    /// Whether the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Whether `attempt` (1-based) of `shard_id` should fail, and how.
    /// The first matching rule wins.
    pub fn should_fail(&self, shard_id: &str, attempt: u32) -> Option<FaultMode> {
        self.rules
            .iter()
            .find(|r| r.matches(shard_id))
            .filter(|r| r.attempts.is_none_or(|n| attempt <= n))
            .map(|r| r.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fails() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert_eq!(plan.should_fail("anything", 1), None);
    }

    #[test]
    fn counted_rule_fails_leading_attempts_only() {
        let plan = FaultPlan::parse("shard-a:2").unwrap();
        assert_eq!(plan.should_fail("shard-a", 1), Some(FaultMode::Error));
        assert_eq!(plan.should_fail("shard-a", 2), Some(FaultMode::Error));
        assert_eq!(plan.should_fail("shard-a", 3), None);
        assert_eq!(plan.should_fail("shard-b", 1), None);
    }

    #[test]
    fn inf_rule_fails_every_attempt() {
        let plan = FaultPlan::parse("shard-a:inf").unwrap();
        for attempt in 1..100 {
            assert_eq!(plan.should_fail("shard-a", attempt), Some(FaultMode::Error));
        }
    }

    #[test]
    fn bang_suffix_selects_panic_mode() {
        let plan = FaultPlan::parse("a:1!, b:inf!").unwrap();
        assert_eq!(plan.should_fail("a", 1), Some(FaultMode::Panic));
        assert_eq!(plan.should_fail("a", 2), None);
        assert_eq!(plan.should_fail("b", 7), Some(FaultMode::Panic));
    }

    #[test]
    fn prefix_patterns_match_by_prefix() {
        let plan = FaultPlan::parse("fig8/*:1").unwrap();
        assert_eq!(plan.should_fail("fig8/gzip-like/Base", 1), Some(FaultMode::Error));
        assert_eq!(plan.should_fail("fig9/gzip-like/Base", 1), None);
    }

    #[test]
    fn shard_ids_containing_colons_parse() {
        // rsplit_once: only the last ':' separates the count.
        let plan = FaultPlan::parse("ns:shard:1").unwrap();
        assert_eq!(plan.should_fail("ns:shard", 1), Some(FaultMode::Error));
    }

    #[test]
    fn malformed_rules_are_rejected() {
        for bad in ["shard", "shard:", "shard:0", ":1", "shard:x", "shard:-1"] {
            assert_eq!(FaultPlan::parse(bad), None, "accepted {bad:?}");
        }
    }
}
