//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! this workspace uses: range and `any::<T>()` strategies, tuples,
//! `collection::vec`, `array::uniform4`, `prop_assert!`/`prop_assert_eq!`,
//! and `ProptestConfig::with_cases`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! reports its case number and the formatted assertion instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test generator (FNV-1a of the test name).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// Error type returned by `prop_assert!` family macros. A "reject"
/// (from `prop_assume!`) skips the case instead of failing the test.
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
    reject: bool,
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError { msg, reject: false }
    }

    /// An unmet-precondition rejection (`prop_assume!`).
    pub fn reject(msg: String) -> TestCaseError {
        TestCaseError { msg, reject: true }
    }

    /// Whether this case should be skipped rather than reported.
    pub fn is_reject(&self) -> bool {
        self.reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Configuration block accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the usual `prop_map` adaptor).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, map: f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.new_value(rng))
    }
}

/// Uniform choice among boxed strategies of one value type — the
/// backing type of [`prop_oneof!`].
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.0.gen_range(0..self.0.len());
        self.0[pick].new_value(rng)
    }
}

/// Type-erases a strategy for [`Union`] membership.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniform choice among strategies producing the same value type.
/// (Real proptest's per-arm weights are not supported.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::boxed($strategy)),+])
    };
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen_range(self.clone())
            }
        }
    )*}
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64, f32);

/// Marker strategy produced by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Strategy for an arbitrary value of `T`.
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! any_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.0.gen()
            }
        }
    )*}
}
any_strategy!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, f64, f32);

/// String literals act as regex-shaped generators (as in real proptest):
/// the strategy draws strings matching the pattern. Supported syntax:
/// literals, `\`-escapes, `\PC` (any printable char), `[a-z.]` classes
/// with ranges, `(..|..)` groups, and `{m,n}` / `?` / `*` / `+`
/// quantifiers (`*`/`+` are capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        let ast = regex_gen::parse(self);
        let mut out = String::new();
        regex_gen::generate(&ast, rng, &mut out);
        out
    }
}

mod regex_gen {
    use super::TestRng;
    use rand::Rng;

    pub enum Node {
        Lit(char),
        /// Inclusive char ranges; a single char is `(c, c)`.
        Class(Vec<(char, char)>),
        /// `\PC`: any printable (non-control) character.
        AnyPrintable,
        /// Alternatives, each a concatenation.
        Group(Vec<Vec<Node>>),
        Rep(Box<Node>, u32, u32),
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alts = parse_alt(&chars, &mut pos);
        assert!(pos == chars.len(), "unsupported regex pattern: {pattern}");
        if alts.len() == 1 {
            alts.into_iter().next().unwrap()
        } else {
            vec![Node::Group(alts)]
        }
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Vec<Vec<Node>> {
        let mut alts = vec![parse_concat(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_concat(chars, pos));
        }
        alts
    }

    fn parse_concat(chars: &[char], pos: &mut usize) -> Vec<Node> {
        let mut seq = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos);
            seq.push(parse_quant(chars, pos, atom));
        }
        seq
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let alts = parse_alt(chars, pos);
                assert!(chars.get(*pos) == Some(&')'), "unclosed group");
                *pos += 1;
                Node::Group(alts)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while chars[*pos] != ']' {
                    let lo = if chars[*pos] == '\\' {
                        *pos += 1;
                        escape_literal(chars[*pos])
                    } else {
                        chars[*pos]
                    };
                    *pos += 1;
                    if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        *pos += 1;
                        let hi = chars[*pos];
                        *pos += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                *pos += 1;
                Node::Class(ranges)
            }
            '.' => {
                *pos += 1;
                Node::AnyPrintable
            }
            '\\' => {
                *pos += 1;
                let c = chars[*pos];
                *pos += 1;
                match c {
                    // `\PC` / `\pC`: Unicode category escape; the only one
                    // this workspace uses is "not control" ≈ printable.
                    'P' | 'p' => {
                        *pos += 1; // category letter
                        Node::AnyPrintable
                    }
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                    other => Node::Lit(escape_literal(other)),
                }
            }
            c => {
                *pos += 1;
                Node::Lit(c)
            }
        }
    }

    fn escape_literal(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_quant(chars: &[char], pos: &mut usize, atom: Node) -> Node {
        let (min, max) = match chars.get(*pos) {
            Some('?') => (0, 1),
            Some('*') => (0, 8),
            Some('+') => (1, 9),
            Some('{') => {
                *pos += 1;
                let mut min = 0u32;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap();
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = 0u32;
                    while chars[*pos].is_ascii_digit() {
                        max = max * 10 + chars[*pos].to_digit(10).unwrap();
                        *pos += 1;
                    }
                    max
                } else {
                    min
                };
                assert!(chars[*pos] == '}', "unclosed quantifier");
                return {
                    *pos += 1;
                    Node::Rep(Box::new(atom), min, max)
                };
            }
            _ => return atom,
        };
        *pos += 1;
        Node::Rep(Box::new(atom), min, max)
    }

    pub fn generate(seq: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in seq {
            generate_node(node, rng, out);
        }
    }

    fn generate_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u32 = ranges.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
                let mut k = rng.0.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let span = hi as u32 - lo as u32 + 1;
                    if k < span {
                        out.push(char::from_u32(lo as u32 + k).unwrap_or(lo));
                        return;
                    }
                    k -= span;
                }
            }
            Node::AnyPrintable => {
                // Mostly printable ASCII, with occasional non-ASCII
                // codepoints to stress byte-level assumptions.
                if rng.0.gen_bool(0.9) {
                    out.push(char::from_u32(rng.0.gen_range(0x20u32..0x7f)).unwrap());
                } else {
                    const EXOTIC: &[char] = &['é', 'ß', '→', '∞', '字', '🔥', '\u{a0}', 'Ω'];
                    out.push(EXOTIC[rng.0.gen_range(0..EXOTIC.len())]);
                }
            }
            Node::Group(alts) => {
                let pick = rng.0.gen_range(0..alts.len());
                generate(&alts[pick], rng, out);
            }
            Node::Rep(inner, min, max) => {
                let n = rng.0.gen_range(*min..=*max);
                for _ in 0..n {
                    generate_node(inner, rng, out);
                }
            }
        }
    }
}

/// A fixed-value strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length range for [`vec`].
    pub struct SizeRange(core::ops::Range<usize>);

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange(*r.start()..r.end() + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy producing a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector of values drawn from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.0.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; 4]`.
    pub struct Uniform4<S>(S);

    /// Four values drawn from the same strategy.
    pub fn uniform4<S: Strategy>(s: S) -> Uniform4<S> {
        Uniform4(s)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn new_value(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
                self.0.new_value(rng),
            ]
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Case precondition: an unmet assumption skips the case (it is not a
/// failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!(
                "assumption failed: {}",
                stringify!($cond)
            )));
        }
    };
}

/// Property-failure assertion; returns an error (rather than panicking)
/// so the harness can attach the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                // `let` destructuring (rather than a closure parameter) so the
                // binding takes the strategy's concrete Value type and the body
                // can freely borrow it as a slice without confusing inference.
                let ($($arg,)+) = ($($crate::Strategy::new_value(&($strat), &mut rng),)+);
                let run = move || -> Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                if let Err(e) = run() {
                    if e.is_reject() {
                        continue; // prop_assume! rejection: skip the case
                    }
                    panic!("proptest case {case}/{} failed: {e}", config.cases);
                }
            }
        }
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
}
