//! Integration tests for the coupled loop: phase-following power,
//! temperature-following leakage, interval-chopping invisibility, and
//! the zero-power cool-down property.

use proptest::prelude::*;
use th_cosim::{
    stack_thermal_model, CoSimConfig, CoSimReport, CoSimulator, DvfsLadder, NoDtm, PolicyKind,
};
use th_isa::parse_asm;
use th_power::{LeakageModel, PowerConfig};
use th_sim::{SimConfig, SimSession};
use th_stack3d::{DieStack, Floorplan};
use th_thermal::{HeatSink, SteadySolver, AMBIENT_K};

const SINK_RESISTANCE_K_PER_W: f64 = 0.23;

/// A compute-dense kernel that halts after `iters` loop trips.
fn busy_kernel(iters: u64) -> String {
    format!(
        "
    li   x10, 0
    li   x11, {iters}
loop:
    add  x1, x1, x10
    mul  x2, x1, x10
    add  x3, x3, x2
    addi x10, x10, 1
    bne  x10, x11, loop
    halt
"
    )
}

fn three_d_setup(rows: usize) -> (SimConfig, PowerConfig, LeakageModel, Floorplan, SteadySolver) {
    let floorplan = Floorplan::stacked_dual_core();
    let stack = DieStack::four_die();
    let pcfg = PowerConfig::three_d(3.93, true);
    let leakage = LeakageModel::new(pcfg.chip_leakage_w, &floorplan);
    let model = stack_thermal_model(
        &stack,
        &floorplan,
        HeatSink { resistance_k_per_w: SINK_RESISTANCE_K_PER_W, ambient_k: AMBIENT_K },
    );
    let solver = SteadySolver::new(model, rows, rows);
    (SimConfig::three_d(3.93), pcfg, leakage, floorplan, solver)
}

#[test]
fn heatup_trace_is_coherent_and_leakage_tracks_temperature() {
    let program = parse_asm(&busy_kernel(100_000)).unwrap();
    let (scfg, pcfg, leakage, floorplan, solver) = three_d_setup(12);
    let cfg = CoSimConfig::sampled(0.005, 20_000, 24);
    let cosim = CoSimulator::new(
        scfg,
        pcfg,
        leakage,
        &floorplan,
        solver,
        Box::new(NoDtm),
        cfg,
        &program,
    );
    let report = cosim.run().unwrap();

    assert_eq!(report.intervals.len(), 24);
    let mut prev_t = 0.0;
    for s in &report.intervals {
        assert!(s.t_s > prev_t, "time must advance");
        prev_t = s.t_s;
        assert!(s.cycles > 0, "restart keeps the pipeline busy");
        assert!(s.dynamic_w > 0.0, "active interval must burn dynamic power");
        assert!(s.clock_w > 0.0);
        assert!(s.leakage_w > 0.0);
        assert!(s.peak_k.is_finite() && s.peak_k > AMBIENT_K);
        assert_eq!(s.die_peak_k.len(), 4);
        assert!((s.clock_ghz - 3.93).abs() < 1e-12, "NoDtm never touches the clock");
    }
    // Heating from ambient: temperature rises across the trace, and the
    // temperature-dependent leakage rises with it.
    let first = &report.intervals[0];
    let last = report.intervals.last().unwrap();
    assert!(last.peak_k > first.peak_k + 1.0, "stack must heat up");
    assert!(
        last.leakage_w > first.leakage_w,
        "leakage must track temperature: first {:.2} W, last {:.2} W",
        first.leakage_w,
        last.leakage_w
    );
    // Final per-unit leakage entries are positive and hotter units leak
    // more than they would at ambient.
    assert!(!report.unit_leakage_w.is_empty());
    for &(unit, w) in &report.unit_leakage_w {
        assert!(w > 0.0, "{unit:?} leaks nothing");
    }
}

#[test]
fn dvfs_ladder_throttles_under_a_tight_cap() {
    let program = parse_asm(&busy_kernel(100_000)).unwrap();
    let (scfg, pcfg, leakage, floorplan, solver) = three_d_setup(12);
    // Cap well below this design's steady-state ceiling: the ladder must
    // step the clock down and the trace must settle at or below the cap
    // (one interval of overshoot allowed while the ladder reacts).
    let cap_k = 350.0;
    let cfg = CoSimConfig::sampled(0.01, 20_000, 50);
    let cosim = CoSimulator::new(
        scfg,
        pcfg,
        leakage,
        &floorplan,
        solver,
        Box::new(DvfsLadder::new(cap_k)),
        cfg,
        &program,
    );
    let report = cosim.run().unwrap();
    assert!(
        report.throttled_fraction(4) > 0.2,
        "ladder never throttled: {:.2}",
        report.throttled_fraction(4)
    );
    assert!(report.mean_clock_ghz() < 3.93 - 1e-9);
    let tail_peak =
        report.intervals.iter().rev().take(5).map(|s| s.peak_k).fold(f64::NEG_INFINITY, f64::max);
    assert!(tail_peak < cap_k + 3.0, "cap not held: tail peak {tail_peak:.1} K");
}

/// One closed-loop trace under a registry policy, built inside a job of
/// `pool` so the solver's nested fan-out follows the pool's path: a
/// 1-lane pool runs the job inline (nested work goes wide on the global
/// pool), a multi-lane pool marks the job in-flight (nested work runs
/// inline). Comparing the two exercises both solver paths.
fn trace_with_pool(kind: PolicyKind, cap_k: f64, steps: usize, pool: &th_exec::Pool) -> CoSimReport {
    pool.map(&[0], |_| {
        let program = parse_asm(&busy_kernel(100_000)).unwrap();
        let (scfg, pcfg, leakage, floorplan, solver) = three_d_setup(10);
        let cfg = CoSimConfig::sampled(0.01, 20_000, steps);
        CoSimulator::new(
            scfg,
            pcfg,
            leakage,
            &floorplan,
            solver,
            kind.build(cap_k),
            cfg,
            &program,
        )
        .run()
        .unwrap()
    })
    .pop()
    .unwrap()
}

#[test]
fn fetch_throttle_holds_the_cap_without_touching_the_clock() {
    let cap_k = 350.0;
    let report = trace_with_pool(PolicyKind::Fetch, cap_k, 50, th_exec::pool());
    // The throttle must engage: a meaningful fraction of intervals run
    // below the nominal fetch width...
    assert!(
        report.throttled_fraction(4) > 0.2,
        "fetch throttle never engaged: {:.2}",
        report.throttled_fraction(4)
    );
    assert!(report.intervals.iter().any(|s| s.fetch_width < 4), "width never reduced");
    // ...while the clock domain stays untouched (that is DVFS's knob).
    for s in &report.intervals {
        assert!((s.clock_ghz - 3.93).abs() < 1e-12, "fetch throttle moved the clock");
    }
    // And the trace must settle at or below the cap once the controller
    // has reacted (one interval of overshoot allowed, as for DVFS).
    let tail_peak =
        report.intervals.iter().rev().take(5).map(|s| s.peak_k).fold(f64::NEG_INFINITY, f64::max);
    assert!(tail_peak < cap_k + 3.0, "cap not held: tail peak {tail_peak:.1} K");
}

#[test]
fn herding_aware_holds_the_cap_with_both_actuators_available() {
    let cap_k = 350.0;
    let report = trace_with_pool(PolicyKind::Herding, cap_k, 50, th_exec::pool());
    assert!(
        report.throttled_fraction(4) > 0.2,
        "hybrid never throttled: {:.2}",
        report.throttled_fraction(4)
    );
    let tail_peak =
        report.intervals.iter().rev().take(5).map(|s| s.peak_k).fold(f64::NEG_INFINITY, f64::max);
    assert!(tail_peak < cap_k + 3.0, "cap not held: tail peak {tail_peak:.1} K");
    // The hybrid picks its actuator by hotspot die, so at least one of
    // the two knobs must have moved off nominal.
    let moved_clock = report.intervals.iter().any(|s| s.clock_ghz < 3.93 - 1e-9);
    let moved_fetch = report.intervals.iter().any(|s| s.fetch_width < 4);
    assert!(moved_clock || moved_fetch, "neither actuator engaged");
}

#[test]
fn fetch_and_herding_traces_are_bit_identical_across_thread_counts() {
    for kind in [PolicyKind::Fetch, PolicyKind::Herding] {
        let seq = trace_with_pool(kind, 350.0, 20, &th_exec::Pool::new(1));
        let par = trace_with_pool(kind, 350.0, 20, &th_exec::Pool::new(4));
        assert_eq!(seq.intervals.len(), par.intervals.len(), "{}: interval counts", kind.name());
        for (i, (a, b)) in seq.intervals.iter().zip(&par.intervals).enumerate() {
            assert_eq!(a.committed, b.committed, "{} interval {i}: committed", kind.name());
            assert_eq!(a.cycles, b.cycles, "{} interval {i}: cycles", kind.name());
            assert_eq!(a.fetch_width, b.fetch_width, "{} interval {i}: fetch", kind.name());
            for (field, x, y) in [
                ("t_s", a.t_s, b.t_s),
                ("peak_k", a.peak_k, b.peak_k),
                ("clock_ghz", a.clock_ghz, b.clock_ghz),
                ("dynamic_w", a.dynamic_w, b.dynamic_w),
                ("clock_w", a.clock_w, b.clock_w),
                ("leakage_w", a.leakage_w, b.leakage_w),
            ] {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{} interval {i}: {field} differs: {x} vs {y}",
                    kind.name()
                );
            }
            for (d, (x, y)) in a.die_peak_k.iter().zip(&b.die_peak_k).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "{} interval {i}: die {d}", kind.name());
            }
        }
    }
}

#[test]
fn interval_chopping_is_statistically_invisible() {
    let program = parse_asm(&busy_kernel(4_000)).unwrap();
    let cfg = SimConfig::three_d(3.93);

    let mut oneshot = SimSession::new(cfg, &program);
    oneshot.run_interval(u64::MAX / 2).unwrap();
    assert!(oneshot.finished());

    let mut chopped = SimSession::new(cfg, &program);
    while !chopped.run_interval(1_000).unwrap() {}

    assert_eq!(oneshot.cycle(), chopped.cycle());
    assert_eq!(oneshot.stats(), chopped.stats(), "chopping changed the statistics");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// After the workload halts (no restart, power gated), every
    /// subsequent interval is strictly cooler and the stack relaxes
    /// toward ambient.
    #[test]
    fn zero_activity_intervals_cool_monotonically_toward_ambient(
        iters in 200u64..2_000,
        interval_ms in 5.0f64..20.0,
    ) {
        let program = parse_asm(&busy_kernel(iters)).unwrap();
        let (scfg, pcfg, leakage, floorplan, solver) = three_d_setup(8);
        let mut cfg = CoSimConfig::sampled(interval_ms * 1e-3, 400_000, 40);
        cfg.restart = false; // run to halt, then cool
        let cosim = CoSimulator::new(
            scfg, pcfg, leakage, &floorplan, solver, Box::new(NoDtm), cfg, &program,
        );
        let report = cosim.run().unwrap();

        // Find the gated tail: intervals with zero activity and zero power.
        let idle_from = report
            .intervals
            .iter()
            .position(|s| s.cycles == 0)
            .expect("workload must halt within the trace");
        prop_assert!(idle_from >= 1, "first interval must execute something");
        let tail = &report.intervals[idle_from..];
        prop_assert!(tail.len() >= 10, "need a cool-down tail to observe");
        let mut prev = report.intervals[idle_from - 1].peak_k;
        for s in tail {
            prop_assert!(s.dynamic_w == 0.0 && s.clock_w == 0.0 && s.leakage_w == 0.0,
                "gated interval still burns power");
            prop_assert!(s.peak_k <= prev + 1e-9,
                "cool-down not monotone: {} after {}", s.peak_k, prev);
            prop_assert!(s.peak_k >= AMBIENT_K - 1e-6, "cooled below ambient");
            prev = s.peak_k;
        }
        // The tail spans >= 10 intervals of >= 5 ms against a package time
        // constant of tens of ms: the stack must have shed most of its
        // excess heat.
        let first_excess = (report.intervals[idle_from - 1].peak_k - AMBIENT_K).max(1e-12);
        let last_excess = tail.last().unwrap().peak_k - AMBIENT_K;
        prop_assert!(
            last_excess < 0.5 * first_excess,
            "stack barely cooled: {last_excess:.3} K excess of {first_excess:.3} K"
        );
    }
}
