//! # Interval-coupled performance/power/thermal co-simulation.
//!
//! The one-shot pipeline (run the cycle simulator to completion, price
//! one average power number, solve one steady-state map) never lets the
//! simulator *see* a temperature: power does not react to program phases
//! and DTM throttles against a constant. This crate closes the loop the
//! way interval-coupled simulators like CoMeT do, advancing the whole
//! stack in lockstep intervals:
//!
//! 1. **Perform** — run the `th-sim` pipeline ([`th_sim::SimSession`])
//!    for the interval's cycle budget and take the [`th_sim::SimStats`]
//!    activity *delta* for just that interval.
//! 2. **Price** — convert the delta to per-unit dynamic power
//!    (`th-power`), add the temperature-dependent leakage
//!    ([`th_power::LeakageModel`]) evaluated at each block's temperature
//!    from the *previous* interval, and rasterise everything onto
//!    per-die [`th_thermal::PowerGrid`]s.
//! 3. **Heat** — advance `th-thermal`'s implicit-Euler
//!    [`th_thermal::TransientSolver`] by the interval's wall-clock time.
//! 4. **React** — feed the solved per-die / per-block temperatures to a
//!    pluggable [`DtmPolicy`], whose decision (clock, fetch width)
//!    applies to the *next* interval.
//!
//! The sampled-execution contract: each interval simulates
//! `slice_cycles` pipeline cycles and holds the resulting power for
//! `interval_s` seconds of thermal time. With `slice_cycles` equal to
//! `interval_s × f` the two clocks agree exactly; smaller slices sample
//! the program (SimPoint-style) so a multi-millisecond thermal window
//! stays affordable. Either way power follows the program's *phases*,
//! because every interval is priced from its own activity delta.
//!
//! Everything is deterministic: the trace depends only on the
//! configuration and program, never on wall-clock time or thread count.

#![deny(missing_docs)]

mod policy;
mod report;

pub use policy::{
    DtmAction, DtmPolicy, DvfsLadder, FetchThrottle, HerdingAware, IntervalObs, NoDtm,
    PolicyKind,
};
pub use report::{CoSimReport, IntervalSample};

use std::time::Instant;
use th_isa::Program;
use th_power::{DieFractionTable, LeakageModel, PowerConfig, PowerModel};
use th_sim::{SimConfig, SimSession};
use th_stack3d::{DieStack, Floorplan, LayerKind, Unit};
use th_thermal::{
    HeatSink, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
    TransientSolver,
};

/// Environment variable overriding the co-simulation interval,
/// **microseconds** of simulated time (e.g. `TH_COSIM_INTERVAL=500`).
pub const INTERVAL_ENV: &str = "TH_COSIM_INTERVAL";

/// The interval override from [`INTERVAL_ENV`], converted to seconds.
/// Malformed or non-positive values warn once on stderr (via
/// [`th_exec::env_knob`]) and leave the configured interval untouched.
pub fn interval_from_env() -> Option<f64> {
    th_exec::env_knob(INTERVAL_ENV, "a positive interval in microseconds", |s| {
        s.trim().parse::<f64>().ok().filter(|us| *us > 0.0)
    })
    .map(|us| us * 1e-6)
}

/// Maps a die-stack layer to its thermal material.
fn material_of(kind: LayerKind) -> Material {
    match kind {
        LayerKind::Silicon | LayerKind::Active(_) => Material::SILICON,
        LayerKind::BondInterface => Material::BOND_INTERFACE,
        LayerKind::Tim => Material::TIM_ALLOY,
        LayerKind::Spreader => Material::COPPER,
    }
}

/// Converts a `th-stack3d` die stack plus floorplan footprint into a
/// thermal [`StackModel`] under the given heat sink.
pub fn stack_thermal_model(
    stack: &DieStack,
    floorplan: &Floorplan,
    sink: HeatSink,
) -> StackModel {
    let layers = stack
        .layers()
        .iter()
        .map(|l| {
            let material = material_of(l.kind);
            match l.kind {
                LayerKind::Active(die) => {
                    ModelLayer::active(l.thickness_um * 1e-6, material, die)
                }
                _ => ModelLayer::passive(l.thickness_um * 1e-6, material),
            }
        })
        .collect();
    StackModel::new(floorplan.width_mm() * 1e-3, floorplan.height_mm() * 1e-3, layers, sink)
}

/// Interval structure of a co-simulation run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoSimConfig {
    /// Thermal time advanced per interval, seconds.
    pub interval_s: f64,
    /// Pipeline cycles simulated per interval (the sampled-execution
    /// budget; see the crate docs for the contract).
    pub slice_cycles: u64,
    /// Number of intervals to run.
    pub steps: usize,
    /// Loop the workload (warm restart) whenever it halts, so activity
    /// covers the whole thermal window.
    pub restart: bool,
    /// When the workload has halted and `restart` is off, paint zero
    /// power (clock and leakage included) for intervals with no activity
    /// — models power-gating the finished chip, and gives cool-down
    /// traces a true zero-power tail. The interval the workload halts in
    /// still prices its partial activity.
    pub power_gate_when_done: bool,
    /// Cores on the chip; the single simulated core's activity is
    /// replicated this many times (the dual-core methodology of §4).
    pub chip_cores: usize,
}

impl CoSimConfig {
    /// Sampled-execution intervals: each interval runs `slice_cycles` of
    /// pipeline time and advances the thermal solver `interval_s`
    /// seconds. The workload loops and a finished chip is power-gated.
    pub fn sampled(interval_s: f64, slice_cycles: u64, steps: usize) -> CoSimConfig {
        CoSimConfig {
            interval_s,
            slice_cycles,
            steps,
            restart: true,
            power_gate_when_done: true,
            chip_cores: 2,
        }
    }

    /// Cycle-exact intervals at `clock_ghz`: the slice covers the full
    /// interval (`interval_s × f` cycles), so simulated and thermal time
    /// advance together.
    pub fn full_speed(interval_s: f64, clock_ghz: f64, steps: usize) -> CoSimConfig {
        let slice = (interval_s * clock_ghz * 1e9).round().max(1.0) as u64;
        CoSimConfig::sampled(interval_s, slice, steps)
    }

    /// Applies the [`INTERVAL_ENV`] override, keeping the slice-to-
    /// interval ratio (sampling density) fixed.
    pub fn apply_env(mut self) -> CoSimConfig {
        if let Some(s) = interval_from_env() {
            let density = self.slice_cycles as f64 / self.interval_s;
            self.interval_s = s;
            self.slice_cycles = (density * s).round().max(1.0) as u64;
        }
        self
    }
}

/// Per-placement painting geometry, precomputed once.
struct PaintSlot {
    unit: Unit,
    die: usize,
    /// Rect in metres: (x0, y0, x1, y1).
    rect_m: (f64, f64, f64, f64),
    /// Whether the placement is core-private (carries half the chip-level
    /// unit power).
    core_private: bool,
    /// This placement's share of the unit type's total floorplan area —
    /// the leakage distribution weight.
    area_share: f64,
}

/// The coupled simulator: one pipeline, one power model, one thermal
/// solver, one DTM policy, advanced in lockstep intervals.
pub struct CoSimulator<'a> {
    session: SimSession,
    program: &'a Program,
    model: PowerModel,
    pcfg: PowerConfig,
    leakage: LeakageModel,
    transient: TransientSolver,
    policy: Box<dyn DtmPolicy>,
    cfg: CoSimConfig,
    slots: Vec<PaintSlot>,
    dies: usize,
    grid: (usize, usize, f64, f64),
    nominal_ghz: f64,
    nominal_fetch_width: usize,
    /// Per-unit peak temperatures after the last interval (drives the
    /// next interval's leakage). Starts at ambient.
    unit_peaks_k: Vec<(Unit, f64)>,
    sim_wall_s: f64,
    solver_wall_s: f64,
}

impl<'a> CoSimulator<'a> {
    /// Assembles the loop. `solver` must carry one active layer per
    /// floorplan die (see [`stack_thermal_model`]); `rows`/`cols` of the
    /// power grids are taken from it.
    // One argument per coupled model: the constructor IS the wiring
    // diagram, and a config struct would obscure it.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        sim_cfg: SimConfig,
        power_cfg: PowerConfig,
        leakage: LeakageModel,
        floorplan: &Floorplan,
        solver: SteadySolver,
        policy: Box<dyn DtmPolicy>,
        cfg: CoSimConfig,
        program: &'a Program,
    ) -> CoSimulator<'a> {
        assert!(cfg.interval_s > 0.0, "interval must be positive");
        assert!(cfg.chip_cores >= 1, "at least one core");
        let dies = floorplan.dies();
        let (w_m, h_m) = (floorplan.width_mm() * 1e-3, floorplan.height_mm() * 1e-3);
        let (rows, cols) = solver.resolution();

        // Per-unit total areas for the leakage distribution weights.
        let mut unit_area: Vec<(Unit, f64)> =
            Unit::all().iter().map(|u| (*u, 0.0)).collect();
        for p in floorplan.placements() {
            if let Some(slot) = unit_area.iter_mut().find(|(u, _)| *u == p.unit) {
                slot.1 += p.rect.area();
            }
        }
        let slots = floorplan
            .placements()
            .iter()
            .map(|p| {
                let total = unit_area
                    .iter()
                    .find(|(u, _)| *u == p.unit)
                    .map_or(0.0, |(_, a)| *a);
                let r = p.rect;
                PaintSlot {
                    unit: p.unit,
                    die: p.die,
                    rect_m: (
                        r.x * 1e-3,
                        r.y * 1e-3,
                        (r.x + r.w) * 1e-3,
                        (r.y + r.h) * 1e-3,
                    ),
                    core_private: p.core.is_some(),
                    area_share: if total > 0.0 { r.area() / total } else { 0.0 },
                }
            })
            .collect();

        let transient = TransientSolver::from_ambient(solver);
        let nominal_ghz = sim_cfg.clock_ghz;
        let nominal_fetch_width = sim_cfg.core.fetch_width;
        let mut cosim = CoSimulator {
            session: SimSession::new(sim_cfg, program),
            program,
            model: PowerModel::new(),
            pcfg: power_cfg,
            leakage,
            transient,
            policy,
            cfg,
            slots,
            dies,
            grid: (rows, cols, w_m, h_m),
            nominal_ghz,
            nominal_fetch_width,
            unit_peaks_k: Vec::new(),
            sim_wall_s: 0.0,
            solver_wall_s: 0.0,
        };
        cosim.unit_peaks_k = cosim.read_unit_peaks();
        cosim
    }

    /// The chip-level clock-network power at the current clock, watts.
    fn clock_network_w(&self) -> f64 {
        self.pcfg.chip_clock_power_2d_w * (self.pcfg.clock_ghz / 2.66)
            * if self.pcfg.three_d { self.pcfg.clock_3d_factor } else { 1.0 }
    }

    /// Peak temperature inside each unit's footprint (max over cores and
    /// dies), from the live solver field. Clock excluded: it covers whole
    /// dies and owns no hotspot.
    fn read_unit_peaks(&self) -> Vec<(Unit, f64)> {
        let view = self.transient.view();
        let mut peaks = Vec::new();
        for &unit in Unit::all() {
            if unit == Unit::Clock {
                continue;
            }
            let mut peak = f64::NEG_INFINITY;
            for s in self.slots.iter().filter(|s| s.unit == unit) {
                if let Some(layer) = view.layer_of_power_index(s.die) {
                    let (x0, y0, x1, y1) = s.rect_m;
                    peak = peak.max(view.max_in_rect(layer, x0, y0, x1, y1));
                }
            }
            if peak.is_finite() {
                peaks.push((unit, peak));
            }
        }
        peaks
    }

    fn unit_temp(&self, unit: Unit) -> f64 {
        self.unit_peaks_k
            .iter()
            .find(|(u, _)| *u == unit)
            .map_or(th_thermal::AMBIENT_K, |(_, t)| *t)
    }

    /// Advances one interval and returns its sample.
    ///
    /// # Errors
    ///
    /// A trap from the pipeline or a thermal-solver convergence failure,
    /// as a message.
    pub fn step(&mut self) -> Result<IntervalSample, String> {
        // 1. Perform: run the pipeline for the slice budget, looping the
        // workload across halts if configured.
        let snapshot = self.session.stats().snapshot();
        let sim_t0 = Instant::now();
        let target = self.session.cycle().saturating_add(self.cfg.slice_cycles.max(1));
        while self.session.cycle() < target {
            let before = self.session.cycle();
            let finished = self
                .session
                .run_interval(target - before)
                .map_err(|t| format!("pipeline trap: {t:?}"))?;
            if !finished {
                break; // budget exhausted
            }
            if !self.cfg.restart {
                break;
            }
            if self.session.cycle() == before {
                return Err("workload halts without consuming cycles; cannot loop".into());
            }
            self.session.restart(self.program);
        }
        self.sim_wall_s += sim_t0.elapsed().as_secs_f64();
        let delta = self.session.stats().delta(&snapshot);

        // 2. Price: dynamic power from this interval's activity delta
        // (replicated per core), leakage from the previous interval's
        // block temperatures.
        let mut chip = delta.clone();
        for _ in 1..self.cfg.chip_cores {
            chip.merge(&delta);
        }
        self.pcfg.clock_ghz = self.session.config().clock_ghz;
        let gated = delta.cycles == 0
            && self.session.finished()
            && !self.cfg.restart
            && self.cfg.power_gate_when_done;
        let breakdown = if delta.cycles > 0 && !gated {
            Some(self.model.compute(&chip, delta.cycles, &self.pcfg))
        } else {
            None
        };
        let clock_w = if gated { 0.0 } else { self.clock_network_w() };
        let dynamic_w = breakdown.as_ref().map_or(0.0, |b| b.dynamic_w());
        let mut leakage_w = 0.0;

        let (rows, cols, w_m, h_m) = self.grid;
        let mut grids: Vec<PowerGrid> =
            (0..self.dies).map(|_| PowerGrid::new(rows, cols, w_m, h_m)).collect();
        // One fraction table per interval: measured ledger rows (or the
        // modeled reconstruction) are resolved once, not per paint slot.
        let table = DieFractionTable::new(&chip, self.model.energies(), &self.pcfg);
        for s in &self.slots {
            let fractions = table.fractions(s.unit);
            let unit_w = match (&breakdown, s.unit) {
                (Some(b), Unit::Clock) => b.clock_w,
                (Some(b), u) => b.unit_w(u),
                (None, Unit::Clock) => clock_w,
                (None, _) => 0.0,
            };
            let share = if s.core_private { 0.5 } else { 1.0 };
            let mut watts = unit_w * share * fractions[s.die];
            if !gated && s.unit != Unit::Clock {
                // Leakage burns where the block sits, scaled by how hot
                // the block ran last interval.
                let block_leak =
                    self.leakage.leakage_w(s.unit, self.unit_temp(s.unit)) * s.area_share;
                leakage_w += block_leak;
                watts += block_leak;
            }
            let (x0, y0, x1, y1) = s.rect_m;
            grids[s.die].paint_rect(x0, y0, x1, y1, watts);
        }

        // 3. Heat: one implicit-Euler step of the interval's length.
        let solve_t0 = Instant::now();
        self.transient
            .step(&grids, self.cfg.interval_s, &SolveOptions::default())
            .map_err(|e| e.to_string())?;
        self.solver_wall_s += solve_t0.elapsed().as_secs_f64();

        let view = self.transient.view();
        let peak_k = self.transient.peak_k();
        let die_peak_k: Vec<f64> = (0..self.dies)
            .map(|d| {
                view.layer_of_power_index(d)
                    .map_or(f64::NEG_INFINITY, |layer| view.layer_max(layer))
            })
            .collect();
        self.unit_peaks_k = self.read_unit_peaks();

        let sample = IntervalSample {
            t_s: self.transient.elapsed_s(),
            peak_k,
            die_peak_k,
            clock_ghz: self.pcfg.clock_ghz,
            fetch_width: self.session.config().core.fetch_width,
            committed: delta.committed,
            cycles: delta.cycles,
            dynamic_w,
            clock_w,
            leakage_w,
        };

        // 4. React: the policy's decision applies to the next interval.
        let obs = IntervalObs {
            t_s: sample.t_s,
            peak_k,
            die_peak_k: &sample.die_peak_k,
            unit_peaks_k: &self.unit_peaks_k,
            clock_ghz: sample.clock_ghz,
            fetch_width: sample.fetch_width,
            nominal_ghz: self.nominal_ghz,
            nominal_fetch_width: self.nominal_fetch_width,
            ipc: sample.ipc(),
        };
        let action = self.policy.decide(&obs);
        if let Some(ghz) = action.clock_ghz {
            self.session.set_clock_ghz(ghz.max(0.1));
        }
        if let Some(w) = action.fetch_width {
            self.session.set_fetch_width(w);
        }

        Ok(sample)
    }

    /// Runs all configured intervals and packages the report.
    ///
    /// # Errors
    ///
    /// Propagates the first failing interval's message.
    pub fn run(mut self) -> Result<CoSimReport, String> {
        let mut intervals = Vec::with_capacity(self.cfg.steps);
        for _ in 0..self.cfg.steps {
            intervals.push(self.step()?);
        }
        let unit_leakage_w = self
            .unit_peaks_k
            .iter()
            .map(|(u, t)| (*u, self.leakage.leakage_w(*u, *t)))
            .collect();
        // Measured vertical split over the whole run's cumulative ledger
        // (fractions are scale-invariant, so one core's ledger stands in
        // for the chip's).
        let table =
            DieFractionTable::new(self.session.stats(), self.model.energies(), &self.pcfg);
        let unit_top_die = Unit::all()
            .iter()
            .filter(|&&u| u != Unit::Clock)
            .map(|&u| (u, table.fractions(u)[0]))
            .collect();
        Ok(CoSimReport {
            policy: self.policy.name().to_string(),
            nominal_ghz: self.nominal_ghz,
            intervals,
            unit_peaks_k: self.unit_peaks_k,
            unit_leakage_w,
            unit_top_die,
            sim_wall_s: self.sim_wall_s,
            solver_wall_s: self.solver_wall_s,
        })
    }
}
