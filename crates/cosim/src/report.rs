//! Co-simulation output: the per-interval time series and summaries.

use std::fmt;
use th_stack3d::Unit;

/// One interval of the co-simulation trace.
#[derive(Clone, Debug, PartialEq)]
pub struct IntervalSample {
    /// Simulated time at the end of the interval, seconds.
    pub t_s: f64,
    /// Hottest temperature anywhere in the stack, kelvin.
    pub peak_k: f64,
    /// Peak temperature per die (index 0 = adjacent to the heat sink).
    pub die_peak_k: Vec<f64>,
    /// Clock the interval ran at, GHz.
    pub clock_ghz: f64,
    /// Fetch width the interval ran at.
    pub fetch_width: usize,
    /// Instructions committed this interval (per core).
    pub committed: u64,
    /// Cycles simulated this interval (per core).
    pub cycles: u64,
    /// Chip dynamic power over the interval, watts.
    pub dynamic_w: f64,
    /// Clock-network power, watts.
    pub clock_w: f64,
    /// Chip leakage power (temperature-dependent), watts.
    pub leakage_w: f64,
}

impl IntervalSample {
    /// Per-core IPC over the interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Total chip power over the interval, watts.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.clock_w + self.leakage_w
    }
}

/// The full co-simulation result: the interval time series plus the final
/// thermal/leakage state.
#[derive(Clone, Debug)]
pub struct CoSimReport {
    /// The DTM policy that ran ("none", "dvfs", ...).
    pub policy: String,
    /// The design's nominal clock, GHz.
    pub nominal_ghz: f64,
    /// One sample per interval, in time order.
    pub intervals: Vec<IntervalSample>,
    /// Per-unit peak temperature at the end of the run, kelvin.
    pub unit_peaks_k: Vec<(Unit, f64)>,
    /// Per-unit leakage at the final temperatures, watts (chip total per
    /// unit; the clock network carries none).
    pub unit_leakage_w: Vec<(Unit, f64)>,
    /// Per-unit top-die power fraction over the whole run, measured from
    /// the cumulative activity ledger (modeled reconstruction if the run
    /// recorded none).
    pub unit_top_die: Vec<(Unit, f64)>,
    /// Wall-clock seconds spent inside the cycle simulator.
    pub sim_wall_s: f64,
    /// Wall-clock seconds spent inside the thermal solver.
    pub solver_wall_s: f64,
}

impl CoSimReport {
    /// Hottest temperature over the whole run.
    pub fn max_peak_k(&self) -> f64 {
        self.intervals.iter().map(|s| s.peak_k).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Simulated seconds covered.
    pub fn duration_s(&self) -> f64 {
        self.intervals.last().map_or(0.0, |s| s.t_s)
    }

    /// Time-weighted mean clock, GHz (intervals are equal-length, so this
    /// is the plain mean).
    pub fn mean_clock_ghz(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|s| s.clock_ghz).sum::<f64>() / self.intervals.len() as f64
    }

    /// Fraction of intervals that ran below the nominal operating point
    /// (clock or fetch width throttled).
    pub fn throttled_fraction(&self, nominal_fetch_width: usize) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let throttled = self
            .intervals
            .iter()
            .filter(|s| {
                s.clock_ghz < self.nominal_ghz - 1e-9 || s.fetch_width < nominal_fetch_width
            })
            .count();
        throttled as f64 / self.intervals.len() as f64
    }

    /// Giga-instructions committed per core over the run.
    pub fn delivered_ginst(&self) -> f64 {
        self.intervals.iter().map(|s| s.committed).sum::<u64>() as f64 / 1e9
    }

    /// Per-core IPC over the whole run.
    pub fn ipc(&self) -> f64 {
        let cycles: u64 = self.intervals.iter().map(|s| s.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            self.intervals.iter().map(|s| s.committed).sum::<u64>() as f64 / cycles as f64
        }
    }

    /// Max/min ratio of per-interval *dynamic* power over intervals that
    /// executed work — the phase-coupling signal (a scaled-constant power
    /// trace has ratio 1).
    pub fn dynamic_power_swing(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in self.intervals.iter().filter(|s| s.cycles > 0) {
            lo = lo.min(s.dynamic_w);
            hi = hi.max(s.dynamic_w);
        }
        if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 {
            1.0
        } else {
            hi / lo
        }
    }

    /// Measured top-die power fraction of one unit over the whole run.
    pub fn top_die_fraction(&self, unit: Unit) -> Option<f64> {
        self.unit_top_die.iter().find(|(u, _)| *u == unit).map(|&(_, f)| f)
    }

    /// Mean chip leakage power across intervals, watts.
    pub fn mean_leakage_w(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals.iter().map(|s| s.leakage_w).sum::<f64>() / self.intervals.len() as f64
    }
}

impl fmt::Display for CoSimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "co-sim [{}]: {:.1} ms in {} intervals, peak {:.1} K, mean clock {:.2} GHz, IPC {:.3}",
            self.policy,
            self.duration_s() * 1e3,
            self.intervals.len(),
            self.max_peak_k(),
            self.mean_clock_ghz(),
            self.ipc(),
        )?;
        writeln!(
            f,
            "  dynamic power swing {:.2}x, mean leakage {:.1} W",
            self.dynamic_power_swing(),
            self.mean_leakage_w(),
        )?;
        for s in &self.intervals {
            writeln!(
                f,
                "  t={:7.2}ms peak={:6.1}K clk={:4.2}GHz fw={} ipc={:5.3} dyn={:6.2}W clkW={:5.2} leak={:5.2}W",
                s.t_s * 1e3,
                s.peak_k,
                s.clock_ghz,
                s.fetch_width,
                s.ipc(),
                s.dynamic_w,
                s.clock_w,
                s.leakage_w,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(clock: f64, fetch: usize, dyn_w: f64) -> IntervalSample {
        IntervalSample {
            t_s: 0.001,
            peak_k: 350.0,
            die_peak_k: vec![350.0; 4],
            clock_ghz: clock,
            fetch_width: fetch,
            committed: 1000,
            cycles: 2000,
            dynamic_w: dyn_w,
            clock_w: 10.0,
            leakage_w: 5.0,
        }
    }

    fn report(samples: Vec<IntervalSample>) -> CoSimReport {
        CoSimReport {
            policy: "none".into(),
            nominal_ghz: 3.93,
            intervals: samples,
            unit_peaks_k: vec![],
            unit_leakage_w: vec![],
            unit_top_die: vec![],
            sim_wall_s: 0.0,
            solver_wall_s: 0.0,
        }
    }

    #[test]
    fn summaries() {
        let r = report(vec![sample(3.93, 4, 10.0), sample(3.73, 4, 25.0), sample(3.93, 2, 20.0)]);
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.throttled_fraction(4) - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.dynamic_power_swing() - 2.5).abs() < 1e-12);
        assert!((r.delivered_ginst() - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = report(vec![]);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.throttled_fraction(4), 0.0);
        assert_eq!(r.dynamic_power_swing(), 1.0);
        assert_eq!(r.duration_s(), 0.0);
    }

    #[test]
    fn idle_intervals_do_not_count_toward_swing() {
        let mut idle = sample(3.93, 4, 0.0);
        idle.cycles = 0;
        let r = report(vec![sample(3.93, 4, 10.0), idle, sample(3.93, 4, 20.0)]);
        assert!((r.dynamic_power_swing() - 2.0).abs() < 1e-12);
    }
}
