//! Pluggable dynamic thermal management (DTM) policies.
//!
//! A policy sees one [`IntervalObs`] per co-simulation interval — the
//! solved temperatures and the operating point that produced them — and
//! returns a [`DtmAction`] that takes effect at the *next* interval. This
//! one-interval actuation lag is deliberate: real DTM controllers read
//! thermal sensors and reprogram clock dividers with exactly this kind of
//! delay, and it keeps every interval's simulation independent of its own
//! thermal outcome.

use th_stack3d::Unit;

/// What a policy observes after an interval's thermal solve.
#[derive(Clone, Copy, Debug)]
pub struct IntervalObs<'a> {
    /// Simulated time at the end of the interval, seconds.
    pub t_s: f64,
    /// Hottest temperature anywhere in the stack, kelvin.
    pub peak_k: f64,
    /// Peak temperature per die (index 0 = adjacent to the heat sink).
    pub die_peak_k: &'a [f64],
    /// Peak temperature per floorplan unit (clock network excluded).
    pub unit_peaks_k: &'a [(Unit, f64)],
    /// Clock the interval ran at, GHz.
    pub clock_ghz: f64,
    /// Fetch width the interval ran at.
    pub fetch_width: usize,
    /// The design's nominal clock, GHz.
    pub nominal_ghz: f64,
    /// The design's nominal fetch width.
    pub nominal_fetch_width: usize,
    /// Per-core IPC over the interval.
    pub ipc: f64,
}

/// Knob changes for the next interval. `None` leaves a knob untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DtmAction {
    /// New core clock, GHz.
    pub clock_ghz: Option<f64>,
    /// New fetch width.
    pub fetch_width: Option<usize>,
}

impl DtmAction {
    /// The no-op action.
    pub fn none() -> DtmAction {
        DtmAction::default()
    }
}

/// A closed-loop thermal controller.
pub trait DtmPolicy {
    /// Short name for reports ("none", "dvfs", ...).
    fn name(&self) -> &'static str;
    /// Observes one interval, decides the next interval's knobs.
    fn decide(&mut self, obs: &IntervalObs<'_>) -> DtmAction;
}

/// No thermal management: the chip always runs at nominal.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoDtm;

impl DtmPolicy for NoDtm {
    fn name(&self) -> &'static str {
        "none"
    }

    fn decide(&mut self, _obs: &IntervalObs<'_>) -> DtmAction {
        DtmAction::none()
    }
}

/// The classic DVFS ladder: step the clock down while the peak exceeds
/// the cap, step it back up toward nominal once there is headroom.
#[derive(Clone, Copy, Debug)]
pub struct DvfsLadder {
    /// Temperature cap, kelvin.
    pub cap_k: f64,
    /// Clock step per interval, GHz.
    pub step_ghz: f64,
    /// Lowest clock the ladder will reach, GHz.
    pub floor_ghz: f64,
    /// Recovery headroom below the cap before stepping back up, kelvin.
    pub headroom_k: f64,
}

impl DvfsLadder {
    /// The default ladder for a given cap: 0.2 GHz steps, 2.0 GHz floor,
    /// 1.5 K recovery headroom.
    pub fn new(cap_k: f64) -> DvfsLadder {
        DvfsLadder { cap_k, step_ghz: 0.2, floor_ghz: 2.0, headroom_k: 1.5 }
    }

    fn step_down(&self, obs: &IntervalObs<'_>) -> Option<f64> {
        let next = (obs.clock_ghz - self.step_ghz).max(self.floor_ghz);
        (next < obs.clock_ghz).then_some(next)
    }

    fn step_up(&self, obs: &IntervalObs<'_>) -> Option<f64> {
        let next = (obs.clock_ghz + self.step_ghz).min(obs.nominal_ghz);
        (next > obs.clock_ghz).then_some(next)
    }
}

impl DtmPolicy for DvfsLadder {
    fn name(&self) -> &'static str {
        "dvfs"
    }

    fn decide(&mut self, obs: &IntervalObs<'_>) -> DtmAction {
        if obs.peak_k > self.cap_k {
            DtmAction { clock_ghz: self.step_down(obs), ..DtmAction::none() }
        } else if obs.peak_k < self.cap_k - self.headroom_k {
            DtmAction { clock_ghz: self.step_up(obs), ..DtmAction::none() }
        } else {
            DtmAction::none()
        }
    }
}

/// Fetch throttling: halve the fetch width while over the cap, double it
/// back toward nominal with headroom. Cuts activity (and therefore
/// dynamic power) without touching the clock domain.
#[derive(Clone, Copy, Debug)]
pub struct FetchThrottle {
    /// Temperature cap, kelvin.
    pub cap_k: f64,
    /// Recovery headroom below the cap, kelvin.
    pub headroom_k: f64,
}

impl FetchThrottle {
    /// Throttle against `cap_k` with the default 1.5 K headroom.
    pub fn new(cap_k: f64) -> FetchThrottle {
        FetchThrottle { cap_k, headroom_k: 1.5 }
    }
}

impl DtmPolicy for FetchThrottle {
    fn name(&self) -> &'static str {
        "fetch"
    }

    fn decide(&mut self, obs: &IntervalObs<'_>) -> DtmAction {
        if obs.peak_k > self.cap_k {
            let next = (obs.fetch_width / 2).max(1);
            DtmAction {
                fetch_width: (next < obs.fetch_width).then_some(next),
                ..DtmAction::none()
            }
        } else if obs.peak_k < self.cap_k - self.headroom_k {
            let next = (obs.fetch_width * 2).min(obs.nominal_fetch_width);
            DtmAction {
                fetch_width: (next > obs.fetch_width).then_some(next),
                ..DtmAction::none()
            }
        } else {
            DtmAction::none()
        }
    }
}

/// Herding-aware hybrid: picks the actuator by *where* the hotspot sits
/// in the stack. Die 0 is bonded to the heat sink; Thermal Herding
/// deliberately steers switching there because its heat has the shortest
/// path out (§2). A violation on die 0 is therefore a transient activity
/// burst that mild fetch throttling absorbs, while a violation on a
/// buried die (1–3) means heat is trapped under the stack and only a
/// frequency/voltage cut moves enough power to help.
#[derive(Clone, Copy, Debug)]
pub struct HerdingAware {
    /// The DVFS ladder used for buried-die violations (and its cap).
    pub dvfs: DvfsLadder,
    /// The fetch throttle used for sink-adjacent violations.
    pub fetch: FetchThrottle,
}

impl HerdingAware {
    /// Hybrid policy against one cap.
    pub fn new(cap_k: f64) -> HerdingAware {
        HerdingAware { dvfs: DvfsLadder::new(cap_k), fetch: FetchThrottle::new(cap_k) }
    }
}

impl DtmPolicy for HerdingAware {
    fn name(&self) -> &'static str {
        "herding"
    }

    fn decide(&mut self, obs: &IntervalObs<'_>) -> DtmAction {
        let cap = self.dvfs.cap_k;
        if obs.peak_k > cap {
            let hottest_die = obs
                .die_peak_k
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map_or(0, |(i, _)| i);
            if hottest_die == 0 && obs.fetch_width > 1 {
                self.fetch.decide(obs)
            } else {
                self.dvfs.decide(obs)
            }
        } else if obs.peak_k < cap - self.dvfs.headroom_k {
            // Recover throughput cheapest-first: fetch width, then clock.
            if obs.fetch_width < obs.nominal_fetch_width {
                self.fetch.decide(obs)
            } else {
                self.dvfs.decide(obs)
            }
        } else {
            DtmAction::none()
        }
    }
}

/// Policy selection by name, for CLI/env plumbing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`NoDtm`].
    None,
    /// [`DvfsLadder`].
    Dvfs,
    /// [`FetchThrottle`].
    Fetch,
    /// [`HerdingAware`].
    Herding,
}

impl PolicyKind {
    /// Parses "none" / "dvfs" / "fetch" / "herding".
    pub fn by_name(name: &str) -> Option<PolicyKind> {
        match name {
            "none" => Some(PolicyKind::None),
            "dvfs" => Some(PolicyKind::Dvfs),
            "fetch" => Some(PolicyKind::Fetch),
            "herding" => Some(PolicyKind::Herding),
            _ => None,
        }
    }

    /// All selectable kinds, for help text.
    pub fn all() -> &'static [PolicyKind] {
        &[PolicyKind::None, PolicyKind::Dvfs, PolicyKind::Fetch, PolicyKind::Herding]
    }

    /// The policy's CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::None => "none",
            PolicyKind::Dvfs => "dvfs",
            PolicyKind::Fetch => "fetch",
            PolicyKind::Herding => "herding",
        }
    }

    /// Instantiates the policy against a temperature cap.
    pub fn build(&self, cap_k: f64) -> Box<dyn DtmPolicy> {
        match self {
            PolicyKind::None => Box::new(NoDtm),
            PolicyKind::Dvfs => Box::new(DvfsLadder::new(cap_k)),
            PolicyKind::Fetch => Box::new(FetchThrottle::new(cap_k)),
            PolicyKind::Herding => Box::new(HerdingAware::new(cap_k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(peak: f64, die_peaks: &[f64; 4], clock: f64, fetch: usize) -> IntervalObs<'_> {
        IntervalObs {
            t_s: 0.0,
            peak_k: peak,
            die_peak_k: die_peaks,
            unit_peaks_k: &[],
            clock_ghz: clock,
            fetch_width: fetch,
            nominal_ghz: 3.93,
            nominal_fetch_width: 4,
            ipc: 1.0,
        }
    }

    #[test]
    fn dvfs_ladder_steps_down_and_recovers() {
        let mut p = DvfsLadder::new(376.0);
        let hot = [380.0; 4];
        let a = p.decide(&obs(380.0, &hot, 3.93, 4));
        assert_eq!(a.clock_ghz, Some(3.73));
        // At the floor, no further cut.
        let a = p.decide(&obs(380.0, &hot, 2.0, 4));
        assert_eq!(a.clock_ghz, None);
        // Cool with headroom: step up, capped at nominal.
        let cool = [360.0; 4];
        let a = p.decide(&obs(360.0, &cool, 3.8, 4));
        assert_eq!(a.clock_ghz, Some(3.93));
        // In the hysteresis band: hold.
        let a = p.decide(&obs(375.5, &[375.5; 4], 3.0, 4));
        assert_eq!(a, DtmAction::none());
    }

    #[test]
    fn fetch_throttle_halves_and_doubles() {
        let mut p = FetchThrottle::new(376.0);
        let a = p.decide(&obs(380.0, &[380.0; 4], 3.93, 4));
        assert_eq!(a.fetch_width, Some(2));
        let a = p.decide(&obs(380.0, &[380.0; 4], 3.93, 1));
        assert_eq!(a.fetch_width, None);
        let a = p.decide(&obs(360.0, &[360.0; 4], 3.93, 2));
        assert_eq!(a.fetch_width, Some(4));
    }

    #[test]
    fn herding_aware_picks_actuator_by_die() {
        let mut p = HerdingAware::new(376.0);
        // Hotspot on the sink-adjacent die: throttle fetch, keep clock.
        let a = p.decide(&obs(380.0, &[380.0, 370.0, 369.0, 368.0], 3.93, 4));
        assert_eq!(a.fetch_width, Some(2));
        assert_eq!(a.clock_ghz, None);
        // Hotspot buried in the stack: cut the clock.
        let a = p.decide(&obs(380.0, &[370.0, 375.0, 378.0, 380.0], 3.93, 4));
        assert_eq!(a.clock_ghz, Some(3.73));
        assert_eq!(a.fetch_width, None);
        // Recovery restores fetch width before clock.
        let a = p.decide(&obs(360.0, &[360.0; 4], 3.73, 2));
        assert_eq!(a.fetch_width, Some(4));
        assert_eq!(a.clock_ghz, None);
    }

    #[test]
    fn policy_kinds_round_trip() {
        for k in PolicyKind::all() {
            assert_eq!(PolicyKind::by_name(k.name()), Some(*k));
            assert_eq!(k.build(376.0).name(), k.name());
        }
        assert_eq!(PolicyKind::by_name("bogus"), None);
    }
}
