//! Cross-module properties of the width machinery, pinned against naive
//! reference models: the PAM's 48-bit upper-match against a full 64-bit
//! address compare, the L1D partial-value encoding against exhaustive
//! reconstruction, and the width memo file against a shadow register
//! file replaying the same write sequence.

use proptest::prelude::*;
use th_width::{
    MemoCheck, PartialAddressMemoizer, UpperEncoding, Width, WidthMemoFile, WidthPolicy,
};

/// One LSQ event for the PAM model comparison.
#[derive(Clone, Debug)]
enum PamOp {
    Load(u64),
    Store(u64),
    RecordOnly(u64),
}

/// Mixes far-apart random addresses with same-page neighbours so both
/// match and miss paths are exercised in every sequence.
fn pam_addr() -> impl Strategy<Value = u64> {
    prop_oneof![any::<u64>(), any::<u64>().prop_map(|a| a & 0xffff_ffff)]
}

fn pam_op() -> impl Strategy<Value = PamOp> {
    prop_oneof![
        pam_addr().prop_map(PamOp::Load),
        pam_addr().prop_map(PamOp::Store),
        pam_addr().prop_map(PamOp::RecordOnly),
    ]
}

proptest! {
    /// The memoizer's upper-match bit must agree, event for event, with
    /// a naive model that stores the full 64-bit last-store address and
    /// compares all upper 48 bits — on arbitrary interleavings of
    /// loads, stores, and bare record_store updates.
    #[test]
    fn pam_agrees_with_naive_full_address_compare(
        ops in proptest::collection::vec(pam_op(), 1..200),
    ) {
        let mut pam = PartialAddressMemoizer::new();
        let mut naive_last_store: Option<u64> = None;
        let mut expected_matches = 0u64;
        let mut expected_total = 0u64;
        for op in &ops {
            let broadcast = match op {
                PamOp::Load(a) => Some((*a, pam.broadcast_load(*a))),
                PamOp::Store(a) => Some((*a, pam.broadcast_store(*a))),
                PamOp::RecordOnly(a) => {
                    pam.record_store(*a);
                    None
                }
            };
            if let Some((addr, out)) = broadcast {
                let naive_match =
                    naive_last_store.is_some_and(|last| last >> 16 == addr >> 16);
                prop_assert_eq!(
                    out.upper_match, naive_match,
                    "PAM and naive compare disagree at address {addr:#x}"
                );
                prop_assert_eq!(out.low16, addr as u16, "low 16 bits always broadcast");
                expected_total += 1;
                if naive_match {
                    expected_matches += 1;
                }
            }
            // Both broadcast_store and record_store update the reference.
            match op {
                PamOp::Store(a) | PamOp::RecordOnly(a) => naive_last_store = Some(*a),
                PamOp::Load(_) => {}
            }
        }
        prop_assert_eq!(pam.stats().total(), expected_total);
        prop_assert_eq!(pam.stats().matches, expected_matches);
    }

    /// Every classification must reconstruct the original value from the
    /// low 16 bits alone — or be Explicit, in which case no top-die
    /// encoding could have (the lower dies are genuinely needed).
    #[test]
    fn encoding_round_trips_through_its_two_bit_code(
        value in any::<u64>(),
        addr in any::<u64>(),
    ) {
        let enc = UpperEncoding::classify(value, addr);
        // The stored artifact is the 2-bit code, not the enum: the round
        // trip must survive the array encoding.
        let stored = UpperEncoding::from_code(enc.code());
        prop_assert_eq!(stored, enc);
        match stored.reconstruct(value as u16, addr) {
            Some(v) => {
                prop_assert!(stored.top_die_only());
                prop_assert_eq!(v, value, "{stored} reconstructed the wrong value");
            }
            None => {
                prop_assert_eq!(stored, UpperEncoding::Explicit);
                for cand in
                    [UpperEncoding::Zeros, UpperEncoding::Ones, UpperEncoding::AddrUpper]
                {
                    prop_assert_ne!(
                        cand.reconstruct(value as u16, addr),
                        Some(value),
                        "classify chose Explicit but {cand} would have worked"
                    );
                }
            }
        }
    }

    /// All four 2-bit codes are reachable and each round-trips on a
    /// value constructed to demand exactly that encoding.
    #[test]
    fn all_four_codes_round_trip_on_targeted_values(low in any::<u16>(), page in 1u64..1 << 40) {
        let addr = (page << 16) | 0x8;
        let cases = [
            (low as u64, UpperEncoding::Zeros),
            (!0xffffu64 | low as u64, UpperEncoding::Ones),
            ((addr & !0xffff) | low as u64, UpperEncoding::AddrUpper),
            ((0x5555_5555u64 << 16) | low as u64, UpperEncoding::Explicit),
        ];
        for (value, expected) in cases {
            let enc = UpperEncoding::classify(value, addr);
            // Construction can collide with a denser encoding (e.g. the
            // Explicit pattern when page == 0x5555_5555 makes AddrUpper
            // apply); equality of reconstruction is the real contract.
            if enc == expected {
                prop_assert_eq!(UpperEncoding::from_code(enc.code()), enc);
                if let Some(v) = enc.reconstruct(low, addr) {
                    prop_assert_eq!(v, value);
                }
            }
            match expected {
                // Zeros/Ones constructions are unambiguous: classify must
                // pick exactly them (for page > 0 the address upper bits
                // are neither all-zero nor all-one).
                UpperEncoding::Zeros | UpperEncoding::Ones => {
                    prop_assert_eq!(enc, expected)
                }
                _ => {}
            }
        }
    }
}

/// One register-file event for the memo model comparison.
#[derive(Clone, Debug)]
enum MemoOp {
    Write { entry: u8, value: u64 },
    Force { entry: u8, full: bool },
}

fn memo_op(entries: u8) -> impl Strategy<Value = MemoOp> {
    // Bias values toward the low/full boundary (small positives, small
    // negatives, single high bits) so both widths occur often.
    let value = prop_oneof![
        any::<u64>(),
        (0u64..0x10000).prop_map(|v| v),
        any::<i16>().prop_map(|v| v as i64 as u64),
        (16u32..64).prop_map(|b| 1u64 << b),
    ];
    prop_oneof![
        (0..entries, value).prop_map(|(entry, value)| MemoOp::Write { entry, value }),
        (0..entries, any::<bool>()).prop_map(|(entry, full)| MemoOp::Force { entry, full }),
    ]
}

proptest! {
    /// The memo file must track, per entry, exactly the classification
    /// of the last write (or the last forced width), with untouched
    /// entries staying low — under arbitrary interleaved sequences and
    /// both width policies.
    #[test]
    fn memo_bits_match_a_shadow_register_file(
        ops in proptest::collection::vec(memo_op(16), 0..300),
        sign_extended in any::<bool>(),
    ) {
        let policy =
            if sign_extended { WidthPolicy::SignExtended } else { WidthPolicy::ZeroUpper };
        let mut memo = WidthMemoFile::new(16, policy);
        let mut shadow = [Width::Low; 16];
        for op in &ops {
            match *op {
                MemoOp::Write { entry, value } => {
                    memo.record_write(entry as usize, value);
                    shadow[entry as usize] = policy.classify(value);
                }
                MemoOp::Force { entry, full } => {
                    let width = if full { Width::Full } else { Width::Low };
                    memo.set(entry as usize, width);
                    shadow[entry as usize] = width;
                }
            }
        }
        for (entry, &expected) in shadow.iter().enumerate() {
            prop_assert_eq!(memo.width(entry), expected, "entry {entry} diverged");
            // And the check() outcomes follow directly from the bit.
            let unsafe_read = memo.check(entry, Width::Low) == MemoCheck::Unsafe;
            prop_assert_eq!(unsafe_read, expected == Width::Full);
            prop_assert_ne!(
                memo.check(entry, Width::Full),
                MemoCheck::Unsafe,
                "full prediction can never be unsafe"
            );
        }
    }
}
