//! Saturating counters.

/// An `n`-bit saturating up/down counter (the workhorse of both the width
/// predictor and the branch direction predictor).
///
/// The counter saturates at `0` and `2^bits - 1`; values in the upper half
/// are "taken"/"full-width" depending on the consumer.
///
/// ```
/// use th_width::SatCounter;
/// let mut c = SatCounter::new(2, 1); // 2-bit, weakly-not-taken
/// assert!(!c.is_set());
/// c.inc();
/// assert!(c.is_set());
/// c.dec(); c.dec(); c.dec();
/// assert_eq!(c.value(), 0); // saturated at zero
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u8,
    max: u8,
}

impl SatCounter {
    /// Creates an `bits`-bit counter with the given initial value
    /// (clamped to range).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7.
    pub fn new(bits: u8, initial: u8) -> SatCounter {
        assert!((1..=7).contains(&bits), "counter width {bits} unsupported");
        let max = (1u8 << bits) - 1;
        SatCounter { value: initial.min(max), max }
    }

    /// A 2-bit counter initialised to "weakly set" (value 2).
    pub fn weakly_set() -> SatCounter {
        SatCounter::new(2, 2)
    }

    /// A 2-bit counter initialised to "weakly clear" (value 1).
    pub fn weakly_clear() -> SatCounter {
        SatCounter::new(2, 1)
    }

    /// Current counter value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturation) value.
    pub fn max(self) -> u8 {
        self.max
    }

    /// Whether the counter is in its upper half (the "predict set" region).
    pub fn is_set(self) -> bool {
        self.value > self.max / 2
    }

    /// Increments with saturation.
    pub fn inc(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements with saturation.
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Trains toward `set` (increment when true, decrement when false).
    pub fn train(&mut self, set: bool) {
        if set {
            self.inc();
        } else {
            self.dec();
        }
    }

    /// The most-significant ("direction") bit, as split out by the paper's
    /// partitioned branch-predictor arrays (§3.7).
    pub fn direction_bit(self) -> bool {
        self.is_set()
    }

    /// The least-significant ("hysteresis") bit of a 2-bit counter.
    pub fn hysteresis_bit(self) -> bool {
        self.value & 1 != 0
    }
}

impl Default for SatCounter {
    fn default() -> SatCounter {
        SatCounter::weakly_clear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SatCounter::new(2, 0);
        assert!(!c.is_set());
        c.inc(); // 1
        assert!(!c.is_set());
        c.inc(); // 2
        assert!(c.is_set());
        c.inc(); // 3
        c.inc(); // saturates at 3
        assert_eq!(c.value(), 3);
        c.dec(); // 2
        assert!(c.is_set());
        c.dec(); // 1
        assert!(!c.is_set());
    }

    #[test]
    fn initial_clamped() {
        let c = SatCounter::new(2, 9);
        assert_eq!(c.value(), 3);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn zero_bits_rejected() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    fn direction_and_hysteresis_bits() {
        for v in 0..4u8 {
            let c = SatCounter::new(2, v);
            assert_eq!(c.direction_bit(), v >= 2);
            assert_eq!(c.hysteresis_bit(), v & 1 == 1);
        }
    }

    #[test]
    fn hysteresis_needs_two_flips() {
        // From strongly-set, one contrary outcome must not flip the
        // prediction; two must.
        let mut c = SatCounter::new(2, 3);
        c.train(false);
        assert!(c.is_set());
        c.train(false);
        assert!(!c.is_set());
    }

    proptest! {
        #[test]
        fn never_leaves_range(bits in 1u8..=7, ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut c = SatCounter::new(bits, 0);
            for op in ops {
                c.train(op);
                prop_assert!(c.value() <= c.max());
            }
        }

        #[test]
        fn saturation_is_stable(bits in 1u8..=7) {
            let mut c = SatCounter::new(bits, 0);
            for _ in 0..300 { c.inc(); }
            prop_assert_eq!(c.value(), c.max());
            for _ in 0..300 { c.dec(); }
            prop_assert_eq!(c.value(), 0);
        }
    }
}
