//! Low/full width classification of 64-bit values.

use std::fmt;

/// The two value widths the Thermal Herding datapath distinguishes.
///
/// A *low-width* value needs only the 16 bits stored on the top die; a
/// *full-width* value has significant state on the lower three dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Width {
    /// Representable in 16 bits (top die only).
    #[default]
    Low,
    /// Needs more than 16 bits (activity on all four dies).
    Full,
}

impl Width {
    /// Number of dies that switch when a value of this width traverses the
    /// significance-partitioned datapath.
    pub fn active_dies(self) -> usize {
        match self {
            Width::Low => 1,
            Width::Full => crate::DIES,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Width::Low => f.write_str("low"),
            Width::Full => f.write_str("full"),
        }
    }
}

/// How "representable in 16 bits" is defined.
///
/// The paper describes the register-file memoization bit as marking whether
/// "the remaining three die contain non-zero values" (zero upper bits), but
/// its motivating citation counts values representable in ≤16 bits, which
/// for two's-complement integers includes small negatives (upper bits all
/// ones). Both definitions are implemented; [`WidthPolicy::SignExtended`]
/// is the default used by the simulator because the datapath can
/// regenerate a sign-extension as easily as zeros.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WidthPolicy {
    /// Low iff bits 63..16 are all zero.
    ZeroUpper,
    /// Low iff bits 63..16 are all zero or all one (value fits in `i16`
    /// when interpreted signed, or in `u16` unsigned).
    #[default]
    SignExtended,
}

impl WidthPolicy {
    /// Classifies a 64-bit value.
    ///
    /// ```
    /// use th_width::{Width, WidthPolicy};
    /// assert_eq!(WidthPolicy::SignExtended.classify(42), Width::Low);
    /// assert_eq!(WidthPolicy::SignExtended.classify((-5i64) as u64), Width::Low);
    /// assert_eq!(WidthPolicy::ZeroUpper.classify((-5i64) as u64), Width::Full);
    /// assert_eq!(WidthPolicy::SignExtended.classify(1 << 20), Width::Full);
    /// ```
    pub fn classify(self, value: u64) -> Width {
        let upper = value >> crate::BITS_PER_DIE;
        let low = match self {
            WidthPolicy::ZeroUpper => upper == 0,
            WidthPolicy::SignExtended => {
                upper == 0 || (upper == (u64::MAX >> crate::BITS_PER_DIE) && value >> 15 & 1 == 1)
            }
        };
        if low {
            Width::Low
        } else {
            Width::Full
        }
    }

    /// Combined width of an instruction's operand set: full if *any*
    /// operand is full (the whole group must enable the lower dies).
    pub fn classify_all<I: IntoIterator<Item = u64>>(self, values: I) -> Width {
        if values.into_iter().any(|v| self.classify(v) == Width::Full) {
            Width::Full
        } else {
            Width::Low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_upper_policy() {
        let p = WidthPolicy::ZeroUpper;
        assert_eq!(p.classify(0), Width::Low);
        assert_eq!(p.classify(0xffff), Width::Low);
        assert_eq!(p.classify(0x10000), Width::Full);
        assert_eq!(p.classify(u64::MAX), Width::Full);
    }

    #[test]
    fn sign_extended_policy() {
        let p = WidthPolicy::SignExtended;
        assert_eq!(p.classify(0), Width::Low);
        assert_eq!(p.classify(0x7fff), Width::Low);
        assert_eq!(p.classify((-1i64) as u64), Width::Low);
        assert_eq!(p.classify((-32768i64) as u64), Width::Low);
        // 0x8000 zero-extended is low under ZeroUpper but its upper bits are
        // zero while bit 15 is set — still "fits in u16", so Low.
        assert_eq!(p.classify(0x8000), Width::Low);
        assert_eq!(p.classify((-32769i64) as u64), Width::Full);
        assert_eq!(p.classify(0x10000), Width::Full);
    }

    #[test]
    fn active_dies() {
        assert_eq!(Width::Low.active_dies(), 1);
        assert_eq!(Width::Full.active_dies(), 4);
    }

    #[test]
    fn classify_all_is_any_full() {
        let p = WidthPolicy::SignExtended;
        assert_eq!(p.classify_all([1, 2, 3]), Width::Low);
        assert_eq!(p.classify_all([1, 1 << 40]), Width::Full);
        assert_eq!(p.classify_all(std::iter::empty()), Width::Low);
    }

    proptest! {
        #[test]
        fn sign_extended_matches_i16_range(v in any::<i64>()) {
            let w = WidthPolicy::SignExtended.classify(v as u64);
            let fits = i16::try_from(v).is_ok() || u16::try_from(v).is_ok();
            prop_assert_eq!(w == Width::Low, fits);
        }

        #[test]
        fn zero_upper_matches_u16_range(v in any::<u64>()) {
            let w = WidthPolicy::ZeroUpper.classify(v);
            prop_assert_eq!(w == Width::Low, v <= u16::MAX as u64);
        }

        #[test]
        fn low_under_zero_upper_implies_low_under_sign_extended(v in any::<u64>()) {
            if WidthPolicy::ZeroUpper.classify(v) == Width::Low {
                prop_assert_eq!(WidthPolicy::SignExtended.classify(v), Width::Low);
            }
        }
    }
}
