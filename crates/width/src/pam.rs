//! Partial address memoization for the load/store queues (§3.5).

/// Outcome of one LSQ address broadcast under partial address memoization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PamOutcome {
    /// The low 16 address bits that are always broadcast on the top die.
    pub low16: u16,
    /// Whether the upper 48 bits matched the most recent store address
    /// ("we broadcast an extra bit that indicates whether the remaining 48
    /// bits are identical to those of the most recent store address").
    pub upper_match: bool,
}

/// Tracks the most recent store address and classifies each broadcast.
///
/// When `upper_match` is true, the comparison activity stays on the top
/// die; otherwise the lower three dies must participate.
///
/// ```
/// use th_width::PartialAddressMemoizer;
/// let mut pam = PartialAddressMemoizer::new();
/// pam.record_store(0x7fff_0000_1000);
/// // A stack-like load near the last store: upper bits match.
/// assert!(pam.broadcast_load(0x7fff_0000_1040).upper_match);
/// // A heap access far away: full broadcast.
/// assert!(!pam.broadcast_load(0x1234_5678_9000).upper_match);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct PartialAddressMemoizer {
    last_store_upper: Option<u64>,
    stats: PamStats,
}

/// Accumulated PAM statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PamStats {
    /// Broadcasts whose upper 48 bits matched the memoized store address.
    pub matches: u64,
    /// Broadcasts requiring all four dies.
    pub misses: u64,
}

impl PamStats {
    /// Total broadcasts observed.
    pub fn total(&self) -> u64 {
        self.matches + self.misses
    }

    /// Fraction of broadcasts herded to the top die.
    pub fn match_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.matches as f64 / t as f64
        }
    }
}

impl PartialAddressMemoizer {
    const UPPER: u64 = !0xffffu64;

    /// Creates an empty memoizer (no store seen yet: everything misses).
    pub fn new() -> PartialAddressMemoizer {
        PartialAddressMemoizer::default()
    }

    fn classify(&mut self, addr: u64) -> PamOutcome {
        let upper_match = self.last_store_upper == Some(addr & Self::UPPER);
        if upper_match {
            self.stats.matches += 1;
        } else {
            self.stats.misses += 1;
        }
        PamOutcome { low16: addr as u16, upper_match }
    }

    /// Classifies a load-address broadcast against the memoized store
    /// address.
    pub fn broadcast_load(&mut self, addr: u64) -> PamOutcome {
        self.classify(addr)
    }

    /// Classifies a store-address broadcast, then memoizes this store as
    /// the new reference.
    pub fn broadcast_store(&mut self, addr: u64) -> PamOutcome {
        let out = self.classify(addr);
        self.record_store(addr);
        out
    }

    /// Updates the memoized "most recent store address" without counting a
    /// broadcast.
    pub fn record_store(&mut self, addr: u64) {
        self.last_store_upper = Some(addr & Self::UPPER);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PamStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_memoizer_misses() {
        let mut pam = PartialAddressMemoizer::new();
        assert!(!pam.broadcast_load(0x1000).upper_match);
    }

    #[test]
    fn stack_locality_herds_broadcasts() {
        let mut pam = PartialAddressMemoizer::new();
        let stack = 0x7fff_ffff_0000u64;
        pam.record_store(stack);
        // 64 KiB window shares the upper 48 bits.
        for off in (0..0x10000u64).step_by(8) {
            assert!(pam.broadcast_load(stack & !0xffff | off).upper_match);
        }
        assert_eq!(pam.stats().misses, 0);
    }

    #[test]
    fn store_updates_reference() {
        let mut pam = PartialAddressMemoizer::new();
        pam.record_store(0x1_0000);
        assert!(!pam.broadcast_store(0xaaaa_0000_0000).upper_match); // miss, then memoized
        assert!(pam.broadcast_load(0xaaaa_0000_1234).upper_match);
    }

    #[test]
    fn low16_is_always_broadcast() {
        let mut pam = PartialAddressMemoizer::new();
        assert_eq!(pam.broadcast_load(0xdead_beef_cafe).low16, 0xcafe);
    }

    #[test]
    fn match_rate() {
        let mut pam = PartialAddressMemoizer::new();
        pam.record_store(0);
        pam.broadcast_load(8); // match
        pam.broadcast_load(1 << 20); // miss
        assert!((pam.stats().match_rate() - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn match_iff_upper_bits_equal(store in any::<u64>(), load in any::<u64>()) {
            let mut pam = PartialAddressMemoizer::new();
            pam.record_store(store);
            let out = pam.broadcast_load(load);
            prop_assert_eq!(out.upper_match, store >> 16 == load >> 16);
            prop_assert_eq!(out.low16, load as u16);
        }

        #[test]
        fn stats_total_counts_broadcasts(addrs in proptest::collection::vec(any::<u64>(), 0..100)) {
            let mut pam = PartialAddressMemoizer::new();
            for (i, a) in addrs.iter().enumerate() {
                if i % 2 == 0 { pam.broadcast_load(*a); } else { pam.broadcast_store(*a); }
            }
            prop_assert_eq!(pam.stats().total(), addrs.len() as u64);
        }
    }
}
