//! The L1 data cache's two-bit partial value encoding (§3.6).

use std::fmt;

/// How the upper 48 bits of a cached 64-bit word are represented on the
/// top die.
///
/// "Instead of storing a single width memoization bit, we store two bits
/// that encode the upper 48 bits" (§3.6). Three of the four encodings let a
/// load complete without touching the lower three dies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UpperEncoding {
    /// `00` — upper 48 bits are all zeros.
    Zeros,
    /// `01` — upper 48 bits are all ones (small negative numbers).
    Ones,
    /// `10` — upper 48 bits equal the upper 48 bits of the referencing
    /// address (heap pointers to nearby objects).
    AddrUpper,
    /// `11` — not trivially encodable; must be read from the lower dies.
    Explicit,
}

impl UpperEncoding {
    /// Bit mask of the upper 48 bits.
    const UPPER: u64 = !0xffffu64;

    /// Chooses the densest encoding for `value` when accessed at address
    /// `addr`.
    ///
    /// ```
    /// use th_width::UpperEncoding;
    /// assert_eq!(UpperEncoding::classify(42, 0x1000), UpperEncoding::Zeros);
    /// assert_eq!(UpperEncoding::classify((-7i64) as u64, 0x1000), UpperEncoding::Ones);
    /// // A pointer into the same region as the referencing address:
    /// assert_eq!(UpperEncoding::classify(0x7fff_0000_1234, 0x7fff_0000_5678),
    ///            UpperEncoding::AddrUpper);
    /// assert_eq!(UpperEncoding::classify(0x0123_4567_89ab_cdef, 0x1000),
    ///            UpperEncoding::Explicit);
    /// ```
    pub fn classify(value: u64, addr: u64) -> UpperEncoding {
        let upper = value & Self::UPPER;
        if upper == 0 {
            UpperEncoding::Zeros
        } else if upper == Self::UPPER {
            UpperEncoding::Ones
        } else if upper == addr & Self::UPPER {
            UpperEncoding::AddrUpper
        } else {
            UpperEncoding::Explicit
        }
    }

    /// Reconstructs the full 64-bit value from the low 16 bits, this
    /// encoding, and the referencing address. Returns `None` for
    /// [`UpperEncoding::Explicit`] (the lower dies must be read).
    pub fn reconstruct(self, low16: u16, addr: u64) -> Option<u64> {
        let low = low16 as u64;
        match self {
            UpperEncoding::Zeros => Some(low),
            UpperEncoding::Ones => Some(Self::UPPER | low),
            UpperEncoding::AddrUpper => Some((addr & Self::UPPER) | low),
            UpperEncoding::Explicit => None,
        }
    }

    /// Whether a load with this encoding completes from the top die alone.
    pub fn top_die_only(self) -> bool {
        self != UpperEncoding::Explicit
    }

    /// The two-bit code stored in the array.
    pub fn code(self) -> u8 {
        match self {
            UpperEncoding::Zeros => 0b00,
            UpperEncoding::Ones => 0b01,
            UpperEncoding::AddrUpper => 0b10,
            UpperEncoding::Explicit => 0b11,
        }
    }

    /// Decodes a two-bit code.
    ///
    /// # Panics
    ///
    /// Panics if `code > 3`.
    pub fn from_code(code: u8) -> UpperEncoding {
        match code {
            0b00 => UpperEncoding::Zeros,
            0b01 => UpperEncoding::Ones,
            0b10 => UpperEncoding::AddrUpper,
            0b11 => UpperEncoding::Explicit,
            _ => panic!("invalid partial-value code {code}"),
        }
    }
}

impl fmt::Display for UpperEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UpperEncoding::Zeros => "zeros",
            UpperEncoding::Ones => "ones",
            UpperEncoding::AddrUpper => "addr-upper",
            UpperEncoding::Explicit => "explicit",
        };
        f.write_str(s)
    }
}

/// Distribution of partial-value encodings observed by the data cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncodingStats {
    /// Count per encoding, indexed by [`UpperEncoding::code`].
    pub counts: [u64; 4],
}

impl EncodingStats {
    /// Records one observation.
    pub fn record(&mut self, enc: UpperEncoding) {
        self.counts[enc.code() as usize] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of accesses servable from the top die alone.
    pub fn top_die_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (total - self.counts[UpperEncoding::Explicit.code() as usize]) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classify_priorities() {
        // Zero value at an address whose upper bits are zero: Zeros wins
        // (it's checked first and is the cheapest to reconstruct).
        assert_eq!(UpperEncoding::classify(0x12, 0x34), UpperEncoding::Zeros);
        assert_eq!(UpperEncoding::classify(u64::MAX, 0x34), UpperEncoding::Ones);
    }

    #[test]
    fn code_roundtrip() {
        for code in 0..4u8 {
            assert_eq!(UpperEncoding::from_code(code).code(), code);
        }
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_code_panics() {
        let _ = UpperEncoding::from_code(4);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = EncodingStats::default();
        s.record(UpperEncoding::Zeros);
        s.record(UpperEncoding::Zeros);
        s.record(UpperEncoding::Explicit);
        assert_eq!(s.total(), 3);
        assert!((s.top_die_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn reconstruct_inverts_classify(value in any::<u64>(), addr in any::<u64>()) {
            let enc = UpperEncoding::classify(value, addr);
            match enc.reconstruct(value as u16, addr) {
                Some(v) => prop_assert_eq!(v, value),
                None => prop_assert_eq!(enc, UpperEncoding::Explicit),
            }
        }

        #[test]
        fn explicit_only_when_necessary(value in any::<u64>(), addr in any::<u64>()) {
            // If any non-explicit encoding could reconstruct the value,
            // classify must not pick Explicit.
            let enc = UpperEncoding::classify(value, addr);
            if enc == UpperEncoding::Explicit {
                for cand in [UpperEncoding::Zeros, UpperEncoding::Ones, UpperEncoding::AddrUpper] {
                    prop_assert_ne!(cand.reconstruct(value as u16, addr), Some(value));
                }
            }
        }
    }
}
