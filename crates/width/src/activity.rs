//! Per-die switching-activity accounting.

use crate::class::Width;
use crate::DIES;

/// Counts switching events per die of the 3D stack.
///
/// Die 0 is the **top** die (adjacent to the heat sink); die `DIES-1` is the
/// bottom. Thermal Herding's goal is to concentrate activity in die 0, so
/// the power model asks this accumulator how each block's energy should be
/// distributed vertically.
///
/// ```
/// use th_width::{DieActivity, Width};
/// let mut a = DieActivity::default();
/// a.record(Width::Low);   // top die only
/// a.record(Width::Full);  // all four dies
/// assert_eq!(a.die(0), 2);
/// assert_eq!(a.die(3), 1);
/// assert!((a.top_die_fraction() - 0.4).abs() < 1e-12); // 2 of 5 events
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DieActivity {
    counts: [u64; DIES],
}

impl DieActivity {
    /// Records one datapath traversal of the given width: a low-width value
    /// only switches the top die; a full-width value switches all dies.
    pub fn record(&mut self, width: Width) {
        self.counts[0] += 1;
        if width == Width::Full {
            for c in &mut self.counts[1..] {
                *c += 1;
            }
        }
    }

    /// Records `n` traversals of the given width.
    pub fn record_n(&mut self, width: Width, n: u64) {
        self.counts[0] += n;
        if width == Width::Full {
            for c in &mut self.counts[1..] {
                *c += n;
            }
        }
    }

    /// Records an event confined to one specific die (e.g. an RS entry
    /// allocated on die `d` by the herding allocator).
    pub fn record_on_die(&mut self, die: usize, n: u64) {
        self.counts[die] += n;
    }

    /// Activity count on die `die` (0 = top).
    pub fn die(&self, die: usize) -> u64 {
        self.counts[die]
    }

    /// Total events across all dies.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of all switching events that occur on the top die.
    pub fn top_die_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            // An idle block is "perfectly herded" by convention.
            1.0
        } else {
            self.counts[0] as f64 / t as f64
        }
    }

    /// Per-die fractions (sums to 1 unless totally idle).
    pub fn fractions(&self) -> [f64; DIES] {
        let t = self.total();
        let mut out = [0.0; DIES];
        if t == 0 {
            out[0] = 1.0;
            return out;
        }
        for (o, c) in out.iter_mut().zip(self.counts) {
            *o = c as f64 / t as f64;
        }
        out
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &DieActivity) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn low_width_stays_on_top() {
        let mut a = DieActivity::default();
        a.record_n(Width::Low, 100);
        assert_eq!(a.die(0), 100);
        assert_eq!(a.die(1) + a.die(2) + a.die(3), 0);
        assert_eq!(a.top_die_fraction(), 1.0);
    }

    #[test]
    fn full_width_hits_all_dies() {
        let mut a = DieActivity::default();
        a.record(Width::Full);
        for d in 0..DIES {
            assert_eq!(a.die(d), 1);
        }
        assert!((a.top_die_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn idle_block_is_fully_herded() {
        let a = DieActivity::default();
        assert_eq!(a.top_die_fraction(), 1.0);
        assert_eq!(a.fractions(), [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_adds() {
        let mut a = DieActivity::default();
        a.record(Width::Full);
        let mut b = DieActivity::default();
        b.record_n(Width::Low, 3);
        a.merge(&b);
        assert_eq!(a.die(0), 4);
        assert_eq!(a.die(3), 1);
    }

    proptest! {
        #[test]
        fn fractions_sum_to_one(lows in 0u64..1000, fulls in 0u64..1000, per_die in proptest::array::uniform4(0u64..100)) {
            let mut a = DieActivity::default();
            a.record_n(Width::Low, lows);
            a.record_n(Width::Full, fulls);
            for (d, n) in per_die.iter().enumerate() {
                a.record_on_die(d, *n);
            }
            let sum: f64 = a.fractions().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }

        #[test]
        fn total_is_weighted_count(lows in 0u64..1000, fulls in 0u64..1000) {
            let mut a = DieActivity::default();
            a.record_n(Width::Low, lows);
            a.record_n(Width::Full, fulls);
            prop_assert_eq!(a.total(), lows + fulls * DIES as u64);
        }
    }
}
