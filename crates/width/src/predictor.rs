//! The PC-indexed width predictor (§3).

use crate::class::Width;
use crate::counter::SatCounter;

/// Statistics kept by the width predictor.
///
/// The paper distinguishes *unsafe* mispredictions (predicted low, actually
/// full — these stall the pipeline) from *safe* (conservative)
/// mispredictions (predicted full, actually low — no stall, just a missed
/// gating opportunity).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WidthPredictStats {
    /// Total predictions made.
    pub predictions: u64,
    /// Predicted low, actually low.
    pub correct_low: u64,
    /// Predicted full, actually full.
    pub correct_full: u64,
    /// Predicted low, actually full — pipeline stall.
    pub unsafe_mispredictions: u64,
    /// Predicted full, actually low — missed power-gating opportunity.
    pub safe_mispredictions: u64,
}

impl WidthPredictStats {
    /// Fraction of predictions that were correct (§3.8 reports ≈0.97).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            return 1.0;
        }
        (self.correct_low + self.correct_full) as f64 / self.predictions as f64
    }

    /// Fraction of predictions that were unsafe mispredictions.
    pub fn unsafe_rate(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        self.unsafe_mispredictions as f64 / self.predictions as f64
    }

    /// Fraction of predictions that were "low" and correct — the herding
    /// opportunity actually captured.
    pub fn low_hit_rate(&self) -> f64 {
        if self.predictions == 0 {
            return 0.0;
        }
        self.correct_low as f64 / self.predictions as f64
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &WidthPredictStats) {
        self.predictions += other.predictions;
        self.correct_low += other.correct_low;
        self.correct_full += other.correct_full;
        self.unsafe_mispredictions += other.unsafe_mispredictions;
        self.safe_mispredictions += other.safe_mispredictions;
    }
}

/// PC-indexed two-bit saturating-counter width predictor.
///
/// "We use a simple program counter (PC)-indexed two-bit saturating counter
/// predictor" (§3, citing Loh's width prediction work). A set counter
/// predicts *full* width; training moves the counter toward the observed
/// width. Counters start weakly-full so cold instructions are predicted
/// conservatively (no unsafe stalls on first encounter).
///
/// ```
/// use th_width::{Width, WidthPredictor};
/// let mut p = WidthPredictor::new(1024);
/// // Cold: conservative full-width prediction.
/// assert_eq!(p.predict(0x4000), Width::Full);
/// p.update(0x4000, Width::Low);
/// p.update(0x4000, Width::Low);
/// assert_eq!(p.predict(0x4000), Width::Low);
/// ```
#[derive(Clone, Debug)]
pub struct WidthPredictor {
    table: Vec<SatCounter>,
    stats: WidthPredictStats,
}

impl WidthPredictor {
    /// Creates a predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two (the index is a PC mask).
    pub fn new(entries: usize) -> WidthPredictor {
        assert!(entries.is_power_of_two(), "predictor size must be a power of two");
        WidthPredictor { table: vec![SatCounter::weakly_set(); entries], stats: WidthPredictStats::default() }
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are 8 bytes apart; drop the offset bits.
        ((pc >> 3) as usize) & (self.table.len() - 1)
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed predictor).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Predicts the width of the instruction at `pc` without recording
    /// statistics (useful for probing).
    pub fn peek(&self, pc: u64) -> Width {
        if self.table[self.index(pc)].is_set() {
            Width::Full
        } else {
            Width::Low
        }
    }

    /// Predicts the width of the instruction at `pc`.
    pub fn predict(&mut self, pc: u64) -> Width {
        self.stats.predictions += 1;
        self.peek(pc)
    }

    /// Trains the predictor with the architecturally observed width and
    /// classifies the last prediction for statistics.
    ///
    /// Returns `true` if the (implied) prediction was an *unsafe*
    /// misprediction — the caller charges the pipeline stall.
    pub fn update(&mut self, pc: u64, actual: Width) -> bool {
        let idx = self.index(pc);
        let predicted = if self.table[idx].is_set() { Width::Full } else { Width::Low };
        self.table[idx].train(actual == Width::Full);
        match (predicted, actual) {
            (Width::Low, Width::Low) => {
                self.stats.correct_low += 1;
                false
            }
            (Width::Full, Width::Full) => {
                self.stats.correct_full += 1;
                false
            }
            (Width::Low, Width::Full) => {
                self.stats.unsafe_mispredictions += 1;
                true
            }
            (Width::Full, Width::Low) => {
                self.stats.safe_mispredictions += 1;
                false
            }
        }
    }

    /// Forces the entry for `pc` to predict full width — the in-pipeline
    /// correction the paper applies after detecting an unsafe
    /// misprediction ("it corrects the instruction's width prediction to
    /// prevent any further stalls", §3.1).
    pub fn force_full(&mut self, pc: u64) {
        let idx = self.index(pc);
        while !self.table[idx].is_set() {
            self.table[idx].inc();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &WidthPredictStats {
        &self.stats
    }

    /// Resets statistics (not the learned counters).
    pub fn reset_stats(&mut self) {
        self.stats = WidthPredictStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cold_predictions_are_conservative() {
        let mut p = WidthPredictor::new(64);
        for pc in (0..64u64).map(|i| i * 8) {
            assert_eq!(p.predict(pc), Width::Full, "cold entry must predict full");
        }
        assert_eq!(p.stats().predictions, 64);
        assert_eq!(p.stats().unsafe_mispredictions, 0);
    }

    #[test]
    fn learns_stable_low_width() {
        let mut p = WidthPredictor::new(64);
        for _ in 0..4 {
            p.predict(0x100);
            p.update(0x100, Width::Low);
        }
        assert_eq!(p.peek(0x100), Width::Low);
        // One full-width excursion is an unsafe mispredict, then hysteresis
        // keeps the prediction low.
        p.predict(0x100);
        assert!(p.update(0x100, Width::Full));
        assert_eq!(p.peek(0x100), Width::Low);
        assert_eq!(p.stats().unsafe_mispredictions, 1);
    }

    #[test]
    fn force_full_prevents_repeat_stalls() {
        let mut p = WidthPredictor::new(64);
        for _ in 0..4 {
            p.update(0x200, Width::Low);
        }
        assert_eq!(p.peek(0x200), Width::Low);
        p.force_full(0x200);
        assert_eq!(p.peek(0x200), Width::Full);
    }

    #[test]
    fn accuracy_on_biased_stream() {
        // 95% low-width instructions at one PC: accuracy should approach 1.
        let mut p = WidthPredictor::new(64);
        let mut correct = 0;
        for i in 0..1000 {
            let actual = if i % 20 == 19 { Width::Full } else { Width::Low };
            let predicted = p.predict(0x300);
            if predicted == actual {
                correct += 1;
            }
            p.update(0x300, actual);
        }
        assert!(correct >= 900, "correct = {correct}");
        assert!(p.stats().accuracy() > 0.9);
    }

    #[test]
    fn distinct_pcs_do_not_alias_within_capacity() {
        let mut p = WidthPredictor::new(16);
        // PCs 8 apart map to consecutive entries.
        p.update(0x0, Width::Low);
        p.update(0x0, Width::Low);
        p.update(0x8, Width::Full);
        assert_eq!(p.peek(0x0), Width::Low);
        assert_eq!(p.peek(0x8), Width::Full);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = WidthPredictor::new(100);
    }

    #[test]
    fn stats_merge() {
        let mut a = WidthPredictStats { predictions: 10, correct_low: 5, correct_full: 3, unsafe_mispredictions: 1, safe_mispredictions: 1 };
        let b = WidthPredictStats { predictions: 2, correct_low: 2, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.predictions, 12);
        assert_eq!(a.correct_low, 7);
        assert!((a.accuracy() - 10.0 / 12.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn stats_partition_predictions(pcs in proptest::collection::vec((0u64..512, any::<bool>()), 0..500)) {
            let mut p = WidthPredictor::new(32);
            for (pc, full) in pcs {
                p.predict(pc * 8);
                p.update(pc * 8, if full { Width::Full } else { Width::Low });
            }
            let s = p.stats();
            prop_assert_eq!(
                s.predictions,
                s.correct_low + s.correct_full + s.unsafe_mispredictions + s.safe_mispredictions
            );
        }

        #[test]
        fn steady_stream_converges(full in any::<bool>()) {
            let mut p = WidthPredictor::new(8);
            let w = if full { Width::Full } else { Width::Low };
            for _ in 0..4 { p.update(0x40, w); }
            prop_assert_eq!(p.peek(0x40), w);
        }
    }
}
