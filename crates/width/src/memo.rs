//! The register-file width memoization bits (§3.1).
//!
//! "The top die (LSB's) contains a width memoization bit for each entry
//! that indicates whether the remaining three die contain non-zero
//! values. On reading the width memoization bit, the processor compares
//! it to the predicted width" — detecting unsafe mispredictions in one
//! top-die read instead of waiting for the full 64-bit value.

use crate::class::{Width, WidthPolicy};

/// Outcome of checking a register read against its memoization bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemoCheck {
    /// Prediction and memoized width agree: proceed as planned.
    Match,
    /// Predicted low, memoized full: *unsafe* — the upper dies must be
    /// enabled and the pipeline stalls (§3.1).
    Unsafe,
    /// Predicted full, memoized low: safe over-provisioning; a missed
    /// gating opportunity only.
    Conservative,
}

/// One width-memoization bit per register-file entry.
///
/// ```
/// use th_width::{MemoCheck, Width, WidthMemoFile};
/// let mut memo = WidthMemoFile::new(64, Default::default());
/// memo.record_write(5, 42);                       // low-width value
/// assert_eq!(memo.check(5, Width::Low), MemoCheck::Match);
/// memo.record_write(5, 1 << 40);                  // full-width value
/// assert_eq!(memo.check(5, Width::Low), MemoCheck::Unsafe);
/// assert_eq!(memo.check(5, Width::Full), MemoCheck::Match);
/// ```
#[derive(Clone, Debug)]
pub struct WidthMemoFile {
    bits: Vec<Width>,
    policy: WidthPolicy,
}

impl WidthMemoFile {
    /// Creates a memo file for `entries` registers, all initially
    /// low-width (registers reset to zero).
    pub fn new(entries: usize, policy: WidthPolicy) -> WidthMemoFile {
        WidthMemoFile { bits: vec![Width::Low; entries], policy }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the file has no entries.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Updates the memoization bit when `value` is written to `entry`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn record_write(&mut self, entry: usize, value: u64) {
        self.bits[entry] = self.policy.classify(value);
    }

    /// Forces an entry's width (e.g. for FP registers, always full).
    pub fn set(&mut self, entry: usize, width: Width) {
        self.bits[entry] = width;
    }

    /// The memoized width of `entry`.
    pub fn width(&self, entry: usize) -> Width {
        self.bits[entry]
    }

    /// Compares a read's predicted width against the memoization bit.
    pub fn check(&self, entry: usize, predicted: Width) -> MemoCheck {
        match (predicted, self.bits[entry]) {
            (Width::Low, Width::Full) => MemoCheck::Unsafe,
            (Width::Full, Width::Low) => MemoCheck::Conservative,
            _ => MemoCheck::Match,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_file_is_all_low() {
        let memo = WidthMemoFile::new(8, WidthPolicy::SignExtended);
        for i in 0..8 {
            assert_eq!(memo.width(i), Width::Low);
            assert_eq!(memo.check(i, Width::Low), MemoCheck::Match);
            assert_eq!(memo.check(i, Width::Full), MemoCheck::Conservative);
        }
    }

    #[test]
    fn write_updates_bit() {
        let mut memo = WidthMemoFile::new(4, WidthPolicy::SignExtended);
        memo.record_write(2, u64::MAX << 20);
        assert_eq!(memo.width(2), Width::Full);
        assert_eq!(memo.width(1), Width::Low, "other entries untouched");
        memo.record_write(2, 3);
        assert_eq!(memo.width(2), Width::Low);
    }

    #[test]
    fn policy_controls_classification() {
        let mut zero_only = WidthMemoFile::new(1, WidthPolicy::ZeroUpper);
        let mut sign_ext = WidthMemoFile::new(1, WidthPolicy::SignExtended);
        let minus_one = (-1i64) as u64;
        zero_only.record_write(0, minus_one);
        sign_ext.record_write(0, minus_one);
        assert_eq!(zero_only.width(0), Width::Full);
        assert_eq!(sign_ext.width(0), Width::Low);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let mut memo = WidthMemoFile::new(2, WidthPolicy::SignExtended);
        memo.record_write(2, 0);
    }

    proptest! {
        #[test]
        fn check_is_consistent_with_classify(value in any::<u64>(), predicted_full in any::<bool>()) {
            let policy = WidthPolicy::SignExtended;
            let mut memo = WidthMemoFile::new(1, policy);
            memo.record_write(0, value);
            let predicted = if predicted_full { Width::Full } else { Width::Low };
            let expected = match (predicted, policy.classify(value)) {
                (Width::Low, Width::Full) => MemoCheck::Unsafe,
                (Width::Full, Width::Low) => MemoCheck::Conservative,
                _ => MemoCheck::Match,
            };
            prop_assert_eq!(memo.check(0, predicted), expected);
        }

        #[test]
        fn unsafe_iff_under_prediction(value in any::<u64>()) {
            let mut memo = WidthMemoFile::new(1, WidthPolicy::SignExtended);
            memo.record_write(0, value);
            // Full prediction is never unsafe.
            prop_assert_ne!(memo.check(0, Width::Full), MemoCheck::Unsafe);
        }
    }
}
