//! # Width prediction and partial-value machinery for Thermal Herding.
//!
//! The paper's central observation (§3) is that most 64-bit integer values
//! need only their least-significant 16 bits, and that an instruction's
//! "width" is highly predictable from its PC. This crate implements every
//! width-related mechanism the paper describes, independent of the timing
//! model so each can be unit- and property-tested in isolation:
//!
//! * [`Width`]/[`WidthPolicy`] — the low/full classification of a 64-bit
//!   value (§3: "low-width (≤16-bit) or full-width (>16-bits)").
//! * [`SatCounter`] — saturating counters (shared with the branch
//!   direction predictor in `th-sim`).
//! * [`WidthPredictor`] — the PC-indexed two-bit saturating-counter width
//!   predictor of §3, with unsafe/safe misprediction accounting.
//! * [`WidthMemoFile`] — the per-register width memoization bits on the
//!   top die (§3.1) that detect unsafe mispredictions at read time.
//! * [`UpperEncoding`] — the L1 data cache's two-bit partial value encoding
//!   (§3.6: `00` zeros / `01` ones / `10` address-upper / `11` explicit).
//! * [`PartialAddressMemoizer`] — the load/store queue's partial address
//!   memoization (§3.5): broadcast 16 low bits plus one "upper 48 bits
//!   match the most recent store" bit.
//! * [`DieActivity`] — per-die switching-activity accounting used by the
//!   power model to locate activity within the 3D stack.

#![deny(missing_docs)]

mod activity;
mod class;
mod counter;
mod encoding;
mod memo;
mod pam;
mod predictor;

pub use activity::DieActivity;
pub use class::{Width, WidthPolicy};
pub use counter::SatCounter;
pub use encoding::{EncodingStats, UpperEncoding};
pub use memo::{MemoCheck, WidthMemoFile};
pub use pam::{PamOutcome, PamStats, PartialAddressMemoizer};
pub use predictor::{WidthPredictStats, WidthPredictor};

/// Number of dies in the paper's 3D stack; each die holds one 16-bit word
/// of the significance-partitioned 64-bit datapath.
pub const DIES: usize = 4;

/// Bits of the datapath resident on each die.
pub const BITS_PER_DIE: u32 = 16;
