//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmarking harness exposing the API surface
//! this workspace's benches use: `Criterion`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!`/`criterion_main!` macros. Each benchmark is
//! warmed up briefly, then timed over an adaptive iteration count; the
//! mean per-iteration time (and throughput, when declared) is printed.
//!
//! Set `TH_BENCH_FAST=1` to shrink the measurement budget (CI smoke runs).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark.
fn budgets() -> (Duration, Duration) {
    if std::env::var_os("TH_BENCH_FAST").is_some() {
        (Duration::from_millis(10), Duration::from_millis(40))
    } else {
        (Duration::from_millis(80), Duration::from_millis(400))
    }
}

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled by [`Bencher::iter`].
    mean_s: f64,
}

impl Bencher {
    /// Times `f`: short warmup, then an adaptive measurement loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let (warmup, measure) = budgets();
        // Warmup and per-iteration cost estimate.
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((measure.as_secs_f64() / est.max(1e-9)).ceil() as u64).clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_s = t0.elapsed().as_secs_f64() / iters as f64;
    }
}

fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn report(id: &str, mean_s: f64, throughput: Option<Throughput>) {
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / mean_s / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.3} MiB/s", n as f64 / mean_s / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{id:<50} time: {:>12}/iter{thrpt}", fmt_time(mean_s));
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint (accepted for API compatibility; the shim's
    /// budget is time-based).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.0), b.mean_s, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), b.mean_s, self.throughput);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { mean_s: 0.0 };
        f(&mut b);
        report(&id.0, b.mean_s, None);
        self
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
