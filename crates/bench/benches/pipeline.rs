//! Whole-pipeline benchmarks: simulator throughput (simulated
//! instructions per wall-clock second) for representative workload
//! classes on the planar and 3D configurations, plus assembly and
//! functional-interpreter throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use th_isa::Machine;
use th_sim::{SimConfig, Simulator};
use th_workloads::workload_by_name;

const BUDGET: u64 = 20_000;

fn simulator_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BUDGET));
    for name in ["mpeg2-like", "mcf-like", "crafty-like"] {
        let w = workload_by_name(name).expect("workload");
        for (cfg_name, cfg) in
            [("base", SimConfig::baseline()), ("3d", SimConfig::three_d(3.93))]
        {
            g.bench_with_input(
                BenchmarkId::new(cfg_name, name),
                &w,
                |b, w| {
                    b.iter(|| {
                        black_box(
                            Simulator::new(cfg).run(&w.program, BUDGET).expect("runs"),
                        )
                    })
                },
            );
        }
    }
    g.finish();
}

fn functional_interpreter(c: &mut Criterion) {
    let mut g = c.benchmark_group("interpreter");
    g.sample_size(20);
    g.throughput(Throughput::Elements(BUDGET));
    let w = workload_by_name("mpeg2-like").expect("workload");
    g.bench_function("golden_model_20k", |b| {
        b.iter(|| {
            let mut m = Machine::new(&w.program);
            black_box(m.run(BUDGET).expect("runs"))
        })
    });
    g.finish();
}

fn workload_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("assembler");
    g.sample_size(20);
    g.bench_function("build_susan_like", |b| {
        b.iter(|| black_box(workload_by_name("susan-like").expect("builds")))
    });
    g.finish();
}

criterion_group!(benches, simulator_throughput, functional_interpreter, workload_construction);
criterion_main!(benches);
