//! Microbenchmarks of the individual mechanisms: width prediction,
//! partial value encoding, partial address memoization, branch
//! prediction, cache access, and instruction encode/decode.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use th_sim::{BranchPredictor, Btb, Cache, CacheConfig};
use th_width::{PartialAddressMemoizer, UpperEncoding, Width, WidthPredictor};

fn width_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_predictor");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("predict_update_1k", |b| {
        let mut p = WidthPredictor::new(4096);
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = (i * 8) & 0xffff;
                let w = p.predict(black_box(pc));
                p.update(pc, if i % 7 == 0 { Width::Full } else { Width::Low });
                black_box(w);
            }
        })
    });
    g.finish();
}

fn partial_value_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("partial_value_encoding");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("classify_reconstruct_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1024u64 {
                let value = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let addr = 0x7fff_0000_0000u64 | (i * 8);
                let enc = UpperEncoding::classify(black_box(value), black_box(addr));
                if let Some(v) = enc.reconstruct(value as u16, addr) {
                    acc ^= v;
                }
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn pam(c: &mut Criterion) {
    let mut g = c.benchmark_group("pam");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("broadcast_1k", |b| {
        let mut pam = PartialAddressMemoizer::new();
        b.iter(|| {
            for i in 0..1024u64 {
                if i % 4 == 0 {
                    pam.broadcast_store(black_box(0x7fff_0000_0000 + i * 8));
                } else {
                    black_box(pam.broadcast_load(0x7fff_0000_0000 + i * 8));
                }
            }
        })
    });
    g.finish();
}

fn branch_predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("branch_predictor");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("hybrid_predict_update_1k", |b| {
        let mut p = BranchPredictor::new();
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = (i * 8) & 0x3fff;
                let pred = p.predict(black_box(pc));
                p.update(pc, pred, i % 3 != 0);
            }
        })
    });
    g.bench_function("btb_lookup_update_1k", |b| {
        let mut btb = Btb::new(512, 4);
        b.iter(|| {
            for i in 0..1024u64 {
                let pc = (i * 8) & 0x7fff;
                black_box(btb.lookup(pc));
                btb.update(pc, pc + 0x40);
            }
        })
    });
    g.finish();
}

fn cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("l1d_access_1k", |b| {
        let mut cache =
            Cache::new(CacheConfig { sets: 64, ways: 8, line_bytes: 64, latency: 3 });
        b.iter(|| {
            for i in 0..1024u64 {
                black_box(cache.access(black_box(i * 72 % 65536), i % 5 == 0));
            }
        })
    });
    g.finish();
}

fn encode_decode(c: &mut Criterion) {
    use th_isa::{decode, encode, Inst, Op, Reg};
    let mut g = c.benchmark_group("isa");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("encode_decode_1k", |b| {
        let insts: Vec<Inst> = (0..1024)
            .map(|i| Inst {
                op: Op::all()[i % Op::all().len()],
                rd: Reg::from_index(i % 64).unwrap(),
                rs1: Reg::from_index((i * 7) % 64).unwrap(),
                rs2: Reg::from_index((i * 13) % 64).unwrap(),
                imm: i as i32,
            })
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for inst in &insts {
                let word = encode(black_box(inst));
                acc ^= word;
                black_box(decode(word).unwrap());
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    width_predictor,
    partial_value_encoding,
    pam,
    branch_predictor,
    cache_access,
    encode_decode
);
criterion_main!(benches);
