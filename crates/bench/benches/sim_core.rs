//! Core-loop microbenchmark: `Simulator::run` throughput under the scan
//! and event engines, on one pointer-chasing workload (treeadd-like, low
//! ILP — long idle stretches the event core can skip) and one SPECint
//! workload (gzip-like, busy pipeline — the wakeup structures carry the
//! load). This isolates the cycle-loop cost from the experiment drivers
//! that `bench_report` times end to end.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use th_sim::{CoreEngine, SimConfig, Simulator};
use th_workloads::workload_by_name;

const BUDGET: u64 = 20_000;

fn core_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_core");
    g.sample_size(10);
    g.throughput(Throughput::Elements(BUDGET));
    for name in ["treeadd-like", "gzip-like"] {
        let w = workload_by_name(name).expect("workload");
        for (engine_name, engine) in
            [("scan", CoreEngine::Scan), ("event", CoreEngine::Event)]
        {
            for (cfg_name, mut cfg) in
                [("base", SimConfig::baseline()), ("3d", SimConfig::three_d(3.93))]
            {
                cfg.engine = engine;
                g.bench_with_input(
                    BenchmarkId::new(format!("{engine_name}/{cfg_name}"), name),
                    &w,
                    |b, w| {
                        b.iter(|| {
                            black_box(
                                Simulator::new(cfg).run(&w.program, BUDGET).expect("runs"),
                            )
                        })
                    },
                );
            }
        }
    }
    g.finish();
}

criterion_group!(benches, core_engines);
criterion_main!(benches);
