//! Thermal-solver benchmarks: steady-state solve cost vs grid
//! resolution for the 4-die stack, transient stepping, and power-map
//! rasterisation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use th_stack3d::Floorplan;
use th_thermal::{
    Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver, TransientSolver,
};

fn four_die_model(width_m: f64, height_m: f64) -> StackModel {
    StackModel::new(
        width_m,
        height_m,
        vec![
            ModelLayer::passive(1.0e-3, Material::COPPER),
            ModelLayer::passive(50e-6, Material::TIM_ALLOY),
            ModelLayer::passive(100e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
            ModelLayer::passive(5e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 1),
            ModelLayer::passive(10e-6, Material::SILICON),
            ModelLayer::passive(20e-6, Material::BOND_INTERFACE),
            ModelLayer::passive(10e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 2),
            ModelLayer::passive(5e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 3),
            ModelLayer::passive(50e-6, Material::SILICON),
        ],
        Default::default(),
    )
}

fn power(rows: usize, cols: usize, w: f64, h: f64) -> Vec<PowerGrid> {
    (0..4)
        .map(|die| {
            let mut g = PowerGrid::new(rows, cols, w, h);
            // A hotspot block plus background power per die.
            g.paint_rect(0.0, 0.0, w, h, 10.0);
            g.paint_rect(w * 0.2, h * 0.3, w * 0.35, h * 0.5, 4.0 + die as f64);
            g
        })
        .collect()
}

fn steady_state(c: &mut Criterion) {
    let mut g = c.benchmark_group("steady_state");
    g.sample_size(10);
    let (w, h) = (5.5e-3, 5.8e-3);
    for rows in [16usize, 24, 32] {
        let solver = SteadySolver::new(four_die_model(w, h), rows, rows);
        let grids = power(rows, rows, w, h);
        g.bench_with_input(BenchmarkId::new("four_die", rows), &rows, |b, _| {
            b.iter(|| {
                black_box(
                    solver.solve_steady(&grids, &SolveOptions::default()).expect("converges"),
                )
            })
        });
    }
    g.finish();
}

fn transient_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("transient");
    g.sample_size(10);
    let (w, h) = (5.5e-3, 5.8e-3);
    let rows = 20;
    let grids = power(rows, rows, w, h);
    g.bench_function("ten_ms_steps", |b| {
        b.iter(|| {
            let solver = SteadySolver::new(four_die_model(w, h), rows, rows);
            let mut tr = TransientSolver::from_ambient(solver);
            for _ in 0..10 {
                tr.step(&grids, 1e-3, &SolveOptions::default()).expect("step converges");
            }
            black_box(tr.current_map())
        })
    });
    g.finish();
}

fn rasterisation(c: &mut Criterion) {
    let mut g = c.benchmark_group("power_map");
    let fp = Floorplan::stacked_dual_core();
    let (w, h) = (fp.width_mm() * 1e-3, fp.height_mm() * 1e-3);
    g.bench_function("paint_full_floorplan_40x40", |b| {
        b.iter(|| {
            let mut grids: Vec<PowerGrid> =
                (0..4).map(|_| PowerGrid::new(40, 40, w, h)).collect();
            for p in fp.placements() {
                let r = p.rect;
                grids[p.die].paint_rect(
                    r.x * 1e-3,
                    r.y * 1e-3,
                    (r.x + r.w) * 1e-3,
                    (r.y + r.h) * 1e-3,
                    black_box(1.5),
                );
            }
            black_box(grids)
        })
    });
    g.finish();
}

criterion_group!(benches, steady_state, transient_step, rasterisation);
criterion_main!(benches);
