//! `thermal_sweep`: steady-state solve cost of the scalar lexicographic
//! reference kernel vs the red-black kernel (parallel color strips via
//! `TH_THREADS`) on a 9-layer stack at 32×32 and 64×64.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use th_thermal::{
    Kernel, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
};

/// A 9-layer, 3-active-die stack.
fn nine_layer_model(width_m: f64, height_m: f64) -> StackModel {
    StackModel::new(
        width_m,
        height_m,
        vec![
            ModelLayer::passive(1.0e-3, Material::COPPER),
            ModelLayer::passive(50e-6, Material::TIM_ALLOY),
            ModelLayer::passive(100e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
            ModelLayer::passive(5e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 1),
            ModelLayer::passive(20e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 2),
            ModelLayer::passive(50e-6, Material::SILICON),
        ],
        Default::default(),
    )
}

fn power(rows: usize, cols: usize, w: f64, h: f64) -> Vec<PowerGrid> {
    (0..3)
        .map(|die| {
            let mut g = PowerGrid::new(rows, cols, w, h);
            g.paint_rect(0.0, 0.0, w, h, 10.0);
            g.paint_rect(w * 0.2, h * 0.3, w * 0.35, h * 0.5, 4.0 + die as f64);
            g
        })
        .collect()
}

fn thermal_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_sweep");
    group.sample_size(10);
    let (w, h) = (5.5e-3, 5.8e-3);
    for rows in [32usize, 64] {
        let solver = SteadySolver::new(nine_layer_model(w, h), rows, rows);
        let grids = power(rows, rows, w, h);
        for (label, kernel) in
            [("scalar", Kernel::Lexicographic), ("red_black", Kernel::RedBlack)]
        {
            let opts = SolveOptions { kernel, ..SolveOptions::default() };
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| {
                    black_box(solver.solve_steady(&grids, &opts).expect("converges"))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, thermal_sweep);
criterion_main!(benches);
