//! End-to-end pipeline benchmark: times the Figure 8/9/10 experiment
//! sweeps at one thread and at the configured thread count, plus the
//! thermal steady-state solve (scalar reference kernel vs red-black),
//! and writes the measurements to `BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release -p th-bench --bin bench_report [budget] [fig10-rows]
//! ```
//!
//! The experiment legs run as `th-sweep` preset sweeps (the same
//! orchestrator the `sweep` binary drives), each timed into a fresh
//! scratch run directory so no checkpoint resume short-circuits the
//! measurement. The parallel leg uses `TH_THREADS` lanes (default:
//! available parallelism); the sequential leg always uses one.
//! Defaults: a 60 000-instruction budget and a 16×16 Figure 10 grid, so
//! the report finishes in minutes rather than the full paper-scale
//! sweep.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;
use th_exec::Pool;
use th_sim::{set_default_engine, CoreEngine};
use th_sweep::{presets, run_sweep, SweepOptions, SweepOutcome, SweepSpec};
use th_thermal::{
    Kernel, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
};
use th_workloads::workload_by_name;
use thermal_herding::Variant;

fn time_s<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    std::hint::black_box(&r);
    (t0.elapsed().as_secs_f64(), r)
}

/// A throwaway sweep run directory; removed on drop so back-to-back
/// timings never resume each other's checkpoints.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!(
            "th-bench-sweep-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// One timed pass of a preset sweep into a fresh scratch directory.
/// Every shard must succeed — a degraded shard means the measurement is
/// not comparable, so fail loudly instead of reporting a skewed number.
fn timed_sweep(spec: &SweepSpec, pool: &Pool) -> (f64, SweepOutcome) {
    let scratch = ScratchDir::new(&spec.name);
    let opts = SweepOptions::default();
    let (secs, outcome) = time_s(|| {
        run_sweep(spec, &scratch.0, &opts, pool).expect("sweep runs")
    });
    assert_eq!(outcome.degraded(), 0, "{}: degraded shards skew the timing", spec.name);
    (secs, outcome)
}

/// A 9-layer, 3-active-die stack for the thermal kernel comparison.
fn nine_layer_model() -> StackModel {
    StackModel::new(
        5.5e-3,
        5.8e-3,
        vec![
            ModelLayer::passive(1.0e-3, Material::COPPER),
            ModelLayer::passive(50e-6, Material::TIM_ALLOY),
            ModelLayer::passive(100e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
            ModelLayer::passive(5e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 1),
            ModelLayer::passive(20e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 2),
            ModelLayer::passive(50e-6, Material::SILICON),
        ],
        Default::default(),
    )
}

fn thermal_solve_s(kernel: Kernel, rows: usize) -> f64 {
    let solver = SteadySolver::new(nine_layer_model(), rows, rows);
    let grids: Vec<PowerGrid> = (0..3)
        .map(|die| {
            let mut g = PowerGrid::new(rows, rows, 5.5e-3, 5.8e-3);
            g.paint_rect(0.0, 0.0, 5.5e-3, 5.8e-3, 10.0);
            g.paint_rect(1.1e-3, 1.7e-3, 1.9e-3, 2.9e-3, 4.0 + die as f64);
            g
        })
        .collect();
    let opts = SolveOptions { kernel, ..SolveOptions::default() };
    // Warm once, then report the best of three (solve cost dominates any
    // cache warm-up, but the minimum is the stablest point estimate).
    solver.solve_steady(&grids, &opts).expect("converges");
    (0..3)
        .map(|_| time_s(|| solver.solve_steady(&grids, &opts).expect("converges")).0)
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let rows: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let par_threads = th_exec::threads_from_env().max(1);

    let seq = Pool::new(1);
    let par = Pool::new(par_threads);

    let experiments = [
        presets::fig8(budget),
        presets::fig9(budget),
        presets::fig10(budget, rows),
    ];

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"budget_insts\": {budget},").unwrap();
    writeln!(json, "  \"fig10_rows\": {rows},").unwrap();
    writeln!(json, "  \"threads\": {par_threads},").unwrap();
    writeln!(json, "  \"experiments\": [").unwrap();
    for (i, spec) in experiments.iter().enumerate() {
        let name = &spec.name;
        eprintln!("timing the {name} sweep ({} shards) at 1 thread...", spec.shards.len());
        let (seq_s, outcome) = timed_sweep(spec, &seq);
        let par_s = if par_threads == 1 {
            // One lane: the parallel pool *is* the sequential pool, so
            // re-timing it would only report scheduling noise as a
            // "regression". Reuse the sequential measurement.
            eprintln!("{name}: 1 thread requested, reusing the sequential timing");
            seq_s
        } else {
            eprintln!("timing the {name} sweep at {par_threads} threads...");
            timed_sweep(spec, &par).0
        };
        let speedup = seq_s / par_s;
        println!(
            "{name:>6}: {seq_s:8.2} s sequential, {par_s:8.2} s at {par_threads} threads \
             ({speedup:.2}x)"
        );
        if name == "fig10" {
            // The worst-case row reduction, now computed from sweep
            // records instead of the experiment's private loop.
            for (variant, workload, peak_k) in presets::fig10_worst_rows(&outcome) {
                println!("         worst {variant:<8} {workload:<14} {peak_k:6.1} K");
            }
        }
        let comma = if i + 1 < experiments.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{name}\", \"seq_s\": {seq_s:.4}, \"par_s\": {par_s:.4}, \
             \"threads\": {par_threads}, \"speedup\": {speedup:.4}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // Engine A/B: the same fig8 sweep, same budget, one thread, under the
    // legacy per-cycle scan engine and the event-driven engine. The two
    // produce identical statistics (enforced by the equivalence tests);
    // this block records how much wall-clock the event core saves.
    eprintln!("timing the fig8 sweep under the scan engine...");
    set_default_engine(Some(CoreEngine::Scan));
    let (scan_s, _) = timed_sweep(&experiments[0], &seq);
    eprintln!("timing the fig8 sweep under the event engine...");
    set_default_engine(Some(CoreEngine::Event));
    let (event_s, _) = timed_sweep(&experiments[0], &seq);
    set_default_engine(None);
    println!(
        "engine: fig8 scan {scan_s:.2} s, event {event_s:.2} s ({:.2}x)",
        scan_s / event_s
    );
    writeln!(
        json,
        "  \"engine\": {{\"experiment\": \"fig8\", \"scan_s\": {scan_s:.4}, \
         \"event_s\": {event_s:.4}, \"speedup\": {:.4}}},",
        scan_s / event_s
    )
    .unwrap();

    // Closed-loop co-simulation smoke: the dtm-smoke preset (one shard —
    // 30 intervals, 20k-cycle slices, 12x12 thermal grid) timed end to
    // end through the orchestrator, with the wall-clock split between
    // the cycle simulator and the transient solver taken from the
    // shard's telemetry.
    eprintln!("timing the closed-loop co-simulation smoke...");
    let (cosim_s, cosim) = timed_sweep(&presets::dtm_smoke(), &seq);
    let shard = &cosim.records[0];
    let intervals = shard.metric("intervals").expect("intervals metric") as usize;
    let intervals_per_s = intervals as f64 / cosim_s;
    let sim_wall_s = shard.timing("sim_wall_s").expect("sim wall time");
    let solver_wall_s = shard.timing("solver_wall_s").expect("solver wall time");
    let solver_share = solver_wall_s / cosim_s;
    println!(
        "cosim: {intervals} intervals in {cosim_s:.2} s ({intervals_per_s:.1}/s), \
         solver share {:.0}%",
        100.0 * solver_share
    );
    writeln!(
        json,
        "  \"cosim\": {{\"intervals\": {intervals}, \"total_s\": {cosim_s:.4}, \
         \"intervals_per_s\": {intervals_per_s:.4}, \"sim_wall_s\": {sim_wall_s:.4}, \
         \"solver_wall_s\": {solver_wall_s:.4}, \"solver_share\": {solver_share:.4}}},",
    )
    .unwrap();

    // Herding payoff, measured: the peak-power workload under the full
    // 3D design, priced from the activity ledger and from the modeled
    // reconstruction. Records the dynamic-watts delta between the two
    // sources and the per-unit top-die power fractions from each — the
    // numbers ci.sh guards (measured RF concentration must never drop
    // below what the model claims). Stays off the orchestrator: it needs
    // the run's full SimStats, not a shard summary.
    let w = workload_by_name("mpeg2-like").expect("known workload");
    eprintln!("measuring herding top-die fractions ({})...", w.name);
    let run = thermal_herding::run_chip(Variant::ThreeD, &w, budget).expect("herding run");
    let model = th_power::PowerModel::new();
    let mut ledger_cfg = run.variant.power_config();
    ledger_cfg.activity = th_power::ActivitySource::Ledger;
    let mut modeled_cfg = ledger_cfg;
    modeled_cfg.activity = th_power::ActivitySource::Modeled;
    let ledger_w = model.compute(&run.chip_stats, run.cycles(), &ledger_cfg).dynamic_w();
    let modeled_w = model.compute(&run.chip_stats, run.cycles(), &modeled_cfg).dynamic_w();
    let delta_frac = (ledger_w - modeled_w).abs() / modeled_w;
    let measured =
        th_power::DieFractionTable::new(&run.chip_stats, model.energies(), &ledger_cfg);
    let modeled =
        th_power::DieFractionTable::new(&run.chip_stats, model.energies(), &modeled_cfg);
    println!(
        "herding: dynamic {ledger_w:.2} W ledger vs {modeled_w:.2} W modeled \
         ({:.1}% apart)",
        100.0 * delta_frac
    );
    writeln!(
        json,
        "  \"herding\": {{\"workload\": \"{}\", \"ledger_dynamic_w\": {ledger_w:.4}, \
         \"modeled_dynamic_w\": {modeled_w:.4}, \"delta_frac\": {delta_frac:.4}, \
         \"units\": [",
        w.name
    )
    .unwrap();
    let herded: Vec<th_stack3d::Unit> = th_stack3d::Unit::all()
        .iter()
        .copied()
        .filter(|u| u.is_width_partitioned())
        .collect();
    for (i, &unit) in herded.iter().enumerate() {
        let m = measured.fractions(unit)[0];
        let o = modeled.fractions(unit)[0];
        println!("  {:<10} top-die {:.1}% measured, {:.1}% modeled", unit.label(), 100.0 * m, 100.0 * o);
        let comma = if i + 1 < herded.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"unit\": \"{}\", \"measured_top_die\": {m:.4}, \
             \"modeled_top_die\": {o:.4}}}{comma}",
            unit.label()
        )
        .unwrap();
    }
    writeln!(json, "  ]}},").unwrap();

    eprintln!("timing thermal solve kernels at 64x64x9...");
    let scalar_s = thermal_solve_s(Kernel::Lexicographic, 64);
    let rb_s = thermal_solve_s(Kernel::RedBlack, 64);
    println!(
        "thermal solve 64x64x9: scalar {scalar_s:.3} s, red-black {rb_s:.3} s ({:.2}x)",
        scalar_s / rb_s
    );
    writeln!(
        json,
        "  \"thermal_solve_64x64x9\": {{\"scalar_s\": {scalar_s:.4}, \
         \"red_black_s\": {rb_s:.4}, \"speedup\": {:.4}}}",
        scalar_s / rb_s
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
