//! End-to-end pipeline benchmark: times the Figure 8/9/10 experiment
//! sweeps at one thread and at the configured thread count, plus the
//! thermal steady-state solve (scalar reference kernel vs red-black),
//! and writes the measurements to `BENCH_pipeline.json`.
//!
//! ```text
//! cargo run --release -p th-bench --bin bench_report [budget] [fig10-rows]
//! ```
//!
//! The parallel leg uses `TH_THREADS` lanes (default: available
//! parallelism); the sequential leg always uses one. Defaults: a
//! 60 000-instruction budget and a 16×16 Figure 10 grid, so the report
//! finishes in minutes rather than the full paper-scale sweep.

use std::fmt::Write as _;
use std::time::Instant;
use th_exec::Pool;
use th_sim::{set_default_engine, CoreEngine};
use th_thermal::{
    Kernel, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
};
use th_cosim::{CoSimConfig, PolicyKind};
use th_workloads::workload_by_name;
use thermal_herding::experiments::{dtm, fig10, fig8, fig9};
use thermal_herding::Variant;

fn time_s<R>(f: impl FnOnce() -> R) -> f64 {
    let t0 = Instant::now();
    let r = f();
    std::hint::black_box(&r);
    t0.elapsed().as_secs_f64()
}

/// A 9-layer, 3-active-die stack for the thermal kernel comparison.
fn nine_layer_model() -> StackModel {
    StackModel::new(
        5.5e-3,
        5.8e-3,
        vec![
            ModelLayer::passive(1.0e-3, Material::COPPER),
            ModelLayer::passive(50e-6, Material::TIM_ALLOY),
            ModelLayer::passive(100e-6, Material::SILICON),
            ModelLayer::active(2e-6, Material::SILICON, 0),
            ModelLayer::passive(5e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 1),
            ModelLayer::passive(20e-6, Material::BOND_INTERFACE),
            ModelLayer::active(2e-6, Material::SILICON, 2),
            ModelLayer::passive(50e-6, Material::SILICON),
        ],
        Default::default(),
    )
}

fn thermal_solve_s(kernel: Kernel, rows: usize) -> f64 {
    let solver = SteadySolver::new(nine_layer_model(), rows, rows);
    let grids: Vec<PowerGrid> = (0..3)
        .map(|die| {
            let mut g = PowerGrid::new(rows, rows, 5.5e-3, 5.8e-3);
            g.paint_rect(0.0, 0.0, 5.5e-3, 5.8e-3, 10.0);
            g.paint_rect(1.1e-3, 1.7e-3, 1.9e-3, 2.9e-3, 4.0 + die as f64);
            g
        })
        .collect();
    let opts = SolveOptions { kernel, ..SolveOptions::default() };
    // Warm once, then report the best of three (solve cost dominates any
    // cache warm-up, but the minimum is the stablest point estimate).
    solver.solve_steady(&grids, &opts).expect("converges");
    (0..3)
        .map(|_| time_s(|| solver.solve_steady(&grids, &opts).expect("converges")))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let rows: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let par_threads = th_exec::threads_from_env().max(1);

    let seq = Pool::new(1);
    let par = Pool::new(par_threads);

    let experiments: [(&str, Box<dyn Fn(&Pool) -> ()>); 3] = [
        ("fig8", Box::new(move |p: &Pool| {
            fig8::run_with_pool(budget, p);
        })),
        ("fig9", Box::new(move |p: &Pool| {
            fig9::run_with_pool(budget, p);
        })),
        ("fig10", Box::new(move |p: &Pool| {
            fig10::run_with_pool(budget, rows, p);
        })),
    ];

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(json, "  \"budget_insts\": {budget},").unwrap();
    writeln!(json, "  \"fig10_rows\": {rows},").unwrap();
    writeln!(json, "  \"threads\": {par_threads},").unwrap();
    writeln!(json, "  \"experiments\": [").unwrap();
    for (i, (name, runner)) in experiments.iter().enumerate() {
        eprintln!("timing {name} at 1 thread...");
        let seq_s = time_s(|| runner(&seq));
        let par_s = if par_threads == 1 {
            // One lane: the parallel pool *is* the sequential pool, so
            // re-timing it would only report scheduling noise as a
            // "regression". Reuse the sequential measurement.
            eprintln!("{name}: 1 thread requested, reusing the sequential timing");
            seq_s
        } else {
            eprintln!("timing {name} at {par_threads} threads...");
            time_s(|| runner(&par))
        };
        let speedup = seq_s / par_s;
        println!(
            "{name:>6}: {seq_s:8.2} s sequential, {par_s:8.2} s at {par_threads} threads \
             ({speedup:.2}x)"
        );
        let comma = if i + 1 < experiments.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"name\": \"{name}\", \"seq_s\": {seq_s:.4}, \"par_s\": {par_s:.4}, \
             \"threads\": {par_threads}, \"speedup\": {speedup:.4}}}{comma}"
        )
        .unwrap();
    }
    writeln!(json, "  ],").unwrap();

    // Engine A/B: the same fig8 sweep, same budget, one thread, under the
    // legacy per-cycle scan engine and the event-driven engine. The two
    // produce identical statistics (enforced by the equivalence tests);
    // this block records how much wall-clock the event core saves.
    eprintln!("timing fig8 under the scan engine...");
    set_default_engine(Some(CoreEngine::Scan));
    let scan_s = time_s(|| fig8::run_with_pool(budget, &seq));
    eprintln!("timing fig8 under the event engine...");
    set_default_engine(Some(CoreEngine::Event));
    let event_s = time_s(|| fig8::run_with_pool(budget, &seq));
    set_default_engine(None);
    println!(
        "engine: fig8 scan {scan_s:.2} s, event {event_s:.2} s ({:.2}x)",
        scan_s / event_s
    );
    writeln!(
        json,
        "  \"engine\": {{\"experiment\": \"fig8\", \"scan_s\": {scan_s:.4}, \
         \"event_s\": {event_s:.4}, \"speedup\": {:.4}}},",
        scan_s / event_s
    )
    .unwrap();

    // Closed-loop co-simulation smoke: a scaled-down DTM run (30
    // intervals, 20k-cycle slices, 12x12 thermal grid) timed end to end,
    // with the wall-clock split between the cycle simulator and the
    // transient solver taken from the report itself.
    eprintln!("timing the closed-loop co-simulation smoke...");
    let w = workload_by_name("mpeg2-like").expect("known workload");
    let cosim_cfg = CoSimConfig::sampled(0.02, 20_000, 30);
    let mut cosim_trace = None;
    let cosim_s = time_s(|| {
        cosim_trace = Some(dtm::run_variant_scaled(
            Variant::ThreeDNoTh,
            &w,
            376.0,
            12,
            PolicyKind::Dvfs.build(376.0),
            cosim_cfg,
        ));
    });
    let cosim_report = cosim_trace.expect("cosim ran").report;
    let intervals = cosim_report.intervals.len();
    let intervals_per_s = intervals as f64 / cosim_s;
    let solver_share = cosim_report.solver_wall_s / cosim_s;
    println!(
        "cosim: {intervals} intervals in {cosim_s:.2} s ({intervals_per_s:.1}/s), \
         solver share {:.0}%",
        100.0 * solver_share
    );
    writeln!(
        json,
        "  \"cosim\": {{\"intervals\": {intervals}, \"total_s\": {cosim_s:.4}, \
         \"intervals_per_s\": {intervals_per_s:.4}, \"sim_wall_s\": {:.4}, \
         \"solver_wall_s\": {:.4}, \"solver_share\": {solver_share:.4}}},",
        cosim_report.sim_wall_s, cosim_report.solver_wall_s
    )
    .unwrap();

    // Herding payoff, measured: the peak-power workload under the full
    // 3D design, priced from the activity ledger and from the modeled
    // reconstruction. Records the dynamic-watts delta between the two
    // sources and the per-unit top-die power fractions from each — the
    // numbers ci.sh guards (measured RF concentration must never drop
    // below what the model claims).
    eprintln!("measuring herding top-die fractions ({})...", w.name);
    let run = thermal_herding::run_chip(Variant::ThreeD, &w, budget).expect("herding run");
    let model = th_power::PowerModel::new();
    let mut ledger_cfg = run.variant.power_config();
    ledger_cfg.activity = th_power::ActivitySource::Ledger;
    let mut modeled_cfg = ledger_cfg;
    modeled_cfg.activity = th_power::ActivitySource::Modeled;
    let ledger_w = model.compute(&run.chip_stats, run.cycles(), &ledger_cfg).dynamic_w();
    let modeled_w = model.compute(&run.chip_stats, run.cycles(), &modeled_cfg).dynamic_w();
    let delta_frac = (ledger_w - modeled_w).abs() / modeled_w;
    let measured =
        th_power::DieFractionTable::new(&run.chip_stats, model.energies(), &ledger_cfg);
    let modeled =
        th_power::DieFractionTable::new(&run.chip_stats, model.energies(), &modeled_cfg);
    println!(
        "herding: dynamic {ledger_w:.2} W ledger vs {modeled_w:.2} W modeled \
         ({:.1}% apart)",
        100.0 * delta_frac
    );
    writeln!(
        json,
        "  \"herding\": {{\"workload\": \"{}\", \"ledger_dynamic_w\": {ledger_w:.4}, \
         \"modeled_dynamic_w\": {modeled_w:.4}, \"delta_frac\": {delta_frac:.4}, \
         \"units\": [",
        w.name
    )
    .unwrap();
    let herded: Vec<th_stack3d::Unit> = th_stack3d::Unit::all()
        .iter()
        .copied()
        .filter(|u| u.is_width_partitioned())
        .collect();
    for (i, &unit) in herded.iter().enumerate() {
        let m = measured.fractions(unit)[0];
        let o = modeled.fractions(unit)[0];
        println!("  {:<10} top-die {:.1}% measured, {:.1}% modeled", unit.label(), 100.0 * m, 100.0 * o);
        let comma = if i + 1 < herded.len() { "," } else { "" };
        writeln!(
            json,
            "    {{\"unit\": \"{}\", \"measured_top_die\": {m:.4}, \
             \"modeled_top_die\": {o:.4}}}{comma}",
            unit.label()
        )
        .unwrap();
    }
    writeln!(json, "  ]}},").unwrap();

    eprintln!("timing thermal solve kernels at 64x64x9...");
    let scalar_s = thermal_solve_s(Kernel::Lexicographic, 64);
    let rb_s = thermal_solve_s(Kernel::RedBlack, 64);
    println!(
        "thermal solve 64x64x9: scalar {scalar_s:.3} s, red-black {rb_s:.3} s ({:.2}x)",
        scalar_s / rb_s
    );
    writeln!(
        json,
        "  \"thermal_solve_64x64x9\": {{\"scalar_s\": {scalar_s:.4}, \
         \"red_black_s\": {rb_s:.4}, \"speedup\": {:.4}}}",
        scalar_s / rb_s
    )
    .unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
