//! Regenerates Table 2: per-block 2D vs 3D circuit latencies and the
//! derived 47.9 % clock-frequency increase (§5.1.1).
//!
//! ```text
//! cargo run --release -p th-bench --bin table2
//! ```

fn main() {
    println!("{}", thermal_herding::experiments::table2::run());
}
