//! Calibration probe: prints the raw model outputs that the published
//! numbers are calibrated against. Not part of the paper's artefacts —
//! a development tool for checking where the model sits.

use th_stack3d::Unit;
use th_workloads::{all_workloads, workload_by_name};
use thermal_herding::{run_chip, thermal_analysis, thermal_analysis_scaled, Variant};

fn main() {
    let budget: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(u64::MAX);

    println!("== power: mpeg2-like dual-core ==");
    let mpeg2 = workload_by_name("mpeg2-like").unwrap();
    let base = run_chip(Variant::Base, &mpeg2, budget).unwrap();
    let noth = run_chip(Variant::ThreeDNoTh, &mpeg2, budget).unwrap();
    let th = run_chip(Variant::ThreeD, &mpeg2, budget).unwrap();
    println!(
        "Base   total {:7.2} W (dyn {:6.2} clk {:5.2} leak {:5.2})  [paper 90.0]",
        base.power.total_w(),
        base.power.dynamic_w(),
        base.power.clock_w,
        base.power.leakage_w
    );
    println!(
        "3DnoTH total {:7.2} W (dyn {:6.2} clk {:5.2} leak {:5.2})  [paper 72.7]",
        noth.power.total_w(),
        noth.power.dynamic_w(),
        noth.power.clock_w,
        noth.power.leakage_w
    );
    println!(
        "3D+TH  total {:7.2} W (dyn {:6.2} clk {:5.2} leak {:5.2})  [paper 64.3]",
        th.power.total_w(),
        th.power.dynamic_w(),
        th.power.clock_w,
        th.power.leakage_w
    );
    for &u in Unit::all() {
        println!(
            "  {:<11} {:7.2} {:7.2} {:7.2}",
            u.label(),
            base.power.unit_w(u),
            noth.power.unit_w(u),
            th.power.unit_w(u)
        );
    }

    let skip_speedups = std::env::args().nth(2).as_deref() == Some("thermal");
    if !skip_speedups {
        speedups(budget);
    }

    println!("\n== thermal (mpeg2, grid 32) ==");
    let tb = thermal_analysis(&base, 32).unwrap();
    let tn = thermal_analysis(&noth, 32).unwrap();
    let tt = thermal_analysis(&th, 32).unwrap();
    println!(
        "Base   peak {:6.1} K at {:<10} [paper 360 K @ Scheduler]",
        tb.peak_k(),
        tb.hottest_unit().0.label()
    );
    println!(
        "3DnoTH peak {:6.1} K at {:<10} [paper 377 K]",
        tn.peak_k(),
        tn.hottest_unit().0.label()
    );
    println!(
        "3D+TH  peak {:6.1} K at {:<10} [paper 372 K]",
        tt.peak_k(),
        tt.hottest_unit().0.label()
    );
    // Iso-power study (§5.3): the planar 90 W power map (no 3D latency
    // or power benefits) compressed into the 4-die stack.
    let mut iso = noth.clone();
    iso.power = base.power.clone();
    iso.chip_stats = base.chip_stats.clone();
    let ti = thermal_analysis_scaled(&iso, 32, 1.0).unwrap();
    println!("iso-90W peak {:6.1} K [paper 418 K]", ti.peak_k());
}

fn speedups(budget: u64) {
    println!("\n== speedups (3D vs Base, ipns) ==");
    let mut sum = 0.0;
    let mut n = 0;
    for w in all_workloads() {
        let b = run_chip(Variant::Base, &w, budget).unwrap();
        let d = run_chip(Variant::ThreeD, &w, budget).unwrap();
        let s = d.ipns() / b.ipns();
        sum += s;
        n += 1;
        println!(
            "  {:<16} {:>5.2}x  (ipc {:.2} -> {:.2}; dram/ki {:5.1}; wacc {:.3}; saving {:4.1}%)",
            w.name,
            s,
            b.ipc(),
            d.ipc(),
            b.core_stats.dram_per_kilo_inst(),
            d.core_stats.width_pred.accuracy(),
            100.0 * (1.0 - d.power.total_w() / b.power.total_w()),
        );
    }
    println!("  mean {:.3}x  [paper 1.47]", sum / n as f64);
}
