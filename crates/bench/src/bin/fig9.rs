//! Regenerates Figure 9: the chip power distribution of the planar
//! baseline (≈90 W), the 3D design without Thermal Herding (paper:
//! 72.7 W), and the full 3D Thermal Herding design (paper: 64.3 W),
//! plus the per-application savings range (paper: 15 %–30 %).
//!
//! ```text
//! cargo run --release -p th-bench --bin fig9 [instruction-budget]
//! ```

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(u64::MAX);
    println!("{}", thermal_herding::experiments::fig9::run(budget));
}
