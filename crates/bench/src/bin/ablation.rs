//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! * width-predictor size sweep (accuracy and unsafe-stall rate);
//! * RS herding allocation on/off (top-die activity share);
//! * partial address memoization on/off (LSQ top-die broadcasts);
//! * partial value encoding: the full 2-bit code vs a plain
//!   width-memoization bit (zeros/ones only).
//!
//! ```text
//! cargo run --release -p th-bench --bin ablation [instruction-budget]
//! ```

use th_sim::{SimConfig, Simulator};
use th_width::UpperEncoding;
use th_workloads::{all_workloads, workload_by_name};

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(u64::MAX);

    predictor_size_sweep(budget);
    rs_herding(budget);
    pam(budget);
    partial_value_encoding(budget);
}

fn run(cfg: SimConfig, name: &str, budget: u64) -> th_sim::SimResult {
    let w = workload_by_name(name).expect("workload");
    Simulator::new(cfg)
        .run_with_warmup(&w.program, budget / 5, budget.min(w.inst_budget))
        .expect("runs")
}

fn predictor_size_sweep(budget: u64) {
    println!("== width predictor size sweep (aggregate over all workloads) ==");
    println!("{:>8} {:>10} {:>12} {:>12}", "entries", "accuracy", "unsafe-rate", "ipc-geomean");
    for entries in [16usize, 64, 256, 4096] {
        let mut cfg = SimConfig::three_d(3.93);
        cfg.herding.predictor_entries = entries;
        let mut correct = 0u64;
        let mut unsafe_m = 0u64;
        let mut total = 0u64;
        let mut log_ipc = 0.0;
        let mut n = 0;
        for w in all_workloads() {
            let r = Simulator::new(cfg)
                .run_with_warmup(&w.program, budget / 5, budget.min(w.inst_budget))
                .expect("runs");
            let wp = &r.stats.width_pred;
            correct += wp.correct_low + wp.correct_full;
            unsafe_m += wp.unsafe_mispredictions;
            total += wp.predictions;
            log_ipc += r.ipc().ln();
            n += 1;
        }
        println!(
            "{entries:>8} {:>9.2}% {:>11.4}% {:>12.3}",
            100.0 * correct as f64 / total as f64,
            100.0 * unsafe_m as f64 / total as f64,
            (log_ipc / n as f64).exp()
        );
    }
    println!();
}

fn rs_herding(budget: u64) {
    // A saturated scheduler has nothing to herd (every die is occupied),
    // so the effect is strongest on workloads that keep the RS partially
    // empty (branchy, fetch-limited code) and weakest on high-occupancy
    // ones like mpeg2.
    println!("== RS allocation: herd-top-first vs round-robin ==");
    for name in ["mpeg2-like", "swalign-like", "adpcm-like"] {
        let herd = run(SimConfig::three_d(3.93), name, budget);
        let mut cfg = SimConfig::three_d(3.93);
        cfg.herding.rs_herding = false;
        let scatter = run(cfg, name, budget);
        for (label, r) in [("herded", &herd), ("scattered", &scatter)] {
            println!(
                "  {name:<14} {label:<10} top-die allocs {:>5.1}%  broadcast gating {:>5.1}%  ipc {:.3}",
                100.0 * r.stats.rs_top_die_fraction(),
                100.0 * r.stats.broadcast_gating_fraction(),
                r.ipc()
            );
        }
    }
    println!();
}

fn pam(budget: u64) {
    println!("== partial address memoization (treeadd-like vs susan-like) ==");
    for name in ["treeadd-like", "susan-like", "mcf-like"] {
        let r = run(SimConfig::three_d(3.93), name, budget);
        println!(
            "  {name:<14} broadcasts {:>8}  herded to top die {:>5.1}%",
            r.stats.pam.total(),
            100.0 * r.stats.pam.match_rate()
        );
    }
    println!();
}

fn partial_value_encoding(budget: u64) {
    println!("== L1-D upper-bit handling: 2-bit encoding vs plain memo bit ==");
    println!("{:<16} {:>10} {:>10} {:>12} {:>12}", "workload", "2bit-stall", "1bit-stall", "addr-upper%", "gated-loads%");
    for name in ["treeadd-like", "gcc-like", "yacr2-like", "patricia-like"] {
        let two_bit = run(SimConfig::three_d(3.93), name, budget);
        let mut cfg = SimConfig::three_d(3.93);
        cfg.herding.partial_value_encoding = false;
        let one_bit = run(cfg, name, budget);
        let enc = &two_bit.stats.dcache_encodings;
        let addr_upper =
            enc.counts[UpperEncoding::AddrUpper.code() as usize] as f64 / enc.total().max(1) as f64;
        println!(
            "{name:<16} {:>10} {:>10} {:>11.1}% {:>11.1}%",
            two_bit.stats.dcache_width_stalls,
            one_bit.stats.dcache_width_stalls,
            100.0 * addr_upper,
            100.0 * enc.top_die_fraction()
        );
    }
}
