//! Extension study: dynamic thermal management under a temperature cap.
//! Compares the unherded and herded 3D designs' delivered throughput
//! when a DTM controller enforces the cap by throttling the clock.
//!
//! ```text
//! cargo run --release -p th-bench --bin dtm [cap-kelvin] [workload]
//! ```

use th_workloads::workload_by_name;

fn main() {
    let cap: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(376.0);
    let workload = std::env::args().nth(2).unwrap_or_else(|| "mpeg2-like".into());
    let w = workload_by_name(&workload).expect("known workload");
    println!("{}", thermal_herding::experiments::dtm::run(&w, cap, 24));
}
