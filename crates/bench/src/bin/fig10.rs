//! Regenerates Figure 10: worst-case thermal maps for the planar
//! baseline, 3D without herding, and 3D with herding; the same-application
//! comparison; the §5.3 iso-power (4× density) study; and the §5.3 ROB
//! width statistics. Renders ASCII heat maps of the hottest die.
//!
//! ```text
//! cargo run --release -p th-bench --bin fig10 [instruction-budget] [grid-rows]
//! ```

use th_stack3d::Unit;

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(u64::MAX);
    let rows: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(32);
    let fig10 = thermal_herding::experiments::fig10::run(budget, rows);
    println!("{fig10}");
    println!();

    // ASCII heat maps of the hottest active layer (Figure 10's map view).
    for wc in &fig10.worst {
        let map = &wc.analysis.map;
        let (layer, _, _) = map.argmax();
        let (lo, hi) = (map.layer_min(layer), map.layer_max(layer));
        println!(
            "{} ({}), hottest layer {layer}, {lo:.1}..{hi:.1} K  [cold ' ' .. '@' hot]",
            wc.variant.label(),
            wc.workload,
        );
        println!("{}", map.render_layer(layer, lo, hi));
    }

    // Per-unit peaks of the 3D herded design for the common app.
    if let Some(th) = fig10.same_app.last() {
        println!("Per-block peaks, 3D+TH running {}:", fig10.same_app_workload);
        for &unit in Unit::all() {
            let t = th.unit_peak(unit);
            if t.is_finite() {
                println!("  {:<10} {:>6.1} K", unit.label(), t);
            }
        }
    }
}
