//! Regenerates Figure 8: IPC (a), instructions/ns (b), and speedup (c)
//! per benchmark group for the Base/TH/Pipe/Fast/3D design points, plus
//! the §3.8 width-prediction accuracy statistic.
//!
//! ```text
//! cargo run --release -p th-bench --bin fig8 [instruction-budget]
//! ```
//!
//! By default each workload runs to its own full instruction budget
//! (after a 20 % warmup); pass a smaller budget for a quicker sweep.

fn main() {
    let budget: u64 =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(u64::MAX);
    println!("{}", thermal_herding::experiments::fig8::run(budget));
}
