//! Experiment binaries and benches for the Thermal Herding reproduction.
