//! Table 2: per-block 2D vs 3D latencies and the derived clock plan.

use std::fmt;
use th_stack3d::{derive_frequency, BlockDelayModel, FrequencyPlan, Table2};

/// The regenerated Table 2 plus the §5.1.1 frequency derivation.
#[derive(Clone, Debug)]
pub struct Table2Result {
    /// Per-block latencies.
    pub table: Table2,
    /// The frequency plan (2.66 GHz → ≈3.93 GHz).
    pub frequency: FrequencyPlan,
}

/// Regenerates Table 2.
pub fn run() -> Table2Result {
    let model = BlockDelayModel::new();
    Table2Result { frequency: derive_frequency(&model), table: model.table2() }
}

impl fmt::Display for Table2Result {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: 2D vs 3D circuit latencies (65 nm delay model)")?;
        writeln!(f, "{}", self.table)?;
        writeln!(f)?;
        write!(
            f,
            "Clock: {:.2} GHz -> {:.2} GHz  (+{:.1}%; paper: 2.66 -> 3.93, +47.9%)",
            self.frequency.base_ghz,
            self.frequency.three_d_ghz,
            100.0 * self.frequency.gain()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_gain_reproduces_paper() {
        let r = run();
        assert!((r.frequency.gain() - 0.479).abs() < 0.01, "gain {:.3}", r.frequency.gain());
    }

    #[test]
    fn renders_critical_rows() {
        let s = run().to_string();
        assert!(s.contains("Scheduler"));
        assert!(s.contains("ALU + Bypass"));
        assert!(s.contains("47.9%"));
    }
}
