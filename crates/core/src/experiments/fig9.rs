//! Figure 9: chip power distribution for the planar baseline, the 3D
//! implementation without Thermal Herding, and the full 3D Thermal
//! Herding design — plus the per-application total-power savings range
//! (§5.2: 15 % for `yacr2` to 30 % for `susan`).

use crate::config::Variant;
use crate::run::{run_chip, ChipResult};
use std::fmt;
use th_stack3d::Unit;
use th_workloads::{all_workloads, workload_by_name};

/// One bar of Figure 9: the per-unit power distribution of one design.
#[derive(Clone, Debug)]
pub struct Fig9Bar {
    /// Design point.
    pub variant: Variant,
    /// The underlying run.
    pub result: ChipResult,
}

impl Fig9Bar {
    /// Total chip power.
    pub fn total_w(&self) -> f64 {
        self.result.power.total_w()
    }
}

/// Per-application power saving of the full 3D design over the baseline.
#[derive(Clone, Debug)]
pub struct PowerSaving {
    /// Workload name.
    pub workload: &'static str,
    /// Baseline chip power, watts.
    pub base_w: f64,
    /// 3D Thermal Herding chip power, watts.
    pub three_d_w: f64,
}

impl PowerSaving {
    /// Fractional saving (paper range: 0.15–0.30).
    pub fn saving(&self) -> f64 {
        1.0 - self.three_d_w / self.base_w
    }
}

/// The full Figure 9 result.
#[derive(Clone, Debug)]
pub struct Fig9 {
    /// The three bars, running the peak-power workload (`mpeg2`-like on
    /// both cores): Base ≈ 90 W, 3D ≈ 72.7 W, 3D+TH ≈ 64.3 W.
    pub bars: Vec<Fig9Bar>,
    /// Savings for every workload (paper: 15 %–30 %).
    pub savings: Vec<PowerSaving>,
}

impl Fig9 {
    /// The bar for one design point.
    pub fn bar(&self, variant: Variant) -> &Fig9Bar {
        self.bars.iter().find(|b| b.variant == variant).expect("bar exists")
    }

    /// Measured per-unit top-die power fractions of the full 3D design's
    /// peak-power run — the herding payoff read straight from the
    /// activity ledger (width-partitioned units plus the scheduler).
    pub fn measured_top_die(&self) -> Vec<(Unit, f64)> {
        let table = self.bar(Variant::ThreeD).result.die_table();
        Unit::all()
            .iter()
            .filter(|u| u.is_width_partitioned() || **u == Unit::Scheduler)
            .map(|&u| (u, table.fractions(u)[0]))
            .collect()
    }

    /// Minimum and maximum fractional savings across workloads.
    pub fn savings_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for s in &self.savings {
            min = min.min(s.saving());
            max = max.max(s.saving());
        }
        (min, max)
    }
}

/// Runs the Figure 9 experiment, fanned out over the global
/// [`th_exec::pool`].
pub fn run(max_insts: u64) -> Fig9 {
    run_with_pool(max_insts, th_exec::pool())
}

/// [`run`] on an explicit pool. The three bars and the per-workload
/// base/3D pairs form one flat job list; results are reduced in a fixed
/// order, so the output is identical for any thread count.
pub fn run_with_pool(max_insts: u64, pool: &th_exec::Pool) -> Fig9 {
    let mpeg2 = workload_by_name("mpeg2-like").expect("mpeg2-like exists");
    let workloads = all_workloads();
    let bar_variants = [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD];

    let mut jobs: Vec<(Variant, &th_workloads::Workload)> =
        bar_variants.iter().map(|&v| (v, &mpeg2)).collect();
    for w in &workloads {
        jobs.push((Variant::Base, w));
        jobs.push((Variant::ThreeD, w));
    }
    let mut results = pool
        .map(&jobs, |&(variant, w)| run_chip(variant, w, max_insts).expect("workload runs"))
        .into_iter();

    let bars = bar_variants
        .iter()
        .map(|&variant| Fig9Bar { variant, result: results.next().expect("bar result") })
        .collect();
    let savings = workloads
        .iter()
        .map(|w| {
            let base = results.next().expect("base result");
            let three_d = results.next().expect("3d result");
            PowerSaving {
                workload: w.name,
                base_w: base.power.total_w(),
                three_d_w: three_d.power.total_w(),
            }
        })
        .collect();

    Fig9 { bars, savings }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9: chip power running mpeg2-like on both cores")?;
        writeln!(
            f,
            "{:<12} {:>10} {:>10} {:>10} {:>10}",
            "Unit",
            self.bars[0].variant.label(),
            self.bars[1].variant.label(),
            self.bars[2].variant.label(),
            "paper"
        )?;
        for &unit in Unit::all() {
            if unit == Unit::Clock {
                continue; // reported via the dedicated clock-network row
            }
            write!(f, "{:<12}", unit.label())?;
            for bar in &self.bars {
                write!(f, "{:>10.2}", bar.result.power.unit_w(unit))?;
            }
            writeln!(f)?;
        }
        for (label, get) in [
            ("Clock", (|b: &Fig9Bar| b.result.power.clock_w) as fn(&Fig9Bar) -> f64),
            ("Leakage", |b| b.result.power.leakage_w),
            ("TOTAL", |b| b.total_w()),
        ] {
            write!(f, "{label:<12}")?;
            for bar in &self.bars {
                write!(f, "{:>10.2}", get(bar))?;
            }
            writeln!(f)?;
        }
        let paper = [90.0, 72.7, 64.3];
        write!(f, "{:<12}", "paper total")?;
        for p in paper {
            write!(f, "{p:>10.1}")?;
        }
        writeln!(f)?;
        writeln!(f)?;
        let (min, max) = self.savings_range();
        writeln!(
            f,
            "Per-application 3D+TH savings: {:.1}%..{:.1}% (paper: 15%..30%)",
            100.0 * min,
            100.0 * max
        )?;
        for s in &self.savings {
            writeln!(
                f,
                "  {:<16} {:>6.1} W -> {:>6.1} W  ({:>4.1}%)",
                s.workload,
                s.base_w,
                s.three_d_w,
                100.0 * s.saving()
            )?;
        }
        writeln!(f)?;
        writeln!(f, "Measured top-die power fraction (3D+TH, activity ledger):")?;
        for (unit, frac) in self.measured_top_die() {
            writeln!(f, "  {:<12} {:>5.1}%", unit.label(), 100.0 * frac)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_and_savings_are_structurally_sound() {
        let fig9 = run(15_000);
        assert_eq!(fig9.bars.len(), 3);
        // Ordering of the three bars must hold even at tiny budgets.
        let base = fig9.bar(Variant::Base).total_w();
        let noth = fig9.bar(Variant::ThreeDNoTh).total_w();
        let th = fig9.bar(Variant::ThreeD).total_w();
        assert!(base > noth, "planar {base:.1} !> 3D {noth:.1}");
        assert!(noth >= th, "3D {noth:.1} !>= TH {th:.1}");
        assert_eq!(fig9.savings.len(), th_workloads::all_workloads().len());
        let (min, max) = fig9.savings_range();
        assert!(min > 0.0, "some workload lost power savings: {min:.3}");
        assert!(max < 0.5, "implausible saving {max:.3}");
        let text = fig9.to_string();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("Per-application"));
        assert!(text.contains("Measured top-die"));
        // The herded design must measurably concentrate the register
        // file's power on the top die (well above the even 25% split).
        let rf = fig9
            .measured_top_die()
            .into_iter()
            .find(|(u, _)| *u == Unit::RegFile)
            .map(|(_, f)| f)
            .unwrap();
        assert!(rf > 0.4, "measured RF top-die fraction {rf:.3}");
    }
}
