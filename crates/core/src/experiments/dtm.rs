//! Dynamic thermal management under a temperature cap — an extension of
//! the paper's §5.3 observation (citing Black et al.) that performance
//! headroom can be traded for temperature.
//!
//! The study runs on the [`th_cosim`] closed loop: every control
//! interval re-simulates the pipeline, re-prices power from that
//! interval's real activity (plus temperature-dependent leakage), steps
//! the transient solver, and lets a [`DtmPolicy`] react. Because Thermal
//! Herding lowers the stack's steady-state ceiling, the herded design
//! sustains its full clock under caps that force the unherded 3D design
//! to throttle — the herding win expressed as *delivered throughput*
//! instead of kelvin.
//!
//! The pre-cosim controller (constant average power repriced at each
//! clock, constant 18 W leakage) survives as the test-only oracle: the
//! closed loop must never exceed the open loop's steady-state ceiling.

use crate::config::Variant;
use crate::thermal::SINK_RESISTANCE_K_PER_W;
use std::fmt;
use th_cosim::{CoSimConfig, CoSimReport, CoSimulator, DtmPolicy, PolicyKind};
use th_power::LeakageModel;
use th_stack3d::{DieStack, Floorplan};
use th_thermal::{HeatSink, SteadySolver};
use th_workloads::Workload;

/// Control interval of the DTM loop, seconds of simulated time.
pub const DTM_INTERVAL_S: f64 = 0.05;
/// Pipeline cycles re-simulated per control interval (the sampled-
/// execution budget; see [`th_cosim`]). Sized so an 80-interval trace
/// crosses real program phases even on DRAM-bound kernels whose cold
/// pass alone spans millions of cycles.
pub const DTM_SLICE_CYCLES: u64 = 100_000;
/// Control intervals per trace (4 s of simulated time).
pub const DTM_STEPS: usize = 80;

/// Outcome of a closed-loop DTM run for one design point.
#[derive(Clone, Debug)]
pub struct DtmTrace {
    /// Design point.
    pub variant: Variant,
    /// Thermal cap enforced, kelvin.
    pub cap_k: f64,
    /// The co-simulation trace (per-interval temperature, clock, fetch
    /// width, IPC, power split).
    pub report: CoSimReport,
    /// Nominal fetch width (for throttle accounting).
    pub nominal_fetch_width: usize,
}

impl DtmTrace {
    /// Nominal (unthrottled) clock, GHz.
    pub fn nominal_ghz(&self) -> f64 {
        self.report.nominal_ghz
    }

    /// Per-core IPC over the whole trace.
    pub fn ipc(&self) -> f64 {
        self.report.ipc()
    }

    /// Fraction of control intervals spent below the nominal operating
    /// point (clock or fetch width).
    pub fn throttled_fraction(&self) -> f64 {
        self.report.throttled_fraction(self.nominal_fetch_width)
    }

    /// Instructions delivered per core over the trace, in billions:
    /// `Σ IPC × f × dt` with each interval's own IPC and clock. The
    /// interval length comes from the trace itself.
    pub fn delivered_ginst(&self) -> f64 {
        let dt = self.report.intervals.first().map_or(0.0, |s| s.t_s);
        self.report.intervals.iter().map(|s| s.ipc() * s.clock_ghz * dt).sum()
    }

    /// Mean clock over the trace, GHz.
    pub fn mean_clock_ghz(&self) -> f64 {
        self.report.mean_clock_ghz()
    }

    /// Highest temperature ever observed (the cap may be overshot by at
    /// most one control interval's rise).
    pub fn max_peak_k(&self) -> f64 {
        self.report.max_peak_k()
    }

    /// Measured register-file top-die power fraction over the trace, from
    /// the co-simulation's cumulative activity ledger.
    pub fn rf_top_die(&self) -> f64 {
        self.report.top_die_fraction(th_stack3d::Unit::RegFile).unwrap_or(f64::NAN)
    }
}

/// Assembles the co-simulation pieces for one design point.
fn cosim_parts(variant: Variant, rows: usize) -> (Floorplan, SteadySolver, LeakageModel, usize) {
    let (floorplan, stack, rows) = if variant.is_three_d() {
        (Floorplan::stacked_dual_core(), DieStack::four_die(), rows)
    } else {
        (Floorplan::planar_dual_core(), DieStack::planar(), rows * 2)
    };
    let model = th_cosim::stack_thermal_model(
        &stack,
        &floorplan,
        HeatSink { resistance_k_per_w: SINK_RESISTANCE_K_PER_W, ambient_k: th_thermal::AMBIENT_K },
    );
    let solver = SteadySolver::new(model, rows, rows);
    let leakage = LeakageModel::new(variant.power_config().chip_leakage_w, &floorplan);
    (floorplan, solver, leakage, rows)
}

/// Runs the closed DTM loop for one design point under `policy`, with an
/// explicit interval structure (smoke tests and determinism checks use a
/// scaled-down one).
pub fn run_variant_scaled(
    variant: Variant,
    workload: &Workload,
    cap_k: f64,
    rows: usize,
    policy: Box<dyn DtmPolicy>,
    cfg: CoSimConfig,
) -> DtmTrace {
    let (floorplan, solver, leakage, _) = cosim_parts(variant, rows);
    let sim_cfg = variant.sim_config();
    let nominal_fetch_width = sim_cfg.core.fetch_width;
    let cosim = CoSimulator::new(
        sim_cfg,
        variant.power_config(),
        leakage,
        &floorplan,
        solver,
        policy,
        cfg,
        &workload.program,
    );
    let report = cosim.run().expect("co-simulation runs");
    DtmTrace { variant, cap_k, report, nominal_fetch_width }
}

/// [`run_variant_scaled`] with the standard interval structure
/// ([`DTM_INTERVAL_S`] × [`DTM_STEPS`], [`DTM_SLICE_CYCLES`] per
/// interval).
pub fn run_variant_with_policy(
    variant: Variant,
    workload: &Workload,
    cap_k: f64,
    rows: usize,
    policy: Box<dyn DtmPolicy>,
) -> DtmTrace {
    let cfg = CoSimConfig::sampled(DTM_INTERVAL_S, DTM_SLICE_CYCLES, DTM_STEPS);
    run_variant_scaled(variant, workload, cap_k, rows, policy, cfg)
}

/// [`run_variant_with_policy`] with the default DVFS ladder (step down
/// 0.2 GHz above the cap, floor 2.0 GHz, step back up with headroom).
pub fn run_variant(variant: Variant, workload: &Workload, cap_k: f64, rows: usize) -> DtmTrace {
    run_variant_with_policy(variant, workload, cap_k, rows, PolicyKind::Dvfs.build(cap_k))
}

/// The DTM comparison: the unherded and herded 3D designs under the same
/// cap.
#[derive(Clone, Debug)]
pub struct Dtm {
    /// Traces, `[3D-noTH, 3D]`.
    pub traces: Vec<DtmTrace>,
}

/// Runs the comparison on `workload` with cap `cap_k`, the two design
/// points in parallel on the global [`th_exec::pool`].
pub fn run(workload: &Workload, cap_k: f64, rows: usize) -> Dtm {
    run_with_pool(workload, cap_k, rows, th_exec::pool())
}

/// [`run`] on an explicit pool. The traces come back in `[3D-noTH, 3D]`
/// order regardless of thread count.
pub fn run_with_pool(workload: &Workload, cap_k: f64, rows: usize, pool: &th_exec::Pool) -> Dtm {
    let traces = pool.map(&[Variant::ThreeDNoTh, Variant::ThreeD], |&v| {
        run_variant(v, workload, cap_k, rows)
    });
    Dtm { traces }
}

impl fmt::Display for Dtm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DTM study: {:.0} K cap, {:.0} s of execution, {:.0} ms control interval",
            self.traces[0].cap_k,
            DTM_INTERVAL_S * DTM_STEPS as f64,
            DTM_INTERVAL_S * 1e3,
        )?;
        for t in &self.traces {
            writeln!(
                f,
                "  {:<8} mean clock {:>5.2} GHz (nominal {:.2}), throttled {:>5.1}% of the time, \
                 max peak {:>6.1} K, delivered {:>6.2} Ginst/core, power swing {:.2}x, \
                 RF top-die {:>4.1}% (measured)",
                t.variant.label(),
                t.mean_clock_ghz(),
                t.nominal_ghz(),
                100.0 * t.throttled_fraction(),
                t.max_peak_k(),
                t.delivered_ginst(),
                t.report.dynamic_power_swing(),
                100.0 * t.rf_top_die(),
            )?;
        }
        let (noth, th) = (&self.traces[0], &self.traces[1]);
        write!(
            f,
            "  herding delivers {:+.1}% throughput under this cap",
            100.0 * (th.delivered_ginst() / noth.delivered_ginst() - 1.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_chip;
    use crate::thermal::thermal_analysis;
    use th_workloads::workload_by_name;

    /// The pre-cosim open-loop path: full run, average power, one steady
    /// solve. Its peak is the ceiling the closed loop must respect.
    fn open_loop_ceiling_k(variant: Variant, workload: &Workload, rows: usize) -> f64 {
        let result = run_chip(variant, workload, u64::MAX).expect("workload runs");
        thermal_analysis(&result, rows).expect("steady solve converges").peak_k()
    }

    /// A trace at the scaled test budget: the same 50 ms intervals, but
    /// smaller cycle slices and fewer steps so the suite stays fast in
    /// debug builds. Steady-state thermal behaviour is slice-independent
    /// for phase-uniform kernels.
    fn test_trace(variant: Variant, w: &Workload, cap_k: f64, steps: usize) -> DtmTrace {
        let cfg = CoSimConfig::sampled(DTM_INTERVAL_S, 15_000, steps);
        run_variant_scaled(variant, w, cap_k, 16, PolicyKind::Dvfs.build(cap_k), cfg)
    }

    #[test]
    fn herding_avoids_throttling_under_a_tight_cap() {
        let w = workload_by_name("mpeg2-like").unwrap();
        // Cap between the herded ceiling and the unherded one: only the
        // unherded design must throttle.
        let noth = test_trace(Variant::ThreeDNoTh, &w, 376.0, 40);
        let th = test_trace(Variant::ThreeD, &w, 376.0, 40);
        assert!(noth.throttled_fraction() > 0.3, "noTH never throttled");
        assert!(th.throttled_fraction() < 0.05, "TH throttled {:.2}", th.throttled_fraction());
        assert!(th.delivered_ginst() > noth.delivered_ginst());
        // The controller must actually hold the cap (one interval of
        // overshoot allowed).
        assert!(noth.max_peak_k() < 376.0 + 3.0, "cap violated: {:.1}", noth.max_peak_k());
    }

    #[test]
    fn loose_cap_throttles_nobody() {
        let w = workload_by_name("gzip-like").unwrap();
        for variant in [Variant::ThreeDNoTh, Variant::ThreeD] {
            let t = test_trace(variant, &w, 420.0, 25);
            assert_eq!(t.throttled_fraction(), 0.0, "{} throttled", t.variant);
            assert!((t.mean_clock_ghz() - t.nominal_ghz()).abs() < 1e-9);
        }
    }

    #[test]
    fn closed_loop_peak_never_exceeds_open_loop_ceiling() {
        // The open-loop steady solve prices leakage at its constant 18 W
        // reference; the closed loop prices it at the (cooler) actual
        // temperatures and throttles on top. The closed loop must
        // therefore never end up hotter than the open-loop ceiling.
        let w = workload_by_name("mpeg2-like").unwrap();
        for variant in [Variant::ThreeDNoTh, Variant::ThreeD] {
            let ceiling = open_loop_ceiling_k(variant, &w, 16);
            let trace = test_trace(variant, &w, 376.0, 40);
            assert!(
                trace.max_peak_k() <= ceiling + 1.0,
                "{}: closed loop {:.1} K above open-loop ceiling {:.1} K",
                variant,
                trace.max_peak_k(),
                ceiling
            );
        }
    }

    #[test]
    fn mcf_like_holds_the_cap_with_phase_coupled_power() {
        // The acceptance scenario: a memory-bound workload whose phases
        // (cold-cache DRAM storms vs warmed-up locality) must show up in
        // the per-interval power trace while the ladder holds the cap.
        // This one keeps the full 100k-cycle slices: the cold pointer-
        // chase pass alone spans ~3M cycles and the trace must cross into
        // the warm phase (cheap to simulate — the event engine skips the
        // DRAM-stall idle cycles).
        let w = workload_by_name("mcf-like").unwrap();
        let trace = run_variant(Variant::ThreeDNoTh, &w, 376.0, 16);
        assert!(
            trace.max_peak_k() < 376.0 + 3.0,
            "cap violated: {:.1} K",
            trace.max_peak_k()
        );
        let swing = trace.report.dynamic_power_swing();
        assert!(
            swing >= 2.0,
            "per-interval dynamic power varies only {swing:.2}x — phases not coupled"
        );
    }
}
