//! Dynamic thermal management under a temperature cap — an extension of
//! the paper's §5.3 observation (citing Black et al.) that performance
//! headroom can be traded for temperature.
//!
//! A DTM controller watches the transient peak temperature and throttles
//! the clock when it exceeds the cap, stepping back up when there is
//! headroom. Because Thermal Herding lowers the stack's steady-state
//! ceiling, the herded design sustains its full clock under caps that
//! force the unherded 3D design to throttle — the herding win expressed
//! as *delivered throughput* instead of kelvin.

use crate::config::Variant;
use crate::run::{run_chip, ChipResult};
use crate::thermal::SINK_RESISTANCE_K_PER_W;
use std::fmt;
use th_power::PowerModel;
use th_stack3d::{DieStack, Floorplan, LayerKind, Unit};
use th_thermal::{
    HeatSink, Material, ModelLayer, PowerGrid, SolveOptions, StackModel, SteadySolver,
    TransientSolver,
};
use th_workloads::Workload;

/// One sample of the DTM control loop.
#[derive(Clone, Copy, Debug)]
pub struct DtmSample {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Peak stack temperature at this sample, kelvin.
    pub peak_k: f64,
    /// Clock the controller ran during the interval, GHz.
    pub clock_ghz: f64,
}

/// Outcome of a DTM run for one design point.
#[derive(Clone, Debug)]
pub struct DtmTrace {
    /// Design point.
    pub variant: Variant,
    /// Thermal cap enforced, kelvin.
    pub cap_k: f64,
    /// Control-loop samples.
    pub samples: Vec<DtmSample>,
    /// Nominal (unthrottled) clock, GHz.
    pub nominal_ghz: f64,
    /// Per-core IPC of the workload at this design point.
    pub ipc: f64,
}

impl DtmTrace {
    /// Fraction of control intervals spent below the nominal clock.
    pub fn throttled_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let throttled =
            self.samples.iter().filter(|s| s.clock_ghz < self.nominal_ghz - 1e-9).count();
        throttled as f64 / self.samples.len() as f64
    }

    /// Instructions delivered per core over the trace, in billions:
    /// `Σ IPC × f × dt`.
    pub fn delivered_ginst(&self) -> f64 {
        let dt = if self.samples.len() > 1 {
            self.samples[1].time_s - self.samples[0].time_s
        } else {
            0.0
        };
        self.samples.iter().map(|s| self.ipc * s.clock_ghz * dt).sum()
    }

    /// Mean clock over the trace, GHz.
    pub fn mean_clock_ghz(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.clock_ghz).sum::<f64>() / self.samples.len() as f64
    }

    /// Highest temperature ever observed (the cap may be overshot by at
    /// most one control interval's rise).
    pub fn max_peak_k(&self) -> f64 {
        self.samples.iter().map(|s| s.peak_k).fold(f64::NEG_INFINITY, f64::max)
    }
}

fn material_of(kind: LayerKind) -> Material {
    match kind {
        LayerKind::Silicon | LayerKind::Active(_) => Material::SILICON,
        LayerKind::BondInterface => Material::BOND_INTERFACE,
        LayerKind::Tim => Material::TIM_ALLOY,
        LayerKind::Spreader => Material::COPPER,
    }
}

/// Paints the chip's power (repriced at `clock_ghz`) onto per-die grids.
fn grids_at_clock(
    result: &ChipResult,
    floorplan: &Floorplan,
    rows: usize,
    clock_ghz: f64,
) -> Vec<PowerGrid> {
    let mut pcfg = result.variant.power_config();
    pcfg.clock_ghz = clock_ghz;
    let power = PowerModel::new().compute(&result.chip_stats, result.cycles(), &pcfg);
    let model = PowerModel::new();
    let (w_m, h_m) = (floorplan.width_mm() * 1e-3, floorplan.height_mm() * 1e-3);
    let mut grids: Vec<PowerGrid> =
        (0..floorplan.dies()).map(|_| PowerGrid::new(rows, rows, w_m, h_m)).collect();
    for p in floorplan.placements() {
        let unit_w = match p.unit {
            Unit::Clock => power.clock_w,
            u => power.unit_w(u),
        };
        let share = if p.core.is_some() { 0.5 } else { 1.0 };
        let fractions =
            th_power::die_fractions(p.unit, &result.chip_stats, model.energies(), &pcfg);
        let leak = if p.unit == Unit::Clock {
            power.leakage_w / floorplan.dies() as f64
        } else {
            0.0
        };
        let r = p.rect;
        grids[p.die].paint_rect(
            r.x * 1e-3,
            r.y * 1e-3,
            (r.x + r.w) * 1e-3,
            (r.y + r.h) * 1e-3,
            unit_w * share * fractions[p.die] + leak,
        );
    }
    grids
}

/// Runs the DTM control loop for one design point.
///
/// The controller samples every `dt_s` seconds: above the cap it steps
/// the clock down by 0.2 GHz (floor 2.0 GHz); with more than 1.5 K of
/// headroom it steps back up toward nominal.
pub fn run_variant(
    variant: Variant,
    workload: &Workload,
    cap_k: f64,
    rows: usize,
    dt_s: f64,
    steps: usize,
) -> DtmTrace {
    let result = run_chip(variant, workload, u64::MAX).expect("workload runs");
    let (floorplan, stack) = if variant.is_three_d() {
        (Floorplan::stacked_dual_core(), DieStack::four_die())
    } else {
        (Floorplan::planar_dual_core(), DieStack::planar())
    };
    let rows = if variant.is_three_d() { rows } else { rows * 2 };
    let layers = stack
        .layers()
        .iter()
        .map(|l| match l.kind {
            LayerKind::Active(die) => {
                ModelLayer::active(l.thickness_um * 1e-6, material_of(l.kind), die)
            }
            _ => ModelLayer::passive(l.thickness_um * 1e-6, material_of(l.kind)),
        })
        .collect();
    let model = StackModel::new(
        floorplan.width_mm() * 1e-3,
        floorplan.height_mm() * 1e-3,
        layers,
        HeatSink { resistance_k_per_w: SINK_RESISTANCE_K_PER_W, ambient_k: th_thermal::AMBIENT_K },
    );
    let solver = SteadySolver::new(model, rows, rows);
    let mut transient = TransientSolver::from_ambient(solver);

    let nominal = result.clock_ghz;
    let mut clock = nominal;
    let mut samples = Vec::with_capacity(steps);
    let opts = SolveOptions::default();
    for _ in 0..steps {
        let grids = grids_at_clock(&result, &floorplan, rows, clock);
        transient.step(&grids, dt_s, &opts).expect("transient step converges");
        let peak = transient.current_map().max_temp();
        samples.push(DtmSample { time_s: transient.elapsed_s(), peak_k: peak, clock_ghz: clock });
        if peak > cap_k {
            clock = (clock - 0.2).max(2.0);
        } else if peak < cap_k - 1.5 {
            clock = (clock + 0.2).min(nominal);
        }
    }
    DtmTrace { variant, cap_k, samples, nominal_ghz: nominal, ipc: result.ipc() }
}

/// The DTM comparison: the unherded and herded 3D designs under the same
/// cap.
#[derive(Clone, Debug)]
pub struct Dtm {
    /// Traces, `[3D-noTH, 3D]`.
    pub traces: Vec<DtmTrace>,
}

/// Runs the comparison on `workload` with cap `cap_k`, the two design
/// points in parallel on the global [`th_exec::pool`].
pub fn run(workload: &Workload, cap_k: f64, rows: usize) -> Dtm {
    run_with_pool(workload, cap_k, rows, th_exec::pool())
}

/// [`run`] on an explicit pool. The traces come back in `[3D-noTH, 3D]`
/// order regardless of thread count.
pub fn run_with_pool(workload: &Workload, cap_k: f64, rows: usize, pool: &th_exec::Pool) -> Dtm {
    let traces = pool.map(&[Variant::ThreeDNoTh, Variant::ThreeD], |&v| {
        run_variant(v, workload, cap_k, rows, 0.05, 80)
    });
    Dtm { traces }
}

impl fmt::Display for Dtm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DTM study: {:.0} K cap, 4 s of execution, 50 ms control interval",
            self.traces[0].cap_k
        )?;
        for t in &self.traces {
            writeln!(
                f,
                "  {:<8} mean clock {:>5.2} GHz (nominal {:.2}), throttled {:>5.1}% of the time, \
                 max peak {:>6.1} K, delivered {:>6.2} Ginst/core",
                t.variant.label(),
                t.mean_clock_ghz(),
                t.nominal_ghz,
                100.0 * t.throttled_fraction(),
                t.max_peak_k(),
                t.delivered_ginst()
            )?;
        }
        let (noth, th) = (&self.traces[0], &self.traces[1]);
        write!(
            f,
            "  herding delivers {:+.1}% throughput under this cap",
            100.0 * (th.delivered_ginst() / noth.delivered_ginst() - 1.0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_workloads::workload_by_name;

    #[test]
    fn herding_avoids_throttling_under_a_tight_cap() {
        let w = workload_by_name("mpeg2-like").unwrap();
        // Cap between the herded ceiling (≈374 K) and the unherded one
        // (≈379 K): only the unherded design must throttle.
        let dtm = run(&w, 376.0, 16);
        let noth = &dtm.traces[0];
        let th = &dtm.traces[1];
        assert!(noth.throttled_fraction() > 0.3, "noTH never throttled");
        assert!(th.throttled_fraction() < 0.05, "TH throttled {:.2}", th.throttled_fraction());
        assert!(th.delivered_ginst() > noth.delivered_ginst());
        // The controller must actually hold the cap (one interval of
        // overshoot allowed).
        assert!(noth.max_peak_k() < 376.0 + 3.0, "cap violated: {:.1}", noth.max_peak_k());
    }

    #[test]
    fn loose_cap_throttles_nobody() {
        let w = workload_by_name("gzip-like").unwrap();
        let dtm = run(&w, 420.0, 12);
        for t in &dtm.traces {
            assert_eq!(t.throttled_fraction(), 0.0, "{} throttled", t.variant);
            assert!((t.mean_clock_ghz() - t.nominal_ghz).abs() < 1e-9);
        }
    }
}
