//! Figure 10: thermal maps and hotspots.
//!
//! * (a–c) worst-case temperatures over the workload set for the planar
//!   baseline (paper: 360 K, scheduler), 3D without herding (377 K,
//!   +17 K), and 3D with herding (372 K, +12 K — a 29 % reduction in the
//!   3D temperature increase, with the hotspot moving to the data cache
//!   under `yacr2`);
//! * (d–f) the three designs running one common application;
//! * the §5.3 iso-power study: the 3D stack forced to the planar
//!   design's 90 W at 2.66 GHz (4× power density) reached 418 K;
//! * the §5.3 ROB statistic: ≈5× more low-width reads and ≈2× more
//!   low-width writes than full-width.

use crate::config::Variant;
use crate::run::run_chip;
use crate::thermal::{thermal_analysis, thermal_analysis_scaled, ThermalAnalysis};
use std::fmt;
use th_stack3d::Unit;
use th_workloads::{all_workloads, workload_by_name, Workload};

/// Worst-case thermal outcome for one design point.
#[derive(Clone, Debug)]
pub struct WorstCase {
    /// Design point.
    pub variant: Variant,
    /// The workload that produced the worst hotspot.
    pub workload: &'static str,
    /// The analysis.
    pub analysis: ThermalAnalysis,
}

impl WorstCase {
    /// Peak temperature, kelvin.
    pub fn peak_k(&self) -> f64 {
        self.analysis.peak_k()
    }

    /// The hottest block.
    pub fn hottest_unit(&self) -> Unit {
        self.analysis.hottest_unit().0
    }
}

/// The full Figure 10 result.
#[derive(Clone, Debug)]
pub struct Fig10 {
    /// Worst case per design point (Figure 10a-c).
    pub worst: Vec<WorstCase>,
    /// The three designs running the same application (Figure 10d-f).
    pub same_app: Vec<ThermalAnalysis>,
    /// Name of the common application used for (d-f).
    pub same_app_workload: &'static str,
    /// §5.3 iso-power peak: 3D stack at the planar 90 W / 2.66 GHz point.
    pub iso_power_peak_k: f64,
    /// §5.3 ROB width statistics under the 3D design: (low-width reads /
    /// full-width reads, low-width writes / full-width writes).
    pub rob_ratios: (f64, f64),
    /// Measured top-die power fraction per width-partitioned unit under
    /// the 3D design, from the activity ledger aggregated over every
    /// workload — the vertical concentration the thermal maps react to.
    pub measured_top_die: Vec<(Unit, f64)>,
}

impl Fig10 {
    /// Worst case of one design point.
    pub fn worst_of(&self, variant: Variant) -> &WorstCase {
        self.worst.iter().find(|w| w.variant == variant).expect("variant present")
    }

    /// The 3D temperature increases over the planar baseline, kelvin:
    /// `(without herding, with herding)` — paper: (+17, +12).
    pub fn increases(&self) -> (f64, f64) {
        let base = self.worst_of(Variant::Base).peak_k();
        (
            self.worst_of(Variant::ThreeDNoTh).peak_k() - base,
            self.worst_of(Variant::ThreeD).peak_k() - base,
        )
    }

    /// Fractional reduction of the 3D temperature increase due to
    /// herding — paper: ≈0.29.
    pub fn increase_reduction(&self) -> f64 {
        let (no_th, th) = self.increases();
        1.0 - th / no_th
    }
}

/// The workloads searched for the worst case. The full 106-trace sweep is
/// summarised by its extremes in the paper; we search the hottest
/// candidates of each behavioural class (peak-power media, mixed-width
/// memory-bound pointer, compute-bound integer).
pub fn worst_case_candidates() -> Vec<Workload> {
    ["mpeg2-like", "susan-like", "yacr2-like", "crafty-like", "gzip-like"]
        .iter()
        .map(|n| workload_by_name(n).expect("candidate exists"))
        .collect()
}

/// Runs the Figure 10 experiment at `rows × rows` grid resolution,
/// fanned out over the global [`th_exec::pool`].
pub fn run(max_insts: u64, rows: usize) -> Fig10 {
    run_with_pool(max_insts, rows, th_exec::pool())
}

/// [`run`] on an explicit pool. Each phase (worst-case search, same-app
/// comparison, iso-power, ROB sweep) fans its independent runs out in
/// parallel and reduces in a fixed order, so the output is identical for
/// any thread count.
pub fn run_with_pool(max_insts: u64, rows: usize, pool: &th_exec::Pool) -> Fig10 {
    let candidates = worst_case_candidates();
    let variants = [Variant::Base, Variant::ThreeDNoTh, Variant::ThreeD];

    // Worst-case search: variants × candidates, reduced per variant in
    // candidate order (first strict maximum wins, as sequentially).
    let worst_jobs: Vec<(usize, usize)> = (0..variants.len())
        .flat_map(|vi| (0..candidates.len()).map(move |ci| (vi, ci)))
        .collect();
    let analyses = pool.map(&worst_jobs, |&(vi, ci)| {
        let run = run_chip(variants[vi], &candidates[ci], max_insts).expect("candidate runs");
        thermal_analysis(&run, rows).expect("thermal solves")
    });
    let mut worst = Vec::new();
    for (vi, &variant) in variants.iter().enumerate() {
        let mut best: Option<WorstCase> = None;
        for (ci, w) in candidates.iter().enumerate() {
            let analysis = &analyses[vi * candidates.len() + ci];
            if best.as_ref().is_none_or(|b| analysis.peak_k() > b.peak_k()) {
                best =
                    Some(WorstCase { variant, workload: w.name, analysis: analysis.clone() });
            }
        }
        worst.push(best.expect("candidates non-empty"));
    }

    // (d-f): all three designs running the same application — use the
    // baseline's worst-case app, as the paper does.
    let common = worst[0].workload;
    let common_w = workload_by_name(common).expect("common workload");
    let same_app = pool.map(&variants, |&variant| {
        let run = run_chip(variant, &common_w, max_insts).expect("runs");
        thermal_analysis(&run, rows).expect("solves")
    });

    // §5.3 iso-power: "the 3D processor at the same total power (90 W)
    // and same frequency (2.66 GHz) as the planar processor ... mimics a
    // quadrupling of the power density while ignoring the latency and
    // power benefits of a 3D organization" — the planar power map,
    // planar pricing and all, compressed into the 4-die stack.
    let iso = {
        let mut runs = pool
            .map(&[Variant::Base, Variant::ThreeDNoTh], |&v| {
                run_chip(v, &common_w, max_insts).expect("runs")
            })
            .into_iter();
        let base = runs.next().expect("base run");
        let mut r = runs.next().expect("3d run");
        r.power = base.power.clone();
        r.chip_stats = base.chip_stats.clone();
        thermal_analysis_scaled(&r, rows, 1.0).expect("iso-power solves")
    };

    // §5.3 ROB width ratios under the full 3D design, aggregated over
    // every workload.
    let rob_runs = pool.map(&all_workloads(), |w| {
        run_chip(Variant::ThreeD, w, max_insts).expect("runs")
    });
    let mut reads = (0u64, 0u64);
    let mut writes = (0u64, 0u64);
    let mut agg = th_sim::SimStats::default();
    for r in &rob_runs {
        reads.0 += r.core_stats.rob_reads_low;
        reads.1 += r.core_stats.rob_reads_full;
        writes.0 += r.core_stats.rob_writes_low;
        writes.1 += r.core_stats.rob_writes_full;
        agg.merge(&r.core_stats);
    }
    let rob_ratios =
        (reads.0 as f64 / reads.1.max(1) as f64, writes.0 as f64 / writes.1.max(1) as f64);

    // Measured vertical power concentration from the aggregated ledger.
    let model = th_power::PowerModel::new();
    let table = th_power::DieFractionTable::new(
        &agg,
        model.energies(),
        &Variant::ThreeD.power_config(),
    );
    let measured_top_die = Unit::all()
        .iter()
        .filter(|u| u.is_width_partitioned())
        .map(|&u| (u, table.fractions(u)[0]))
        .collect();

    Fig10 {
        worst,
        same_app,
        same_app_workload: common,
        iso_power_peak_k: iso.peak_k(),
        rob_ratios,
        measured_top_die,
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10(a-c): worst-case hotspots")?;
        let paper = [(360.0, "Scheduler"), (377.0, "Scheduler"), (372.0, "D-cache")];
        for (w, (pk, pu)) in self.worst.iter().zip(paper) {
            writeln!(
                f,
                "  {:<8} worst app {:<14} peak {:>6.1} K at {:<10} (paper: {:.0} K at {})",
                w.variant.label(),
                w.workload,
                w.peak_k(),
                w.hottest_unit().label(),
                pk,
                pu
            )?;
        }
        let (no_th, th) = self.increases();
        writeln!(
            f,
            "  3D increase over planar: +{no_th:.1} K without herding, +{th:.1} K with \
             (paper: +17 K / +12 K; reduction {:.0}%, paper 29%)",
            100.0 * self.increase_reduction()
        )?;
        writeln!(f)?;
        writeln!(f, "Figure 10(d-f): all designs running {}", self.same_app_workload)?;
        for a in &self.same_app {
            writeln!(
                f,
                "  {:<8} peak {:>6.1} K, hottest {:<10} ROB {:>6.1} K, D-cache {:>6.1} K",
                a.variant.label(),
                a.peak_k(),
                a.hottest_unit().0.label(),
                a.unit_peak(Unit::Rob),
                a.unit_peak(Unit::DCache)
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Iso-power 3D stack (90 W @ 2.66 GHz, 4x density): peak {:.1} K (paper: 418 K)",
            self.iso_power_peak_k
        )?;
        writeln!(
            f,
            "ROB low/full ratios: reads {:.1}x, writes {:.1}x (paper: ~5x reads, ~2x writes)",
            self.rob_ratios.0, self.rob_ratios.1
        )?;
        write!(f, "Measured top-die power fraction (3D, ledger):")?;
        for (unit, frac) in &self.measured_top_die {
            write!(f, " {} {:.0}%", unit.label(), 100.0 * frac)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_structure_is_sound() {
        // Tiny budget + coarse grid: a smoke test of the full pipeline;
        // the calibrated numbers are pinned by tests/paper_results.rs.
        let fig10 = run(15_000, 10);
        assert_eq!(fig10.worst.len(), 3);
        assert_eq!(fig10.same_app.len(), 3);
        let (no_th, th) = fig10.increases();
        assert!(no_th > 0.0, "stacking must heat the chip");
        assert!(th < no_th, "herding must reduce the increase");
        assert!(fig10.iso_power_peak_k > fig10.worst_of(Variant::Base).peak_k());
        assert!(fig10.rob_ratios.0 > 0.0 && fig10.rob_ratios.1 > 0.0);
        // The ledger must measure a real top-die bias for the register
        // file under the herded design.
        let rf = fig10
            .measured_top_die
            .iter()
            .find(|(u, _)| *u == Unit::RegFile)
            .map(|&(_, f)| f)
            .unwrap();
        assert!(rf > 0.4, "measured RF top-die fraction {rf:.3}");
        let text = fig10.to_string();
        for needle in
            ["Figure 10(a-c)", "Figure 10(d-f)", "Iso-power", "ROB", "Measured top-die"]
        {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
