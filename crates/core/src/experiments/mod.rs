//! One module per reproduced paper artefact.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table2`] | Table 2: 2D vs 3D block latencies and the 47.9 % clock gain |
//! | [`fig8`] | Figure 8: IPC, instructions/ns, and speedup per suite |
//! | [`fig9`] | Figure 9: power distribution of Base / 3D / 3D+TH |
//! | [`fig10`] | Figure 10: thermal maps, worst-case hotspots, iso-power study |
//! | [`dtm`] | extension: DTM throttling study under a thermal cap |

pub mod dtm;
pub mod fig10;
pub mod fig8;
pub mod fig9;
pub mod table2;
