//! Figure 8: IPC (a), instructions per nanosecond (b), and relative
//! speedup over the baseline (c), per benchmark group, for the five
//! design points — plus the §3.8 width-prediction accuracy statistic.

use crate::config::Variant;
use crate::run::run_chip;
use std::collections::BTreeMap;
use std::fmt;
use th_workloads::{all_workloads, Suite};

/// Per-workload results across the five design points.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: &'static str,
    /// Suite.
    pub suite: Suite,
    /// IPC per design point, in [`Variant::figure8`] order.
    pub ipc: [f64; 5],
    /// Instructions per nanosecond, same order.
    pub ipns: [f64; 5],
}

impl Fig8Row {
    /// Speedup of a design point over the baseline.
    pub fn speedup(&self, point: usize) -> f64 {
        self.ipns[point] / self.ipns[0]
    }

    /// Speedup of the full 3D processor over the baseline.
    pub fn speedup_3d(&self) -> f64 {
        self.speedup(4)
    }
}

/// Per-suite geometric means.
#[derive(Clone, Debug)]
pub struct Fig8Group {
    /// Suite.
    pub suite: Suite,
    /// Geometric-mean IPC per design point.
    pub ipc: [f64; 5],
    /// Geometric-mean IPns per design point.
    pub ipns: [f64; 5],
}

impl Fig8Group {
    /// Geometric-mean speedup of the 3D point over the baseline.
    pub fn speedup_3d(&self) -> f64 {
        self.ipns[4] / self.ipns[0]
    }
}

/// The full Figure 8 result.
#[derive(Clone, Debug)]
pub struct Fig8 {
    /// Per-workload rows.
    pub rows: Vec<Fig8Row>,
    /// Per-suite geometric means.
    pub groups: Vec<Fig8Group>,
    /// Aggregate width-prediction accuracy across every workload under
    /// the 3D configuration (§3.8 reports ≈97 %).
    pub width_accuracy: f64,
    /// Register-file top-die power fraction under the 3D configuration,
    /// measured from the activity ledger aggregated over every workload.
    pub measured_rf_top_die: f64,
}

impl Fig8 {
    /// Mean-of-(group-)means speedup — the paper's headline 1.47×.
    pub fn mean_of_means_speedup(&self) -> f64 {
        let n = self.groups.len() as f64;
        self.groups.iter().map(|g| g.speedup_3d()).sum::<f64>() / n
    }

    /// Minimum and maximum per-workload 3D speedup.
    pub fn speedup_range(&self) -> (f64, f64) {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for r in &self.rows {
            min = min.min(r.speedup_3d());
            max = max.max(r.speedup_3d());
        }
        (min, max)
    }

    /// A group's result.
    pub fn group(&self, suite: Suite) -> Option<&Fig8Group> {
        self.groups.iter().find(|g| g.suite == suite)
    }

    /// A row by workload name.
    pub fn row(&self, workload: &str) -> Option<&Fig8Row> {
        self.rows.iter().find(|r| r.workload == workload)
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0, 0);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Runs the Figure 8 sweep: every workload × the five design points,
/// `max_insts` per core per run, fanned out over the global
/// [`th_exec::pool`].
pub fn run(max_insts: u64) -> Fig8 {
    run_with_pool(max_insts, th_exec::pool())
}

/// [`run`] on an explicit pool. The `(workload × variant)` matrix is
/// flattened into one job list and the results are reduced in workload
/// order, so the output is identical for any thread count.
pub fn run_with_pool(max_insts: u64, pool: &th_exec::Pool) -> Fig8 {
    let variants = Variant::figure8();
    let workloads = all_workloads();
    let jobs: Vec<(usize, usize)> = (0..workloads.len())
        .flat_map(|wi| (0..variants.len()).map(move |vi| (wi, vi)))
        .collect();
    let results = pool.map(&jobs, |&(wi, vi)| {
        run_chip(variants[vi], &workloads[wi], max_insts).expect("workload runs")
    });

    let mut rows = Vec::new();
    let mut width_correct = 0u64;
    let mut width_total = 0u64;
    let mut three_d_stats = th_sim::SimStats::default();
    for (wi, w) in workloads.iter().enumerate() {
        let mut ipc = [0.0; 5];
        let mut ipns = [0.0; 5];
        for (i, &variant) in variants.iter().enumerate() {
            let r = &results[wi * variants.len() + i];
            ipc[i] = r.ipc();
            ipns[i] = r.ipns();
            if variant == Variant::ThreeD {
                let wp = &r.core_stats.width_pred;
                width_correct += wp.correct_low + wp.correct_full;
                width_total += wp.predictions;
                three_d_stats.merge(&r.core_stats);
            }
        }
        rows.push(Fig8Row { workload: w.name, suite: w.suite, ipc, ipns });
    }
    // Measured herding payoff over the whole suite: the register file's
    // top-die power fraction from the aggregated activity ledger.
    let model = th_power::PowerModel::new();
    let measured_rf_top_die = th_power::DieFractionTable::new(
        &three_d_stats,
        model.energies(),
        &Variant::ThreeD.power_config(),
    )
    .fractions(th_stack3d::Unit::RegFile)[0];

    let mut groups = Vec::new();
    let mut by_suite: BTreeMap<Suite, Vec<&Fig8Row>> = BTreeMap::new();
    for r in &rows {
        by_suite.entry(r.suite).or_default().push(r);
    }
    for (&suite, members) in &by_suite {
        let mut ipc = [0.0; 5];
        let mut ipns = [0.0; 5];
        for i in 0..5 {
            ipc[i] = geomean(members.iter().map(|r| r.ipc[i]));
            ipns[i] = geomean(members.iter().map(|r| r.ipns[i]));
        }
        groups.push(Fig8Group { suite, ipc, ipns });
    }

    let width_accuracy =
        if width_total == 0 { 1.0 } else { width_correct as f64 / width_total as f64 };
    Fig8 { rows, groups, width_accuracy, measured_rf_top_die }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let labels: Vec<&str> = Variant::figure8().iter().map(|v| v.label()).collect();
        writeln!(f, "Figure 8(a): geometric-mean IPC per benchmark group")?;
        write!(f, "{:<12}", "Group")?;
        for l in &labels {
            write!(f, "{l:>9}")?;
        }
        writeln!(f)?;
        for g in &self.groups {
            write!(f, "{:<12}", g.suite.label())?;
            for v in g.ipc {
                write!(f, "{v:>9.3}")?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        writeln!(f, "Figure 8(b): geometric-mean instructions/ns")?;
        write!(f, "{:<12}", "Group")?;
        for l in &labels {
            write!(f, "{l:>9}")?;
        }
        writeln!(f)?;
        for g in &self.groups {
            write!(f, "{:<12}", g.suite.label())?;
            for v in g.ipns {
                write!(f, "{v:>9.3}")?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        writeln!(f, "Figure 8(c): 3D speedup over Base (per workload)")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<16} ({:<10}) {:>6.2}x",
                r.workload,
                r.suite.label(),
                r.speedup_3d()
            )?;
        }
        let (min, max) = self.speedup_range();
        writeln!(f)?;
        writeln!(
            f,
            "Mean-of-means speedup: {:.3}x (paper: 1.470x); range {:.2}x..{:.2}x (paper: 1.07x..1.77x)",
            self.mean_of_means_speedup(),
            min,
            max
        )?;
        writeln!(
            f,
            "Width prediction accuracy (3D): {:.1}% (paper §3.8: ~97%)",
            100.0 * self.width_accuracy
        )?;
        write!(
            f,
            "Measured RF top-die power fraction (3D, ledger): {:.1}%",
            100.0 * self.measured_rf_top_die
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_complete_structure() {
        // A tiny budget keeps this a smoke test of the plumbing; the
        // full-budget numbers are pinned by tests/paper_results.rs.
        let fig8 = run(15_000);
        assert_eq!(fig8.rows.len(), th_workloads::all_workloads().len());
        assert_eq!(fig8.groups.len(), Suite::all().len());
        for r in &fig8.rows {
            for i in 0..5 {
                assert!(r.ipc[i] > 0.0, "{}: zero IPC at point {i}", r.workload);
                assert!(r.ipns[i] > 0.0);
            }
        }
        assert!(fig8.width_accuracy > 0.5 && fig8.width_accuracy <= 1.0);
        assert!(
            fig8.measured_rf_top_die > 0.4,
            "measured RF top-die fraction {:.3}",
            fig8.measured_rf_top_die
        );
        let (min, max) = fig8.speedup_range();
        assert!(min <= max);
        assert!(fig8.mean_of_means_speedup() > 1.0, "3D must win on average");
        // Lookups work.
        assert!(fig8.group(Suite::Media).is_some());
        assert!(fig8.row("mcf-like").is_some());
        // The report renders every section.
        let text = fig8.to_string();
        for needle in
            ["Figure 8(a)", "Figure 8(b)", "Figure 8(c)", "Mean-of-means", "Measured RF top-die"]
        {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }
}
