//! # Thermal Herding: the paper's evaluation, end to end.
//!
//! This crate ties the substrates together into the experiments of
//! Puttaswamy & Loh, *"Thermal Herding: Microarchitecture Techniques for
//! Controlling Hotspots in High-Performance 3D-Integrated Processors"*
//! (HPCA 2007):
//!
//! * [`Variant`] — the five design points of Figure 8 (`Base`, `TH`,
//!   `Pipe`, `Fast`, `3D`) plus the herding-less 3D point of Figures 9–10.
//! * [`run_chip`] — simulate a workload on the dual-core chip of §4 and
//!   price its power.
//! * [`thermal_analysis`] — build the planar or 4-die stack, rasterise
//!   the per-die power maps, and solve for temperatures.
//! * [`experiments`] — one module per paper artefact: [`experiments::table2`],
//!   [`experiments::fig8`], [`experiments::fig9`], [`experiments::fig10`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use thermal_herding::{run_chip, thermal_analysis, Variant};
//! use th_workloads::workload_by_name;
//!
//! let w = workload_by_name("mpeg2-like").unwrap();
//! let base = run_chip(Variant::Base, &w, 100_000).unwrap();
//! let three_d = run_chip(Variant::ThreeD, &w, 100_000).unwrap();
//! println!("speedup: {:.2}x", three_d.ipns() / base.ipns());
//! println!("power:   {:.1} W -> {:.1} W",
//!          base.power.total_w(), three_d.power.total_w());
//! let thermals = thermal_analysis(&three_d, 32).unwrap();
//! println!("peak:    {:.1} K", thermals.peak_k());
//! ```

#![deny(missing_docs)]

mod config;
pub mod experiments;
mod run;
mod thermal;

pub use config::{three_d_clock_ghz, Variant};
pub use run::{run_chip, ChipResult};
pub use thermal::{
    thermal_analysis, thermal_analysis_scaled, transient_heatup, ThermalAnalysis, GRID_COLS,
    GRID_ROWS, SINK_RESISTANCE_K_PER_W,
};
