//! The evaluated design points.

use th_power::PowerConfig;
use th_sim::SimConfig;
use th_stack3d::{derive_frequency, BlockDelayModel};

/// One of the paper's processor design points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// Planar baseline at 2.66 GHz (Figure 8 "Base").
    Base,
    /// Baseline clock + Thermal Herding mechanisms (Figure 8 "TH") —
    /// isolates the IPC cost of width mispredictions.
    Th,
    /// Baseline clock + 3D pipeline optimisations (Figure 8 "Pipe").
    Pipe,
    /// Baseline microarchitecture at the 3D clock (Figure 8 "Fast") —
    /// isolates the IPC cost of relatively slower DRAM.
    Fast,
    /// 3D implementation *without* Thermal Herding (Figures 9b/10b).
    ThreeDNoTh,
    /// The full 3D Thermal Herding processor (Figure 8 "3D", Figures
    /// 9c/10c).
    ThreeD,
}

impl Variant {
    /// The five design points of Figure 8, in presentation order.
    pub fn figure8() -> &'static [Variant] {
        &[Variant::Base, Variant::Th, Variant::Pipe, Variant::Fast, Variant::ThreeD]
    }

    /// Display label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Base => "Base",
            Variant::Th => "TH",
            Variant::Pipe => "Pipe",
            Variant::Fast => "Fast",
            Variant::ThreeDNoTh => "3D-noTH",
            Variant::ThreeD => "3D",
        }
    }

    /// Parses a [`Variant::label`] back into its design point — the
    /// inverse used by sweep specs and CLI plumbing.
    pub fn by_label(label: &str) -> Option<Variant> {
        [
            Variant::Base,
            Variant::Th,
            Variant::Pipe,
            Variant::Fast,
            Variant::ThreeDNoTh,
            Variant::ThreeD,
        ]
        .into_iter()
        .find(|v| v.label() == label)
    }

    /// Whether this point is physically a 4-die stack (for power/thermal
    /// pricing). The `Th`/`Pipe`/`Fast` points are IPC isolation studies
    /// of the planar design.
    pub fn is_three_d(self) -> bool {
        matches!(self, Variant::ThreeDNoTh | Variant::ThreeD)
    }

    /// Whether Thermal Herding is active.
    pub fn herding(self) -> bool {
        matches!(self, Variant::Th | Variant::ThreeD)
    }

    /// The timing-simulator configuration for this point.
    pub fn sim_config(self) -> SimConfig {
        match self {
            Variant::Base => SimConfig::baseline(),
            Variant::Th => SimConfig::thermal_herding(),
            Variant::Pipe => SimConfig::pipe(),
            Variant::Fast => SimConfig::fast(three_d_clock_ghz()),
            Variant::ThreeDNoTh => {
                let mut cfg = SimConfig::three_d(three_d_clock_ghz());
                cfg.herding = th_sim::HerdingConfig::off();
                cfg
            }
            Variant::ThreeD => SimConfig::three_d(three_d_clock_ghz()),
        }
    }

    /// The power-model configuration for this point.
    pub fn power_config(self) -> PowerConfig {
        let clock = self.sim_config().clock_ghz;
        if self.is_three_d() {
            PowerConfig::three_d(clock, self.herding())
        } else {
            PowerConfig::planar(clock)
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The 3D clock frequency derived from the critical loops (§5.1.1:
/// 2.66 GHz → ≈3.93 GHz, a 47.9 % increase).
pub fn three_d_clock_ghz() -> f64 {
    derive_frequency(&BlockDelayModel::new()).three_d_ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_clock_matches_paper() {
        let f = three_d_clock_ghz();
        assert!((f - 3.93).abs() < 0.05, "3D clock {f:.3} GHz");
    }

    #[test]
    fn variants_map_to_expected_configs() {
        assert_eq!(Variant::Base.sim_config().clock_ghz, 2.66);
        assert!(!Variant::Base.sim_config().herding.enabled);
        assert!(Variant::Th.sim_config().herding.enabled);
        assert_eq!(Variant::Th.sim_config().clock_ghz, 2.66);
        assert!(Variant::Fast.sim_config().clock_ghz > 3.8);
        assert!(!Variant::Fast.sim_config().herding.enabled);
        assert!(Variant::ThreeD.sim_config().herding.enabled);
        assert!(!Variant::ThreeDNoTh.sim_config().herding.enabled);
        // ThreeDNoTh still gets the pipeline optimisations and clock.
        assert!(Variant::ThreeDNoTh.sim_config().clock_ghz > 3.8);
        assert_eq!(
            Variant::ThreeDNoTh.sim_config().pipeline,
            Variant::ThreeD.sim_config().pipeline
        );
    }

    #[test]
    fn power_configs_follow_physics_not_isolation() {
        // Th/Pipe/Fast are planar IPC studies.
        assert!(!Variant::Th.power_config().three_d);
        assert!(!Variant::Fast.power_config().three_d);
        assert!(Variant::ThreeD.power_config().three_d);
        assert!(Variant::ThreeD.power_config().herding);
        assert!(!Variant::ThreeDNoTh.power_config().herding);
    }

    #[test]
    fn figure8_order() {
        let labels: Vec<_> = Variant::figure8().iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["Base", "TH", "Pipe", "Fast", "3D"]);
    }
}
