//! Thermal assembly: floorplan + per-die power maps + stack → solved map.

use crate::config::Variant;
use crate::run::ChipResult;
use th_power::{DieFractionTable, PowerModel};
use th_stack3d::{DieStack, Floorplan, Unit};
use th_thermal::{HeatSink, PowerGrid, SolveOptions, StackModel, SteadySolver, ThermalMap};

/// Default lateral grid resolution for the experiments (rows).
pub const GRID_ROWS: usize = 40;
/// Default lateral grid resolution (columns).
pub const GRID_COLS: usize = 40;

/// Heat-sink-to-ambient resistance used for every configuration, K/W.
///
/// Calibrated once so the planar baseline running the peak-power workload
/// (≈90 W) peaks near the paper's 360 K (Figure 10a); the same cooling
/// solution is then applied to the 3D stacks, as the paper does.
pub const SINK_RESISTANCE_K_PER_W: f64 = 0.23;

/// A solved thermal analysis of one chip run.
#[derive(Clone, Debug)]
pub struct ThermalAnalysis {
    /// The design point analysed.
    pub variant: Variant,
    /// The solved temperature field.
    pub map: ThermalMap,
    /// The floorplan used (planar or stacked).
    pub floorplan: Floorplan,
    /// Per-unit peak temperature, kelvin (max over cores and dies).
    pub unit_peaks: Vec<(Unit, f64)>,
}

impl ThermalAnalysis {
    /// Hottest temperature anywhere in the stack.
    pub fn peak_k(&self) -> f64 {
        self.map.max_temp()
    }

    /// The hottest unit and its temperature.
    pub fn hottest_unit(&self) -> (Unit, f64) {
        self.unit_peaks
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("unit peaks non-empty")
    }

    /// Peak temperature of one unit.
    pub fn unit_peak(&self, unit: Unit) -> f64 {
        self.unit_peaks.iter().find(|(u, _)| *u == unit).map_or(f64::NAN, |(_, t)| *t)
    }
}

/// Converts a `th-stack3d` die stack into a thermal stack model under
/// the experiments' standard heat sink.
pub(crate) fn stack_model(stack: &DieStack, floorplan: &Floorplan) -> StackModel {
    th_cosim::stack_thermal_model(
        stack,
        floorplan,
        HeatSink { resistance_k_per_w: SINK_RESISTANCE_K_PER_W, ambient_k: th_thermal::AMBIENT_K },
    )
}

/// Rasterises the chip power onto per-die power grids.
///
/// Core-private units carry half the chip-level unit power per core; the
/// shared L2 and the distributed clock carry their full power; vertical
/// distribution follows one [`DieFractionTable`] built for the run.
fn power_grids(result: &ChipResult, floorplan: &Floorplan, rows: usize, cols: usize) -> Vec<PowerGrid> {
    let dies = floorplan.dies();
    let (w_m, h_m) = (floorplan.width_mm() * 1e-3, floorplan.height_mm() * 1e-3);
    let mut grids: Vec<PowerGrid> = (0..dies).map(|_| PowerGrid::new(rows, cols, w_m, h_m)).collect();
    let model = PowerModel::new();
    let pcfg = result.variant.power_config();
    let table = DieFractionTable::new(&result.chip_stats, model.energies(), &pcfg);
    for placement in floorplan.placements() {
        let unit_w = match placement.unit {
            Unit::Clock => result.power.clock_w,
            u => result.power.unit_w(u),
        };
        // Leakage: distribute over the whole die area like the clock.
        let share = if placement.core.is_some() { 0.5 } else { 1.0 };
        let fractions = table.fractions(placement.unit);
        let watts = unit_w * share * fractions[placement.die];
        let leak = if placement.unit == Unit::Clock {
            // Clock rect covers the die: piggy-back the per-die leakage.
            result.power.leakage_w / dies as f64
        } else {
            0.0
        };
        let r = placement.rect;
        grids[placement.die].paint_rect(
            r.x * 1e-3,
            r.y * 1e-3,
            (r.x + r.w) * 1e-3,
            (r.y + r.h) * 1e-3,
            watts + leak,
        );
    }
    grids
}

/// Builds and solves the thermal model for a chip run.
///
/// `rows` controls lateral resolution (`rows × rows` grid cells).
///
/// # Errors
///
/// Returns the solver error message if the relaxation fails to converge.
pub fn thermal_analysis(result: &ChipResult, rows: usize) -> Result<ThermalAnalysis, String> {
    thermal_analysis_scaled(result, rows, 1.0)
}

/// [`thermal_analysis`] with all power multiplied by `power_scale` —
/// used by the §5.3 iso-power experiment (3D stack forced to the planar
/// design's 90 W at 2.66 GHz).
pub fn thermal_analysis_scaled(
    result: &ChipResult,
    rows: usize,
    power_scale: f64,
) -> Result<ThermalAnalysis, String> {
    // The planar die has twice the linear extent of the folded one; use
    // twice the cells so both are solved at the same physical resolution.
    let (floorplan, stack, rows) = if result.variant.is_three_d() {
        (Floorplan::stacked_dual_core(), DieStack::four_die(), rows)
    } else {
        (Floorplan::planar_dual_core(), DieStack::planar(), rows * 2)
    };
    let cols = rows;
    let model = stack_model(&stack, &floorplan);
    let solver = SteadySolver::new(model, rows, cols);
    let mut grids = power_grids(result, &floorplan, rows, cols);
    for g in &mut grids {
        g.scale(power_scale);
    }
    let map = solver
        .solve_steady(&grids, &SolveOptions::default())
        .map_err(|e| e.to_string())?;

    // Per-unit peaks: max over cores and dies of the unit's footprint.
    // The clock network is distributed over the whole die, so it is not a
    // meaningful hotspot owner and is excluded.
    let mut unit_peaks = Vec::new();
    for &unit in Unit::all() {
        if unit == Unit::Clock {
            continue;
        }
        let mut peak = f64::NEG_INFINITY;
        for p in floorplan.placements().iter().filter(|p| p.unit == unit) {
            if let Some(layer) = map.layer_of_power_index(p.die) {
                let r = p.rect;
                peak = peak.max(map.max_in_rect(
                    layer,
                    r.x * 1e-3,
                    r.y * 1e-3,
                    (r.x + r.w) * 1e-3,
                    (r.y + r.h) * 1e-3,
                ));
            }
        }
        if peak.is_finite() {
            unit_peaks.push((unit, peak));
        }
    }
    Ok(ThermalAnalysis { variant: result.variant, map, floorplan, unit_peaks })
}

/// Transient heat-up: starting from a uniform ambient-temperature stack,
/// applies the chip's power and integrates with implicit-Euler steps of
/// `dt_s` seconds, returning the `(time, peak temperature)` trace.
///
/// This models the onset of a hot program phase — the scenario dynamic
/// thermal management must react to. The package's thermal time
/// constants are hundreds of milliseconds, so traces of a few seconds
/// approach the steady-state solution.
///
/// # Errors
///
/// Returns the solver error message if an integration step fails to
/// converge.
pub fn transient_heatup(
    result: &ChipResult,
    rows: usize,
    dt_s: f64,
    steps: usize,
) -> Result<Vec<(f64, f64)>, String> {
    let (floorplan, stack, rows) = if result.variant.is_three_d() {
        (Floorplan::stacked_dual_core(), DieStack::four_die(), rows)
    } else {
        (Floorplan::planar_dual_core(), DieStack::planar(), rows * 2)
    };
    let model = stack_model(&stack, &floorplan);
    let solver = SteadySolver::new(model, rows, rows);
    let grids = power_grids(result, &floorplan, rows, rows);
    let mut transient = th_thermal::TransientSolver::from_ambient(solver);
    let mut trace = Vec::with_capacity(steps + 1);
    trace.push((0.0, transient.current_map().max_temp()));
    for _ in 0..steps {
        transient.step(&grids, dt_s, &SolveOptions::default()).map_err(|e| e.to_string())?;
        trace.push((transient.elapsed_s(), transient.current_map().max_temp()));
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run_chip;
    use th_workloads::workload_by_name;

    #[test]
    fn transient_heats_monotonically_toward_steady_state() {
        let w = workload_by_name("gzip-like").unwrap();
        let r = run_chip(Variant::ThreeD, &w, 30_000).unwrap();
        let trace = transient_heatup(&r, 12, 0.05, 60).unwrap();
        for pair in trace.windows(2) {
            assert!(pair[1].1 >= pair[0].1 - 1e-9, "peak dropped: {pair:?}");
        }
        let steady = thermal_analysis(&r, 12).unwrap().peak_k();
        let final_peak = trace.last().unwrap().1;
        assert!(
            (final_peak - steady).abs() < 1.0,
            "transient end {final_peak:.2} vs steady {steady:.2}"
        );
        // The trace must actually show a transient (start near ambient).
        assert!(trace[0].1 < steady - 2.0);
    }

    #[test]
    fn planar_analysis_solves_and_heats_up() {
        let w = workload_by_name("mpeg2-like").unwrap();
        let r = run_chip(Variant::Base, &w, 40_000).unwrap();
        let t = thermal_analysis(&r, 24).unwrap();
        assert!(t.peak_k() > th_thermal::AMBIENT_K + 2.0, "peak {:.1}", t.peak_k());
        assert!(t.peak_k() < 500.0);
        assert!(!t.unit_peaks.is_empty());
    }

    #[test]
    fn stacked_analysis_has_four_power_layers() {
        let w = workload_by_name("gzip-like").unwrap();
        let r = run_chip(Variant::ThreeD, &w, 40_000).unwrap();
        let t = thermal_analysis(&r, 24).unwrap();
        for die in 0..4 {
            assert!(t.map.layer_of_power_index(die).is_some(), "die {die} missing");
        }
    }

    #[test]
    fn power_grids_conserve_chip_power() {
        let w = workload_by_name("gzip-like").unwrap();
        let r = run_chip(Variant::ThreeD, &w, 40_000).unwrap();
        let fp = Floorplan::stacked_dual_core();
        let grids = power_grids(&r, &fp, 24, 24);
        let painted: f64 = grids.iter().map(|g| g.total_watts()).sum();
        assert!(
            (painted - r.power.total_w()).abs() < 0.02 * r.power.total_w(),
            "painted {painted:.2} vs chip {:.2}",
            r.power.total_w()
        );
    }

    #[test]
    fn iso_power_scaling_scales_heat() {
        let w = workload_by_name("gzip-like").unwrap();
        let r = run_chip(Variant::ThreeDNoTh, &w, 30_000).unwrap();
        let base = thermal_analysis_scaled(&r, 20, 1.0).unwrap();
        let hot = thermal_analysis_scaled(&r, 20, 1.5).unwrap();
        let ambient = th_thermal::AMBIENT_K;
        let rise_ratio = (hot.peak_k() - ambient) / (base.peak_k() - ambient);
        assert!((rise_ratio - 1.5).abs() < 0.01, "linear scaling violated: {rise_ratio:.3}");
    }
}
