//! Chip-level runs: simulate one core, price the dual-core chip.

use crate::config::Variant;
use th_power::{DieFractionTable, PowerBreakdown, PowerModel};
use th_sim::{SimStats, Simulator};
use th_workloads::Workload;

/// Result of running a workload on the dual-core chip of §4.
///
/// Both cores run an identical instance of the workload (as in Figure 9's
/// "two identical instances of the Mpeg2 encoder"), so one core is
/// simulated and the chip statistics double it. Shared-L2 interference
/// between the cores is not modelled — a second-order effect the paper's
/// per-core activity methodology also ignores.
#[derive(Clone, Debug)]
pub struct ChipResult {
    /// The design point.
    pub variant: Variant,
    /// Workload name.
    pub workload: &'static str,
    /// Clock frequency, GHz.
    pub clock_ghz: f64,
    /// Single-core timing statistics.
    pub core_stats: SimStats,
    /// Chip-aggregated statistics (both cores).
    pub chip_stats: SimStats,
    /// Chip power.
    pub power: PowerBreakdown,
}

impl ChipResult {
    /// Per-core IPC.
    pub fn ipc(&self) -> f64 {
        self.core_stats.ipc()
    }

    /// Per-core instructions per nanosecond (Figure 8b's metric).
    pub fn ipns(&self) -> f64 {
        self.ipc() * self.clock_ghz
    }

    /// Cycles of the (representative) core — the chip's time basis.
    pub fn cycles(&self) -> u64 {
        self.core_stats.cycles
    }

    /// The run's per-unit die-fraction table — measured activity-ledger
    /// rows when the run recorded them, the modeled reconstruction
    /// otherwise.
    pub fn die_table(&self) -> DieFractionTable {
        let model = PowerModel::new();
        DieFractionTable::new(&self.chip_stats, model.energies(), &self.variant.power_config())
    }

    /// Top-die share of the run's dynamic power.
    pub fn top_die_share(&self) -> f64 {
        let model = PowerModel::new();
        th_power::top_die_share(
            &self.power,
            &self.chip_stats,
            model.energies(),
            &self.variant.power_config(),
        )
    }
}

/// Simulates `workload` at `variant` (capped at `max_insts` per core) and
/// prices the chip.
///
/// The first fifth of the instruction window is treated as warmup and
/// excluded from the reported statistics (caches and predictors stay
/// warm), mirroring SimPoint-style measurement (§4).
///
/// # Errors
///
/// Propagates [`th_isa::Trap`] from the simulator (a workload bug).
pub fn run_chip(
    variant: Variant,
    workload: &Workload,
    max_insts: u64,
) -> Result<ChipResult, th_isa::Trap> {
    let cfg = variant.sim_config();
    let budget = max_insts.min(workload.inst_budget);
    let result =
        Simulator::new(cfg).run_with_warmup(&workload.program, budget / 5, budget)?;
    let core_stats = result.stats;
    let mut chip_stats = core_stats.clone();
    chip_stats.merge(&core_stats);
    let power = PowerModel::new().compute(&chip_stats, core_stats.cycles, &variant.power_config());
    Ok(ChipResult {
        variant,
        workload: workload.name,
        clock_ghz: cfg.clock_ghz,
        core_stats,
        chip_stats,
        power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_workloads::workload_by_name;

    #[test]
    fn chip_doubles_core_activity() {
        let w = workload_by_name("gzip-like").unwrap();
        let r = run_chip(Variant::Base, &w, 30_000).unwrap();
        assert_eq!(r.chip_stats.committed, 2 * r.core_stats.committed);
        assert_eq!(r.cycles(), r.core_stats.cycles);
        assert!(r.power.total_w() > 0.0);
    }

    #[test]
    fn three_d_is_faster_and_cooler_on_compute_code() {
        let w = workload_by_name("mpeg2-like").unwrap();
        let base = run_chip(Variant::Base, &w, 60_000).unwrap();
        let three_d = run_chip(Variant::ThreeD, &w, 60_000).unwrap();
        assert!(three_d.ipns() > base.ipns() * 1.2, "speedup {:.2}", three_d.ipns() / base.ipns());
        assert!(three_d.power.total_w() < base.power.total_w());
    }
}
