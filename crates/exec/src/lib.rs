//! # th-exec: the workspace's parallel execution layer.
//!
//! A small persistent thread pool (plain `std::thread`, no dependencies)
//! with *deterministic* fan-out/reduce helpers. Work is claimed from a
//! shared atomic counter (chunked self-scheduling), but every result is
//! written to its item's own slot and reduced in item order, so the
//! output of [`Pool::map`] is **identical for any thread count** — the
//! experiment drivers rely on this to make parallel runs byte-for-byte
//! reproducible.
//!
//! Two layers:
//!
//! * [`Pool::broadcast`] — run one closure on every lane simultaneously
//!   and wait. The building block for solver-style inner loops (the
//!   red-black thermal kernel sweeps its color strips through this).
//! * [`Pool::map`] / [`Pool::map_indexed`] — dynamic self-scheduled
//!   fan-out over a work list with in-order collection.
//!
//! The global pool ([`pool()`]) is sized by the `TH_THREADS` environment
//! variable, defaulting to [`std::thread::available_parallelism`].
//! `TH_THREADS=1` forces fully sequential execution (no worker threads
//! are spawned at all).

#![deny(missing_docs)]

use std::cell::{Cell, UnsafeCell};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

thread_local! {
    /// Set while the current thread is executing a pool job; a nested
    /// fan-out from inside a job runs inline instead of re-entering the
    /// pool (the outer fan-out already owns the lanes).
    static IN_JOB: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as inside a pool job.
struct JobScope;

impl JobScope {
    fn enter() -> JobScope {
        IN_JOB.with(|f| f.set(true));
        JobScope
    }
}

impl Drop for JobScope {
    fn drop(&mut self) {
        IN_JOB.with(|f| f.set(false));
    }
}

/// A lifetime-erased broadcast job. The pointer is only dereferenced
/// between the epoch publication and the last worker's completion
/// acknowledgement, both of which happen inside [`Pool::broadcast`]'s
/// borrow of the real closure.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared invocation is safe) and the
// pool's completion barrier guarantees it outlives every dereference.
unsafe impl Send for Job {}

struct State {
    /// Incremented per broadcast; workers run one job per epoch.
    epoch: u64,
    job: Option<Job>,
    /// Workers still executing the current epoch's job.
    active: usize,
    /// A worker lane panicked during the current epoch.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The caller waits here for `active == 0`.
    done_cv: Condvar,
    /// Serialises top-level broadcasts from different threads. All pool
    /// locks recover from poisoning: a panic unwinding out of
    /// [`Pool::broadcast`] (deliberately re-raised after the barrier)
    /// must not wedge subsequent jobs.
    gate: Mutex<()>,
}

/// A persistent job pool of `threads` lanes (the calling thread is lane
/// 0; `threads - 1` workers are spawned).
pub struct Pool {
    shared: std::sync::Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Builds a pool with `threads` lanes (clamped to at least 1).
    ///
    /// `threads == 1` spawns nothing and runs everything inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            gate: Mutex::new(()),
        });
        let workers = (1..threads)
            .map(|lane| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("th-exec-{lane}"))
                    .spawn(move || worker_loop(&shared, lane))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers, threads }
    }

    /// Builds a pool sized by `TH_THREADS` (default: available
    /// parallelism).
    pub fn from_env() -> Pool {
        Pool::new(threads_from_env())
    }

    /// Number of lanes (including the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(lane)` once on every lane (0 = the caller) and waits for
    /// all lanes to finish.
    ///
    /// # Panics
    ///
    /// Re-raises a panic if any lane panicked (after all lanes finished,
    /// so shared borrows never dangle).
    pub fn broadcast<F: Fn(usize) + Sync>(&self, f: F) {
        if self.threads == 1 || IN_JOB.with(|flag| flag.get()) {
            // Sequential pool, or a nested fan-out from inside a pool
            // job: the outer fan-out already owns the lanes.
            f(0);
            return;
        }
        let _gate = self.shared.gate.lock().unwrap_or_else(|e| e.into_inner());
        let wide: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the job pointer never outlives this call — we publish
        // it, run our own lane, then block until `active == 0`.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(wide)
        });
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            debug_assert_eq!(st.active, 0, "overlapping broadcast");
            st.epoch += 1;
            st.job = Some(job);
            st.active = self.workers.len();
            st.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // Lane 0 runs on the calling thread.
        let caller = catch_unwind(AssertUnwindSafe(|| {
            let _scope = JobScope::enter();
            f(0)
        }));
        // Barrier: every worker must acknowledge before the borrow ends.
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.active > 0 {
            st = self.shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("th-exec worker lane panicked");
        }
    }

    /// Applies `f` to every item, in parallel, returning the results in
    /// **item order** regardless of thread count or scheduling.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }

    /// [`Pool::map`] over the index range `0..n`.
    pub fn map_indexed<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || n <= 1 || IN_JOB.with(|flag| flag.get()) {
            // Sequential pool, trivial fan-out, or nested inside a pool
            // job (which would run inline anyway): skip the slot vector
            // and the shared claim counter entirely.
            return (0..n).map(f).collect();
        }
        struct Slots<R>(Vec<UnsafeCell<Option<R>>>);
        // SAFETY: each slot is written by exactly one claimant (the
        // atomic counter hands out each index once).
        unsafe impl<R: Send> Sync for Slots<R> {}
        let slots = Slots((0..n).map(|_| UnsafeCell::new(None)).collect());
        let slots_ref = &slots;
        let next = AtomicUsize::new(0);
        self.broadcast(|_lane| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = f(i);
            unsafe { *slots_ref.0[i].get() = Some(r) };
        });
        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("every slot claimed and filled"))
            .collect()
    }

    /// Runs `f(i)` for every `i` in `0..n`, in parallel, discarding
    /// results. The counterpart of [`Pool::map_indexed`] for in-place
    /// work (e.g. disjoint mutation through raw pointers).
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if self.threads == 1 || n <= 1 || IN_JOB.with(|flag| flag.get()) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        self.broadcast(|_lane| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            f(i);
        });
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool").field("threads", &self.threads).finish()
    }
}

fn worker_loop(shared: &Shared, lane: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("job set with epoch");
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _scope = JobScope::enter();
            // SAFETY: `broadcast` keeps the closure alive until every
            // worker decrements `active` below.
            (unsafe { &*job.0 })(lane)
        }));
        let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if result.is_err() {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Reads and parses an environment knob, warning **once per variable**
/// on stderr when a value is present but malformed (previously such
/// values were silently swallowed and the default took over without a
/// trace). An unset variable is a silent `None`; `parse` returning
/// `None` marks the value malformed.
///
/// `expected` describes the accepted format for the warning message,
/// e.g. `"a thread count >= 1"`.
pub fn env_knob<T>(name: &str, expected: &str, parse: impl FnOnce(&str) -> Option<T>) -> Option<T> {
    let value = std::env::var(name).ok()?;
    match parse(&value) {
        Some(v) => Some(v),
        None => {
            let mut warned = knob_warnings().lock().unwrap_or_else(|e| e.into_inner());
            if warned.insert(name.to_string()) {
                eprintln!(
                    "warning: ignoring malformed {name}={value:?}: expected {expected}"
                );
            }
            None
        }
    }
}

/// [`env_knob`] for any [`std::str::FromStr`] type (trimmed input).
pub fn env_knob_parse<T: std::str::FromStr>(name: &str, expected: &str) -> Option<T> {
    env_knob(name, expected, |s| s.trim().parse().ok())
}

/// Names that have already produced a malformed-value warning.
fn knob_warnings() -> &'static Mutex<std::collections::BTreeSet<String>> {
    static WARNED: OnceLock<Mutex<std::collections::BTreeSet<String>>> = OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(std::collections::BTreeSet::new()))
}

#[cfg(test)]
fn knob_warned(name: &str) -> bool {
    knob_warnings().lock().unwrap_or_else(|e| e.into_inner()).contains(name)
}

/// Thread count from `TH_THREADS`, defaulting to available parallelism.
/// Malformed values (unparsable, or zero) warn once and fall back.
pub fn threads_from_env() -> usize {
    env_knob("TH_THREADS", "a thread count >= 1", |s| {
        s.trim().parse::<usize>().ok().filter(|n| *n >= 1)
    })
    .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The process-wide pool, lazily built from [`threads_from_env`].
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(Pool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            let got = pool.map(&items, |x| x * x);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn broadcast_visits_every_lane() {
        let pool = Pool::new(4);
        let mask = AtomicUsize::new(0);
        pool.broadcast(|lane| {
            mask.fetch_or(1 << lane, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn for_each_index_covers_all_work() {
        let pool = Pool::new(3);
        let sum = AtomicU64::new(0);
        pool.for_each_index(1000, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = Pool::new(4);
        for round in 0..50 {
            let v = pool.map_indexed(round + 1, |i| i);
            assert_eq!(v, (0..=round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let tid = std::thread::current().id();
        pool.broadcast(|_| assert_eq!(std::thread::current().id(), tid));
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = Pool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_indexed(8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable after a panicked job.
        assert_eq!(pool.map_indexed(3, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn nested_fan_out_runs_inline() {
        // A fan-out from inside a pool job must complete inline on the
        // calling lane (re-entering the pool would deadlock on the gate).
        let pool = Pool::new(4);
        let outer = pool.map_indexed(4, |i| {
            let tid = std::thread::current().id();
            let inner = pool.map_indexed(3, |j| {
                assert_eq!(std::thread::current().id(), tid);
                i * 10 + j
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(outer, vec![3, 33, 63, 93]);
    }

    #[test]
    fn env_override_parses() {
        // Only checks the parser default path: no TH_THREADS → >= 1.
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn knob_unset_is_silently_none() {
        assert_eq!(env_knob_parse::<usize>("TH_TEST_KNOB_UNSET", "an integer"), None);
        assert!(!knob_warned("TH_TEST_KNOB_UNSET"));
    }

    #[test]
    fn knob_parses_well_formed_values() {
        std::env::set_var("TH_TEST_KNOB_OK", " 42 ");
        assert_eq!(env_knob_parse::<usize>("TH_TEST_KNOB_OK", "an integer"), Some(42));
        assert!(!knob_warned("TH_TEST_KNOB_OK"));
    }

    #[test]
    fn knob_warns_once_on_malformed_values() {
        std::env::set_var("TH_TEST_KNOB_BAD", "not-a-number");
        for _ in 0..3 {
            assert_eq!(env_knob_parse::<usize>("TH_TEST_KNOB_BAD", "an integer"), None);
        }
        assert!(knob_warned("TH_TEST_KNOB_BAD"));
    }

    #[test]
    fn knob_domain_filter_marks_value_malformed() {
        // A parsable value outside the accepted domain (here: zero) is
        // rejected — and warned about — exactly like garbage.
        std::env::set_var("TH_TEST_KNOB_ZERO", "0");
        let got = env_knob("TH_TEST_KNOB_ZERO", "a count >= 1", |s| {
            s.trim().parse::<usize>().ok().filter(|n| *n >= 1)
        });
        assert_eq!(got, None);
        assert!(knob_warned("TH_TEST_KNOB_ZERO"));
    }
}
