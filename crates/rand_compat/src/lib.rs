//! Offline stand-in for the `rand` crate (0.8 line).
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` it actually uses. The generator is
//! **bit-exact** with `rand 0.8.5`'s `StdRng` — ChaCha12 seeded through
//! the PCG32-based `seed_from_u64` expansion — and the `gen`/`gen_range`/
//! `gen_bool` sampling follows the same algorithms (widening-multiply
//! rejection for integers, 52-bit mantissa floats, 64-bit Bernoulli), so
//! every workload built from a fixed seed reproduces the exact byte
//! streams the experiment calibration was performed against.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}

/// A random number generator: the `rand_core` pair of primitives.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be built from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 output function,
    /// exactly as `rand_core 0.6` does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod std_rng {
    use super::{RngCore, SeedableRng};

    /// ChaCha block function: `rounds` rounds over the 16-word state.
    fn chacha_block(state: &[u32; 16], rounds: usize, out: &mut [u32; 16]) {
        let mut x = *state;
        for _ in 0..rounds / 2 {
            // Column round followed by diagonal round.
            for &(a, b, c, d) in &[
                (0, 4, 8, 12),
                (1, 5, 9, 13),
                (2, 6, 10, 14),
                (3, 7, 11, 15),
                (0, 5, 10, 15),
                (1, 6, 11, 12),
                (2, 7, 8, 13),
                (3, 4, 9, 14),
            ] {
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(16);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(12);
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(8);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(7);
            }
        }
        for i in 0..16 {
            out[i] = x[i].wrapping_add(state[i]);
        }
    }

    /// `rand 0.8`'s `StdRng`: ChaCha12 behind a 4-block (64-word) output
    /// buffer with `rand_core::BlockRng` consumption semantics.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        /// Key words (seed), little-endian.
        key: [u32; 8],
        /// 64-bit block counter (words 12–13) and stream id (14–15, zero).
        counter: u64,
        /// Buffered output: four sequential blocks.
        results: [u32; 64],
        /// Next word to consume; `64` means the buffer is exhausted.
        index: usize,
    }

    impl StdRng {
        fn generate(&mut self) {
            for block in 0..4 {
                let ctr = self.counter.wrapping_add(block as u64);
                let state: [u32; 16] = [
                    0x6170_7865,
                    0x3320_646e,
                    0x7962_2d32,
                    0x6b20_6574,
                    self.key[0],
                    self.key[1],
                    self.key[2],
                    self.key[3],
                    self.key[4],
                    self.key[5],
                    self.key[6],
                    self.key[7],
                    ctr as u32,
                    (ctr >> 32) as u32,
                    0,
                    0,
                ];
                let mut out = [0u32; 16];
                chacha_block(&state, 12, &mut out);
                self.results[block * 16..block * 16 + 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
        }

        fn generate_and_set(&mut self, index: usize) {
            self.generate();
            self.index = index;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut key = [0u32; 8];
            for (i, chunk) in seed.chunks_exact(4).enumerate() {
                key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng { key, counter: 0, results: [0; 64], index: 64 }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= 64 {
                self.generate_and_set(0);
            }
            let value = self.results[self.index];
            self.index += 1;
            value
        }

        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < 63 {
                self.index += 2;
                u64::from(self.results[index]) | (u64::from(self.results[index + 1]) << 32)
            } else if index >= 64 {
                self.generate_and_set(2);
                u64::from(self.results[0]) | (u64::from(self.results[1]) << 32)
            } else {
                let x = u64::from(self.results[63]);
                self.generate_and_set(1);
                let y = u64::from(self.results[0]);
                (y << 32) | x
            }
        }
    }
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_via_u32 {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.next_u32() as $ty
            }
        }
    )*}
}
standard_via_u32!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_via_u64 {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*}
}
standard_via_u64!(u64, i64, usize, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        // rand 0.8: one u32, low bit.
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53-bit uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Draws from `low..high` (exclusive) or `low..=high` (inclusive).
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Widening multiply returning `(high, low)` words.
trait WideningMul: Sized {
    fn wmul(self, rhs: Self) -> (Self, Self);
}

impl WideningMul for u32 {
    fn wmul(self, rhs: u32) -> (u32, u32) {
        let p = self as u64 * rhs as u64;
        ((p >> 32) as u32, p as u32)
    }
}

impl WideningMul for u64 {
    fn wmul(self, rhs: u64) -> (u64, u64) {
        let p = self as u128 * rhs as u128;
        ((p >> 64) as u64, p as u64)
    }
}

impl WideningMul for usize {
    fn wmul(self, rhs: usize) -> (usize, usize) {
        let (h, l) = (self as u64).wmul(rhs as u64);
        (h as usize, l as usize)
    }
}

// Integer uniform sampling, following rand 0.8.5's `uniform_int_impl!`:
// widening-multiply with a leading-zeros rejection zone (a modulus zone
// for the 8/16-bit types).
macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                low: $ty,
                mut high: $ty,
                inclusive: bool,
                rng: &mut R,
            ) -> $ty {
                if !inclusive {
                    assert!(low < high, "cannot sample empty range");
                    high -= 1;
                }
                assert!(low <= high, "cannot sample empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full type domain: any value works.
                    return <$ty as Standard>::sample(rng);
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // The modulus zone must live in the $u_large domain
                    // the widening multiply's low word is compared in —
                    // a $unsigned-domain zone would reject almost every
                    // draw and spin for millions of iterations.
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = <$u_large as Standard>::sample(rng);
                    let (hi, lo) = v.wmul(range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int!(i8, u8, u32);
uniform_int!(i16, u16, u32);
uniform_int!(i32, u32, u32);
uniform_int!(i64, u64, u64);
uniform_int!(u8, u8, u32);
uniform_int!(u16, u16, u32);
uniform_int!(u32, u32, u32);
uniform_int!(u64, u64, u64);
uniform_int!(usize, usize, usize);

macro_rules! uniform_float {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bits:expr) => {
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                inclusive: bool,
                rng: &mut R,
            ) -> $ty {
                assert!(!inclusive, "inclusive float ranges are not supported by the shim");
                assert!(low < high, "cannot sample empty range");
                let scale = high - low;
                loop {
                    // A value in [1, 2): exponent 0, random mantissa.
                    let mantissa = <$uty as Standard>::sample(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(mantissa | $exponent_bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }
        }
    };
}

uniform_float!(f64, u64, 12, 1023u64 << 52);
uniform_float!(f32, u32, 9, 127u32 << 23);

/// The user-facing sampling interface (the subset this workspace uses).
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        // rand 0.8 Bernoulli: p scaled to the full u64 domain.
        let p_int = (p * 2.0 * (1u64 << 63) as f64) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_and_stable_across_clones() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = a.clone();
        assert_eq!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-9i64..=9);
            assert!((-9..=9).contains(&w));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn narrow_integer_ranges_terminate_and_cover_their_domain() {
        // Regression: the 8/16-bit modulus zone was computed in the
        // narrow domain, rejecting ~all u32 draws and spinning for
        // millions of iterations per sample.
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [0u32; 16];
        for _ in 0..10_000 {
            seen[rng.gen_range(0u8..16) as usize] += 1;
            let v = rng.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&v));
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 0, "u8 range never produced {i}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn mixed_u32_u64_consumption_is_consistent() {
        // Exercises all three BlockRng::next_u64 paths across refills.
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0u64;
        for i in 0..1000 {
            if i % 3 == 0 {
                acc ^= rng.next_u32() as u64;
            } else {
                acc ^= rng.next_u64();
            }
        }
        let mut rng2 = StdRng::seed_from_u64(9);
        let mut acc2 = 0u64;
        for i in 0..1000 {
            if i % 3 == 0 {
                acc2 ^= rng2.next_u32() as u64;
            } else {
                acc2 ^= rng2.next_u64();
            }
        }
        assert_eq!(acc, acc2);
    }
}
