//! Caches, TLBs, and the memory hierarchy (Table 1).

use crate::config::{MemConfig, SimConfig};

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles.
    pub latency: u64,
}

/// Which level a memory access was serviced from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheKind {
    /// Hit in the L1 (I or D).
    L1,
    /// Missed L1, hit L2.
    L2,
    /// Missed both; went to DRAM.
    Dram,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with true LRU.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if sets or line size are not powers of two, or ways is 0.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache needs at least one way");
        Cache { cfg, lines: vec![Line::default(); cfg.sets * cfg.ways], tick: 0 }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.sets as u64 * self.cfg.ways as u64 * self.cfg.line_bytes
    }

    fn set_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) as usize) & (self.cfg.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets as u64
    }

    /// Probes for `addr` without fills or LRU updates.
    pub fn probe(&self, addr: u64) -> bool {
        let base = self.set_of(addr) * self.cfg.ways;
        let tag = self.tag_of(addr);
        self.lines[base..base + self.cfg.ways].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`; on a miss, fills the line (evicting LRU).
    ///
    /// Returns `(hit, evicted_dirty_line_addr)`.
    pub fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        self.tick += 1;
        let set = self.set_of(addr);
        let base = set * self.cfg.ways;
        let tag = self.tag_of(addr);
        for l in &mut self.lines[base..base + self.cfg.ways] {
            if l.valid && l.tag == tag {
                l.lru = self.tick;
                l.dirty |= write;
                return (true, None);
            }
        }
        // Miss: pick victim (prefer invalid, else LRU).
        let victim = self.lines[base..base + self.cfg.ways]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("ways > 0");
        let evicted = if victim.valid && victim.dirty {
            Some(
                (victim.tag * self.cfg.sets as u64 + set as u64) * self.cfg.line_bytes,
            )
        } else {
            None
        };
        *victim = Line { valid: true, dirty: write, tag, lru: self.tick };
        (false, evicted)
    }
}

/// A set-associative TLB (modelled as a small cache of page numbers).
#[derive(Clone, Debug)]
pub struct Tlb {
    cache: Cache,
    page_bytes: u64,
}

impl Tlb {
    /// Builds a TLB with `entries` total entries at associativity `ways`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not divisible into power-of-two sets.
    pub fn new(entries: usize, ways: usize, page_bytes: u64) -> Tlb {
        let sets = entries / ways;
        Tlb {
            cache: Cache::new(CacheConfig { sets, ways, line_bytes: page_bytes, latency: 0 }),
            page_bytes,
        }
    }

    /// Translates `addr`; returns whether it hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.cache.access(addr, false).0
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }
}

/// Result of a hierarchy access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles (including any TLB-miss penalty).
    pub cycles: u64,
    /// Deepest level reached.
    pub level: CacheKind,
    /// Whether the TLB missed.
    pub tlb_miss: bool,
    /// L1→L2 or L2→L1 line transfers performed (fills + dirty
    /// writebacks) — each touches all four dies of both caches (§3.6).
    pub spill_fills: u64,
}

/// The full memory hierarchy: split L1s, TLBs, unified L2, DRAM.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    itlb: Tlb,
    dtlb: Tlb,
    tlb_miss_penalty: u64,
    dram_cycles: u64,
    l2_latency: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a simulator configuration.
    pub fn new(cfg: &SimConfig) -> MemoryHierarchy {
        let m: &MemConfig = &cfg.mem;
        let mk = |geom: (usize, usize), latency: u64| {
            Cache::new(CacheConfig {
                sets: geom.0,
                ways: geom.1,
                line_bytes: m.line_bytes,
                latency,
            })
        };
        MemoryHierarchy {
            l1i: mk(m.l1i, m.l1_latency),
            l1d: mk(m.l1d, m.l1_latency),
            l2: mk(m.l2, cfg.pipeline.l2_latency),
            itlb: Tlb::new(m.itlb.0, m.itlb.1, m.page_bytes),
            dtlb: Tlb::new(m.dtlb.0, m.dtlb.1, m.page_bytes),
            tlb_miss_penalty: m.tlb_miss_penalty,
            dram_cycles: cfg.dram_cycles(),
            l2_latency: cfg.pipeline.l2_latency,
        }
    }

    /// Reprices the clock-dependent latencies after a frequency change
    /// (DVFS): DRAM is fixed in nanoseconds, so its cycle count scales
    /// with the clock. Cache *contents* are untouched — only timing moves.
    pub fn retime(&mut self, cfg: &SimConfig) {
        self.dram_cycles = cfg.dram_cycles();
        self.l2_latency = cfg.pipeline.l2_latency;
    }

    fn through_l2(&mut self, addr: u64) -> (u64, CacheKind, u64) {
        let (l2_hit, l2_evict) = self.l2.access(addr, false);
        let mut transfers = 1; // the L1 fill itself
        if l2_evict.is_some() {
            transfers += 1;
        }
        if l2_hit {
            (self.l2_latency, CacheKind::L2, transfers)
        } else {
            (self.l2_latency + self.dram_cycles, CacheKind::Dram, transfers)
        }
    }

    /// Instruction fetch at `addr`.
    pub fn fetch(&mut self, addr: u64) -> AccessResult {
        let tlb_hit = self.itlb.access(addr);
        let mut cycles = if tlb_hit { 0 } else { self.tlb_miss_penalty };
        let (hit, evicted) = self.l1i.access(addr, false);
        cycles += self.l1i.config().latency;
        let mut spill_fills = 0;
        let mut level = CacheKind::L1;
        if !hit {
            let (extra, lvl, transfers) = self.through_l2(addr);
            cycles += extra;
            level = lvl;
            spill_fills += transfers;
        }
        if let Some(victim) = evicted {
            self.l2.access(victim, true);
            spill_fills += 1;
        }
        AccessResult { cycles, level, tlb_miss: !tlb_hit, spill_fills }
    }

    /// Data access at `addr` (`write` = store).
    pub fn data_access(&mut self, addr: u64, write: bool) -> AccessResult {
        let tlb_hit = self.dtlb.access(addr);
        let mut cycles = if tlb_hit { 0 } else { self.tlb_miss_penalty };
        let (hit, evicted) = self.l1d.access(addr, write);
        cycles += self.l1d.config().latency;
        let mut spill_fills = 0;
        let mut level = CacheKind::L1;
        if !hit {
            let (extra, lvl, transfers) = self.through_l2(addr);
            cycles += extra;
            level = lvl;
            spill_fills += transfers;
        }
        if let Some(victim) = evicted {
            self.l2.access(victim, true);
            spill_fills += 1;
        }
        AccessResult { cycles, level, tlb_miss: !tlb_hit, spill_fills }
    }

    /// Probes whether `addr` currently hits in the L1-D (no state change).
    pub fn l1d_probe(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig { sets: 4, ways: 2, line_bytes: 64, latency: 3 })
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = small();
        let (hit, _) = c.access(0x100, false);
        assert!(!hit);
        let (hit, _) = c.access(0x13f, false); // same 64B line
        assert!(hit);
        let (hit, _) = c.access(0x140, false); // next line
        assert!(!hit);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = line*sets = 256).
        c.access(0x000, false); // A
        c.access(0x100, false); // B
        c.access(0x000, false); // touch A
        c.access(0x200, false); // C evicts B (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_eviction_reports_victim_address() {
        let mut c = small();
        c.access(0x000, true); // dirty A
        c.access(0x100, false); // B
        let (_, evicted) = c.access(0x200, false); // evicts A
        assert_eq!(evicted, Some(0x000));
        // Clean eviction reports nothing.
        let (_, evicted) = c.access(0x300, false); // evicts B (clean)
        assert_eq!(evicted, None);
    }

    #[test]
    fn capacity_matches_table1() {
        let cfg = SimConfig::baseline();
        let h = MemoryHierarchy::new(&cfg);
        assert_eq!(h.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(h.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(h.l2.capacity_bytes(), 4 * 1024 * 1024);
    }

    #[test]
    fn hierarchy_latencies() {
        let cfg = SimConfig::baseline();
        let mut h = MemoryHierarchy::new(&cfg);
        // Cold: TLB miss + L1 miss + L2 miss + DRAM.
        let r = h.data_access(0x10_000, false);
        assert_eq!(r.level, CacheKind::Dram);
        assert!(r.tlb_miss);
        assert_eq!(r.cycles, 30 + 3 + 12 + 200);
        // Warm: L1 hit.
        let r = h.data_access(0x10_000, false);
        assert_eq!(r.level, CacheKind::L1);
        assert!(!r.tlb_miss);
        assert_eq!(r.cycles, 3);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = SimConfig::baseline();
        let mut h = MemoryHierarchy::new(&cfg);
        // Fill one L1-D set (8 ways, set stride 64*64 = 4096) + 1 to evict.
        // Use the same page so TLB effects vanish after the first access...
        // page is 4096 so use the itlb-free path: pre-touch pages.
        for i in 0..9u64 {
            h.data_access(i * 4096, false);
        }
        // First line was evicted from L1 but lives in L2.
        let r = h.data_access(0, false);
        assert_eq!(r.level, CacheKind::L2);
        assert_eq!(r.cycles, 3 + 12);
    }

    #[test]
    fn tlb_covers_pages() {
        let mut t = Tlb::new(8, 4, 4096);
        assert!(!t.access(0x0));
        assert!(t.access(0xfff)); // same page
        assert!(!t.access(0x1000)); // next page
    }

    #[test]
    fn spill_fill_counting() {
        let cfg = SimConfig::baseline();
        let mut h = MemoryHierarchy::new(&cfg);
        let r = h.data_access(0x2000, false);
        // One L1 fill transfer (plus the L2's own fill from DRAM).
        assert!(r.spill_fills >= 1);
        let r = h.data_access(0x2000, false);
        assert_eq!(r.spill_fills, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1, line_bytes: 64, latency: 1 });
    }
}
