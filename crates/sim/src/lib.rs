//! # Cycle-level out-of-order superscalar simulator.
//!
//! This crate plays the role SimpleScalar/MASE played in the paper (§4):
//! an execution-driven timing model of a Core 2-class processor (Table 1)
//! with every Thermal Herding mechanism wired into the pipeline:
//!
//! * width prediction at dispatch, with the paper's penalty model —
//!   one stall per register-read group on an unsafe operand
//!   misprediction (§3.1), a one-cycle re-enable at execute (§3.2),
//!   re-execution on an output-width misprediction (§3.2), a one-cycle
//!   data-cache pipeline stall (§3.6), and a one-cycle front-end stall
//!   when a BTB target needs its upper bits (§3.7);
//! * a 3D-aware reservation-station allocator that herds instructions
//!   toward the top die and gates per-die tag broadcasts (§3.4);
//! * partial address memoization in the load/store queues (§3.5);
//! * the two-bit partial value encoding in the L1 data cache (§3.6).
//!
//! The timing model is *oracle driven*: `th_isa::Machine` executes the
//! program architecturally and the pipeline charges cycles against the
//! resulting [`th_isa::DynInst`] stream. Wrong-path instructions are not
//! fetched (their I-cache pollution is second-order); mispredicted
//! branches instead stall fetch until the branch resolves plus the
//! redirect penalty, reproducing the paper's "min 14 cycles" (Table 1).
//!
//! ## Example
//!
//! ```
//! use th_isa::parse_asm;
//! use th_sim::{SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_asm("
//!     li   x1, 0
//!     li   x2, 1000
//! loop:
//!     addi x1, x1, 1
//!     bne  x1, x2, loop
//!     halt
//! ")?;
//! let result = Simulator::new(SimConfig::baseline()).run(&program, 10_000)?;
//! assert!(result.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

mod branch;
mod cache;
mod config;
mod core;
mod lsq;
mod scheduler;
mod stats;

pub use crate::core::{SimResult, SimSession, Simulator};
pub use branch::{BranchPredictor, BranchUpdate, Btb, BtbOutcome, ReturnStack};
pub use cache::{Cache, CacheConfig, CacheKind, MemoryHierarchy, Tlb};
pub use config::{
    default_engine, set_default_engine, CoreEngine, CoreParams, FuLatencies, HerdingConfig,
    MemConfig, PipelineConfig, SimConfig,
};
pub use scheduler::{AllocPolicy, Scheduler};
pub use stats::SimStats;
