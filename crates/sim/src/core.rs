//! The out-of-order pipeline: fetch → dispatch → issue/execute → commit.
//!
//! Cycle ordering within the loop is commit, completion processing, issue,
//! dispatch, fetch — so a result completing in cycle *c* can wake a
//! dependant that issues in cycle *c* (modelling the bypass network), and
//! a slot freed at commit is reusable the same cycle.
//!
//! Two interchangeable engines drive the loop (see
//! [`crate::CoreEngine`]). `Scan` walks the whole ROB every cycle.
//! `Event` replaces the walks with a completion-event heap, per-producer
//! wakeup lists, an explicit ready queue ordered by age, and idle-cycle
//! skipping: when no stage can make progress before cycle *T* it jumps
//! `cycle` straight to *T*, batch-charging the per-cycle stall statistics
//! for the skipped window. Both engines must produce bit-identical
//! [`SimStats`]; `engine_equivalence` tests and a golden fixture lock the
//! invariant in.

use crate::branch::{BranchPredictor, Btb, ReturnStack};
use crate::cache::{CacheKind, MemoryHierarchy};
use crate::config::{CoreEngine, SimConfig};
use crate::lsq::{LoadSearch, Lsq};
use crate::scheduler::{AllocPolicy, Scheduler};
use crate::stats::SimStats;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};
use th_isa::{DynInst, FuClass, Machine, Op, OpClass, Program, Trap};
use th_stack3d::Unit;
use th_width::{
    PartialAddressMemoizer, UpperEncoding, Width, WidthMemoFile, WidthPredictor,
};

/// Outcome of a completed simulation.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Clock frequency the run was priced at, GHz.
    pub clock_ghz: f64,
    /// All counters.
    pub stats: SimStats,
}

impl SimResult {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Committed instructions per nanosecond (Figure 8b's metric):
    /// IPC × frequency.
    pub fn ipns(&self) -> f64 {
        self.stats.ipc() * self.clock_ghz
    }

    /// Wall-clock seconds simulated.
    pub fn seconds(&self) -> f64 {
        self.stats.cycles as f64 / (self.clock_ghz * 1e9)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    /// Dispatched, waiting in a reservation station.
    Waiting,
    /// Issued to a functional unit.
    Issued,
    /// Result available.
    Done,
}

#[derive(Clone, Debug)]
struct Slot {
    di: DynInst,
    state: SlotState,
    rs_die: Option<usize>,
    src_seq: [Option<u64>; 2],
    complete_at: u64,
    /// Branch whose direction/target was mispredicted at fetch.
    mispredicted: bool,
    pred_width: Width,
    in_width: Width,
    out_width: Width,
    unsafe_in: bool,
    unsafe_out: bool,
    /// Set once writeback statistics have been recorded.
    wrote_back: bool,
    /// Event engine: number of unresolved source operands.
    deps: u8,
    /// Event engine: the completion event has fired, so the result is
    /// visible to consumers (equivalent to `Done && complete_at <= cycle`).
    visible: bool,
}

#[derive(Clone, Debug)]
struct FetchedInst {
    di: DynInst,
    dispatch_ready_at: u64,
    mispredicted: bool,
    /// The one-per-group register-read width stall has been applied.
    rf_charged: bool,
}

/// Event engine: per-producer wakeup lists keyed by sequence number on a
/// power-of-two ring. The ring spans one full ROB plus a commit group, so
/// the sequence numbers live at any instant (in-flight producers, plus
/// producers committed earlier in the cycle whose completion event fires
/// this cycle) can never collide.
#[derive(Clone, Debug)]
struct WaiterTable {
    ring: Vec<Vec<u64>>,
    mask: u64,
}

/// Per-cycle free functional-unit budget, reset at every issue stage.
struct FuFree {
    alu: usize,
    shift: usize,
    mul: usize,
    fp_add: usize,
    fp_mul: usize,
    fp_div: usize,
    st_ports: usize,
    ld_ports: usize,
}

impl FuFree {
    fn new(core: &crate::config::CoreParams) -> FuFree {
        FuFree {
            alu: core.int_alu,
            shift: core.int_shift,
            mul: core.int_mul,
            fp_add: core.fp_add,
            fp_mul: core.fp_mul,
            fp_div: core.fp_div,
            st_ports: core.mem_ports,
            ld_ports: core.mem_ports + core.load_only_ports,
        }
    }
}

impl WaiterTable {
    fn new(rob_size: usize, commit_width: usize) -> WaiterTable {
        let cap = (rob_size + commit_width + 1).next_power_of_two();
        WaiterTable { ring: vec![Vec::new(); cap], mask: cap as u64 - 1 }
    }

    fn add(&mut self, producer: u64, consumer: u64) {
        self.ring[(producer & self.mask) as usize].push(consumer);
    }

    /// Takes the wakeup list for `producer`; return the (cleared) vector
    /// with [`WaiterTable::put_back`] to recycle its allocation.
    fn take(&mut self, producer: u64) -> Vec<u64> {
        std::mem::take(&mut self.ring[(producer & self.mask) as usize])
    }

    fn put_back(&mut self, producer: u64, mut list: Vec<u64>) {
        list.clear();
        self.ring[(producer & self.mask) as usize] = list;
    }
}

/// The simulator: configure once, run programs.
#[derive(Clone, Debug)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: SimConfig) -> Simulator {
        Simulator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `program` until it halts or `max_insts` instructions commit.
    ///
    /// # Errors
    ///
    /// Propagates [`th_isa::Trap::IllegalPc`] if the program runs off its
    /// text segment.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline deadlocks (an internal invariant violation,
    /// guarded by a commit watchdog).
    pub fn run(&self, program: &Program, max_insts: u64) -> Result<SimResult, Trap> {
        Core::new(&self.cfg, program).run(0, max_insts)
    }

    /// Like [`Simulator::run`], but discards the first `warmup_insts`
    /// committed instructions from the reported statistics. Caches,
    /// predictors, and all other state stay warm across the boundary —
    /// this mirrors SimPoint-style measurement where cold-start effects
    /// are excluded from the window.
    ///
    /// # Errors
    ///
    /// Propagates [`th_isa::Trap::IllegalPc`] like [`Simulator::run`].
    pub fn run_with_warmup(
        &self,
        program: &Program,
        warmup_insts: u64,
        max_insts: u64,
    ) -> Result<SimResult, Trap> {
        Core::new(&self.cfg, program).run(warmup_insts, max_insts)
    }
}

/// An incremental simulation: the same pipeline as [`Simulator::run`],
/// advanced in caller-controlled cycle intervals with the configuration
/// adjustable *between* intervals. This is the co-simulation entry point —
/// a thermal control loop runs an interval, reads the activity delta from
/// [`SimSession::stats`], and feeds back a DVFS or fetch-throttle decision
/// before the next interval.
///
/// Interval boundaries are invisible to the simulation: chopping a run
/// into any sequence of intervals (with no knob changes) produces
/// bit-identical statistics to one uninterrupted [`Simulator::run`].
///
/// ```no_run
/// use th_sim::{SimConfig, SimSession};
/// # let program = th_isa::parse_asm("halt").unwrap();
/// let mut sess = SimSession::new(SimConfig::baseline(), &program);
/// let before = sess.stats().snapshot();
/// sess.run_interval(100_000).unwrap();
/// let delta = sess.stats().delta(&before); // this interval's activity
/// sess.set_clock_ghz(2.0); // throttle the next interval
/// ```
#[derive(Clone, Debug)]
pub struct SimSession {
    core: Core,
    finished: bool,
}

impl SimSession {
    /// Starts a session at cycle 0 with cold caches and predictors.
    pub fn new(cfg: SimConfig, program: &Program) -> SimSession {
        SimSession { core: Core::new(&cfg, program), finished: false }
    }

    /// Runs at most `cycle_budget` further cycles (at least 1). Returns
    /// whether the program has finished — halted with the pipeline
    /// drained. Once finished, further calls are no-ops until
    /// [`SimSession::restart`].
    ///
    /// # Errors
    ///
    /// Propagates [`th_isa::Trap::IllegalPc`] like [`Simulator::run`].
    ///
    /// # Panics
    ///
    /// Panics on pipeline deadlock, like [`Simulator::run`].
    pub fn run_interval(&mut self, cycle_budget: u64) -> Result<bool, Trap> {
        if !self.finished {
            let until = self.core.cycle.saturating_add(cycle_budget.max(1));
            let mut no_warmup = None;
            self.finished = self.core.run_until(0, u64::MAX, until, &mut no_warmup)?;
            debug_assert!(no_warmup.is_none());
        }
        // Sync the derived counters so `stats()` prices as-is.
        self.core.stats.cycles = self.core.cycle.max(1);
        self.core.stats.width_pred = *self.core.width_pred.stats();
        self.core.stats.pam = *self.core.pam.stats();
        Ok(self.finished)
    }

    /// Cumulative statistics since the session started (across restarts).
    /// Snapshot before an interval and [`SimStats::delta`] after it for
    /// the per-interval activity.
    pub fn stats(&self) -> &SimStats {
        &self.core.stats
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.core.cycle
    }

    /// Whether the program has halted and the pipeline drained.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The current (possibly DTM-adjusted) configuration.
    pub fn config(&self) -> &SimConfig {
        &self.core.cfg
    }

    /// Changes the clock for subsequent intervals (DVFS). Latencies fixed
    /// in wall-clock time — DRAM — are repriced in cycles; cache and
    /// predictor state is untouched.
    pub fn set_clock_ghz(&mut self, ghz: f64) {
        self.core.cfg.clock_ghz = ghz;
        self.core.hierarchy.retime(&self.core.cfg);
    }

    /// Changes the fetch width for subsequent intervals (fetch throttling).
    /// Clamped to `1..=ifq_size`.
    pub fn set_fetch_width(&mut self, width: usize) {
        self.core.cfg.core.fetch_width = width.clamp(1, self.core.cfg.core.ifq_size);
    }

    /// Re-runs `program` from its entry point with warm caches and
    /// predictors; cycles and statistics keep accumulating. Use after
    /// [`SimSession::run_interval`] reports the program finished, to model
    /// a workload that loops for the whole co-simulation window.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the pipeline has drained.
    pub fn restart(&mut self, program: &Program) {
        self.core.restart(program);
        self.finished = false;
    }
}

#[derive(Clone, Debug)]
struct Core {
    cfg: SimConfig,
    machine: Machine,
    stats: SimStats,
    hierarchy: MemoryHierarchy,
    bpred: BranchPredictor,
    btb: Btb,
    ibtb: Btb,
    ras: ReturnStack,
    width_pred: WidthPredictor,
    /// §3.1: the per-register width memoization bits on the top die. With
    /// in-order dispatch the bits are updated in program order, so a read
    /// always sees its producer's width.
    width_memo: WidthMemoFile,
    pam: PartialAddressMemoizer,
    scheduler: Scheduler,
    lsq: Lsq,
    ifq: VecDeque<FetchedInst>,
    rob: VecDeque<Slot>,
    rob_head_seq: u64,
    rename: [Option<u64>; 64],
    cycle: u64,
    /// Fetch is stalled until this cycle (I-cache misses, BTB bubbles,
    /// redirect recovery).
    fetch_resume_at: u64,
    /// Sequence number of an unresolved mispredicted branch: fetch is
    /// blocked until it completes.
    redirect_pending: Option<u64>,
    fetch_done: bool,
    /// Non-pipelined units.
    int_div_busy_until: u64,
    fp_div_busy_until: u64,
    /// IFQ entries with `dispatch_ready_at <= cycle`. Front-end depth is
    /// constant, so matured entries always form a queue prefix and the
    /// count replaces the per-cycle `iter().filter().count()`.
    ifq_matured: usize,
    /// Event engine: pending completion events as `(cycle, seq)` min-heap.
    ev_heap: BinaryHeap<Reverse<(u64, u64)>>,
    /// Event engine: waiting slots whose operands are all resolved,
    /// ordered oldest-first (matching the scan engine's issue priority).
    ev_ready: BTreeSet<u64>,
    /// Event engine: who to wake when a producer's result becomes visible.
    ev_waiters: WaiterTable,
    /// Reused snapshot buffer for the issue stage.
    ready_scratch: Vec<u64>,
    /// Deadlock-watchdog anchor: the last cycle anything committed.
    last_commit_cycle: u64,
}

impl Core {
    fn new(cfg: &SimConfig, program: &Program) -> Core {
        let policy = if cfg.herding.enabled && cfg.herding.rs_herding {
            AllocPolicy::HerdTopFirst
        } else {
            AllocPolicy::RoundRobin
        };
        Core {
            cfg: *cfg,
            machine: Machine::new(program),
            stats: SimStats::default(),
            hierarchy: MemoryHierarchy::new(cfg),
            bpred: BranchPredictor::new(),
            btb: Btb::new(512, 4), // 2K entries
            ibtb: Btb::new(128, 4), // 512 entries
            ras: ReturnStack::new(16),
            width_pred: WidthPredictor::new(cfg.herding.predictor_entries),
            width_memo: WidthMemoFile::new(th_isa::Reg::COUNT, cfg.herding.policy),
            pam: PartialAddressMemoizer::new(),
            scheduler: Scheduler::new(cfg.core.rs_size, policy),
            lsq: Lsq::new(cfg.core.lq_size, cfg.core.sq_size),
            ifq: VecDeque::new(),
            rob: VecDeque::new(),
            rob_head_seq: 0,
            rename: [None; 64],
            cycle: 0,
            fetch_resume_at: 0,
            redirect_pending: None,
            fetch_done: false,
            int_div_busy_until: 0,
            fp_div_busy_until: 0,
            ifq_matured: 0,
            ev_heap: BinaryHeap::new(),
            ev_ready: BTreeSet::new(),
            ev_waiters: WaiterTable::new(cfg.core.rob_size, cfg.core.commit_width),
            ready_scratch: Vec::new(),
            last_commit_cycle: 0,
        }
    }

    fn run(mut self, warmup_insts: u64, max_insts: u64) -> Result<SimResult, Trap> {
        let mut warmup_snapshot: Option<SimStats> = None;
        self.run_until(warmup_insts, max_insts, u64::MAX, &mut warmup_snapshot)?;
        self.stats.cycles = self.cycle.max(1);
        self.stats.width_pred = *self.width_pred.stats();
        self.stats.pam = *self.pam.stats();
        if let Some(snapshot) = warmup_snapshot {
            // Only subtract if the measurement window is non-empty.
            if self.stats.committed > snapshot.committed && self.stats.cycles > snapshot.cycles {
                self.stats.subtract_prefix(&snapshot);
            }
        }
        self.stats.cycles = self.stats.cycles.max(1);
        Ok(SimResult { clock_ghz: self.cfg.clock_ghz, stats: self.stats })
    }

    /// The cycle loop, stoppable at an interval boundary. Runs until the
    /// program drains (returns `true`), `max_insts` commit, or `cycle`
    /// reaches `until_cycle` (both `false`). Stopping at `until_cycle`
    /// leaves that cycle's stages unexecuted, so resuming with a later
    /// bound replays the exact (cycle, stage) sequence of an uninterrupted
    /// run — interval chopping cannot change the simulation. The event
    /// engine's idle skip may overshoot `until_cycle`; the overshoot lands
    /// in the next interval's cycle count, which is the correct accounting
    /// (those cycles are genuinely idle).
    fn run_until(
        &mut self,
        warmup_insts: u64,
        max_insts: u64,
        until_cycle: u64,
        warmup_snapshot: &mut Option<SimStats>,
    ) -> Result<bool, Trap> {
        let event = self.cfg.engine == CoreEngine::Event;
        while self.stats.committed < max_insts && self.cycle < until_cycle {
            let committed_before = self.stats.committed;
            self.commit();
            if event {
                self.process_events();
                self.issue_event();
            } else {
                self.scan_completions();
                self.issue();
            }
            self.dispatch();
            self.fetch()?;
            if self.stats.committed > committed_before {
                self.last_commit_cycle = self.cycle;
            }
            if warmup_snapshot.is_none()
                && warmup_insts > 0
                && self.stats.committed >= warmup_insts
            {
                self.stats.cycles = self.cycle;
                self.stats.width_pred = *self.width_pred.stats();
                self.stats.pam = *self.pam.stats();
                *warmup_snapshot = Some(self.stats.clone());
            }
            if self.fetch_done && self.rob.is_empty() && self.ifq.is_empty() {
                return Ok(true);
            }
            assert!(
                self.cycle - self.last_commit_cycle < 200_000,
                "pipeline deadlock at cycle {} (rob {}, ifq {})",
                self.cycle,
                self.rob.len(),
                self.ifq.len()
            );
            if event && self.stats.committed < max_insts {
                self.cycle = self.next_cycle(self.last_commit_cycle);
            } else {
                self.cycle += 1;
            }
        }
        Ok(false)
    }

    /// Resets architectural state to re-run `program` from its entry point
    /// while keeping the microarchitectural state — caches, TLBs, branch
    /// predictors, width predictor — warm, plus the cycle count and
    /// statistics, which keep accumulating. Used by [`SimSession`] to loop
    /// a workload across co-simulation intervals. Only call once the
    /// pipeline has drained.
    fn restart(&mut self, program: &Program) {
        debug_assert!(self.rob.is_empty() && self.ifq.is_empty(), "restart mid-flight");
        let policy = if self.cfg.herding.enabled && self.cfg.herding.rs_herding {
            AllocPolicy::HerdTopFirst
        } else {
            AllocPolicy::RoundRobin
        };
        self.machine = Machine::new(program);
        self.ifq.clear();
        self.rob.clear();
        self.rob_head_seq = 0;
        self.rename = [None; 64];
        // Fresh architectural registers are all zero, so the memoization
        // bits must drop back to their reset (low-width) state.
        self.width_memo = WidthMemoFile::new(th_isa::Reg::COUNT, self.cfg.herding.policy);
        self.scheduler = Scheduler::new(self.cfg.core.rs_size, policy);
        self.lsq = Lsq::new(self.cfg.core.lq_size, self.cfg.core.sq_size);
        self.ifq_matured = 0;
        self.fetch_done = false;
        self.redirect_pending = None;
        self.ev_heap.clear();
        self.ev_ready.clear();
        self.ev_waiters = WaiterTable::new(self.cfg.core.rob_size, self.cfg.core.commit_width);
        self.fetch_resume_at = self.fetch_resume_at.max(self.cycle);
        self.last_commit_cycle = self.cycle;
    }

    // ---------------------------------------------------------------- fetch

    fn fetch(&mut self) -> Result<(), Trap> {
        if self.fetch_done || self.redirect_pending.is_some() || self.cycle < self.fetch_resume_at
        {
            if !self.fetch_done {
                self.stats.fetch_stall_cycles += 1;
            }
            return Ok(());
        }
        // The IFQ holds instructions that have cleared the front-end pipe
        // but not yet dispatched; instructions still flowing through the
        // fetch/decode/rename stages occupy pipe latches, not IFQ slots.
        // `ifq_matured` was brought up to date by dispatch this cycle.
        debug_assert_eq!(
            self.ifq_matured,
            self.ifq.iter().filter(|f| f.dispatch_ready_at <= self.cycle).count()
        );
        if self.ifq_matured + self.cfg.core.fetch_width > self.cfg.core.ifq_size {
            self.stats.ifq_full_stalls += 1;
            return Ok(());
        }
        if self.machine.is_halted() {
            self.fetch_done = true;
            return Ok(());
        }

        // One I-cache access per fetch cycle at the current fetch PC.
        let fetch_pc = self.machine.pc();
        let ic = self.hierarchy.fetch(fetch_pc);
        self.stats.icache_accesses += 1;
        self.stats.itlb_accesses += 1;
        self.stats.activity.record_full(Unit::ICache);
        self.stats.activity.record_full(Unit::Itlb);
        if ic.tlb_miss {
            self.stats.itlb_misses += 1;
        }
        self.stats.spill_fill_transfers += ic.spill_fills;
        // I-side spill/fill traffic burns on the shared L2's ports; the
        // line transfer into the L1-I is already part of the miss access.
        self.stats.activity.add_full(Unit::L2, ic.spill_fills);
        if ic.level != CacheKind::L1 {
            self.stats.icache_misses += 1;
            self.stats.l2_accesses += 1;
            self.stats.activity.record_full(Unit::L2);
            if ic.level == CacheKind::Dram {
                self.stats.l2_misses += 1;
                self.stats.dram_accesses += 1;
            }
            self.fetch_resume_at = self.cycle + ic.cycles;
            return Ok(());
        }

        let mut bubbles = 0u64;
        for _ in 0..self.cfg.core.fetch_width {
            if self.machine.is_halted() {
                self.fetch_done = true;
                break;
            }
            let di = self.machine.step()?;
            self.stats.fetched += 1;
            self.stats.activity.record_full(Unit::Decode);
            let (mispredicted, taken, extra_bubbles) = self.predict_control(&di);
            bubbles += extra_bubbles;
            self.ifq.push_back(FetchedInst {
                di,
                dispatch_ready_at: self.cycle + self.cfg.pipeline.frontend_depth,
                mispredicted,
                rf_charged: false,
            });
            if mispredicted {
                self.redirect_pending = Some(di.seq);
                break;
            }
            if taken {
                // A taken transfer ends the fetch group.
                break;
            }
        }
        if bubbles > 0 && self.redirect_pending.is_none() {
            self.fetch_resume_at = self.cycle + 1 + bubbles;
        }
        Ok(())
    }

    /// Predicts a control instruction at fetch, trains the predictors,
    /// and returns `(mispredicted, ends_fetch_group, bubble_cycles)`.
    fn predict_control(&mut self, di: &DynInst) -> (bool, bool, u64) {
        let op = di.inst.op;
        if !op.is_control() {
            return (false, false, 0);
        }
        let pc = di.pc;
        let herding = self.cfg.herding.enabled;
        let mut bubbles = 0u64;

        if op.is_cond_branch() {
            self.stats.cond_branches += 1;
            self.stats.bpred_lookups += 1;
            self.stats.bpred_updates += 1;
            self.stats.activity.add_full(Unit::Bpred, 2);
            let pred = self.bpred.predict(pc);
            let actual = di.taken;
            self.bpred.update(pc, pred, actual);
            let mut mispredicted = pred.taken != actual;
            if pred.taken {
                self.stats.btb_lookups += 1;
                let out = self.btb.lookup(pc);
                match out.target {
                    Some(t) => {
                        self.stats.btb_hits += 1;
                        if out.needs_lower_dies {
                            self.stats.activity.record_full(Unit::Btb);
                            if herding {
                                // §3.7: one-cycle stall to read the upper
                                // target bits from the lower dies.
                                self.stats.btb_full_target_stalls += 1;
                                bubbles += 1;
                            }
                        } else {
                            self.stats.btb_partial_target_hits += 1;
                            self.record_btb_partial_hit(herding);
                        }
                        if actual && t != di.next_pc {
                            mispredicted = true;
                        }
                    }
                    None => {
                        // Predicted taken with no target: redirect at
                        // decode once the displacement is known.
                        self.stats.activity.record_full(Unit::Btb);
                        bubbles += 2;
                    }
                }
            }
            if actual {
                self.stats.btb_updates += 1;
                self.stats.activity.record_full(Unit::Btb);
                self.btb.update(pc, di.next_pc);
            }
            return (mispredicted, actual && !mispredicted, bubbles);
        }

        match op {
            Op::Jal => {
                self.stats.jumps += 1;
                if di.inst.rd == th_isa::Reg::X1 {
                    self.ras.push(pc.wrapping_add(th_isa::Inst::SIZE));
                    self.stats.ras_pushes += 1;
                }
                // Direct target: available at decode; the BTB hides the
                // decode bubble when it hits.
                self.stats.btb_lookups += 1;
                let out = self.btb.lookup(pc);
                if out.target != Some(di.next_pc) {
                    bubbles += 1;
                    self.stats.btb_updates += 1;
                    self.stats.activity.add_full(Unit::Btb, 2); // missed lookup + update
                    self.btb.update(pc, di.next_pc);
                } else if out.needs_lower_dies && herding {
                    self.stats.btb_full_target_stalls += 1;
                    self.stats.activity.record_full(Unit::Btb);
                    bubbles += 1;
                } else {
                    self.stats.btb_partial_target_hits += 1;
                    self.record_btb_partial_hit(herding);
                }
                (false, true, bubbles)
            }
            Op::Jalr => {
                self.stats.indirect_jumps += 1;
                let is_return = di.inst.rd == th_isa::Reg::X0 && di.inst.rs1 == th_isa::Reg::X1;
                if di.inst.rd == th_isa::Reg::X1 {
                    self.ras.push(pc.wrapping_add(th_isa::Inst::SIZE));
                    self.stats.ras_pushes += 1;
                }
                let predicted = if is_return {
                    self.stats.ras_pops += 1;
                    self.ras.pop()
                } else {
                    self.stats.btb_lookups += 1;
                    let out = self.ibtb.lookup(pc);
                    if let Some(t) = out.target {
                        self.stats.btb_hits += 1;
                        if out.needs_lower_dies && herding {
                            self.stats.btb_full_target_stalls += 1;
                            self.stats.activity.record_full(Unit::Btb);
                            bubbles += 1;
                        } else {
                            self.stats.btb_partial_target_hits += 1;
                            self.record_btb_partial_hit(herding);
                        }
                        Some(t)
                    } else {
                        self.stats.activity.record_full(Unit::Btb);
                        None
                    }
                };
                self.ibtb.update(pc, di.next_pc);
                self.stats.btb_updates += 1;
                self.stats.activity.record_full(Unit::Btb);
                let mispredicted = predicted != Some(di.next_pc);
                if mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
                (mispredicted, true, bubbles)
            }
            _ => (false, false, 0),
        }
    }

    /// Ledger entry for a BTB hit whose target upper bits were rebuilt
    /// from the branch PC (§3.7): with herding the lookup stays on the
    /// top die; a non-herded design drives the whole structure anyway.
    fn record_btb_partial_hit(&mut self, herding: bool) {
        if herding {
            self.stats.activity.record_low(Unit::Btb, 0);
        } else {
            self.stats.activity.record_full(Unit::Btb);
        }
    }

    // ------------------------------------------------------------- dispatch

    /// Whether width prediction applies to this opcode (the integer
    /// datapath; FP values live in the full-width FP cluster).
    fn width_predicted(op: Op) -> bool {
        matches!(
            op.class(),
            OpClass::IntAlu | OpClass::IntMul | OpClass::Load | OpClass::Store
        ) && !matches!(op, Op::Fld | Op::Fsd)
    }

    fn classify(&self, v: u64) -> Width {
        self.cfg.herding.policy.classify(v)
    }

    /// Whether the register-read group at the IFQ head would take the §3.1
    /// one-cycle unsafe-width stall if dispatch ran at `cycle`.
    fn dispatch_group_would_stall(&self, cycle: u64) -> bool {
        let group_end = self.cfg.core.decode_width.min(self.ifq.len());
        for f in self.ifq.iter().take(group_end) {
            if f.dispatch_ready_at > cycle {
                break;
            }
            if !f.rf_charged && Self::width_predicted(f.di.inst.op) {
                let pred = self.width_pred.peek(f.di.pc);
                let in_width = self.operand_width(&f.di);
                if pred == Width::Low && in_width == Width::Full {
                    return true;
                }
            }
        }
        false
    }

    fn dispatch(&mut self) {
        let herding = self.cfg.herding.enabled;

        // Matured IFQ entries form a prefix (constant front-end depth);
        // advance the cursor once per cycle, before any pops.
        while self.ifq_matured < self.ifq.len()
            && self.ifq[self.ifq_matured].dispatch_ready_at <= self.cycle
        {
            self.ifq_matured += 1;
        }

        // §3.1: one unsafe operand-width misprediction stalls the whole
        // register-read group for one cycle (at most one stall per group).
        if herding {
            let group_end = self.cfg.core.decode_width.min(self.ifq.len());
            if self.dispatch_group_would_stall(self.cycle) {
                // §3.1: the group stalls exactly one cycle regardless of
                // how many of its instructions mispredicted.
                for f in self.ifq.iter_mut().take(group_end) {
                    if f.dispatch_ready_at <= self.cycle {
                        f.rf_charged = true;
                    }
                }
                self.stats.rf_unsafe_group_stalls += 1;
                return; // the whole group dispatches next cycle
            }
        }

        for _ in 0..self.cfg.core.decode_width {
            let Some(front) = self.ifq.front() else { break };
            if front.dispatch_ready_at > self.cycle {
                break;
            }
            let op = front.di.inst.op;
            // Structural hazards.
            if self.rob.len() >= self.cfg.core.rob_size {
                self.stats.rob_full_stalls += 1;
                break;
            }
            let needs_rs = op.fu_class() != FuClass::None;
            if needs_rs && self.scheduler.is_full() {
                self.stats.rs_full_stalls += 1;
                break;
            }
            match op.class() {
                OpClass::Load if !self.lsq.lq_has_space() => {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                OpClass::Store if !self.lsq.sq_has_space() => {
                    self.stats.lsq_full_stalls += 1;
                    break;
                }
                _ => {}
            }

            let f = self.ifq.pop_front().expect("front checked");
            debug_assert!(self.ifq_matured > 0, "popped an unmatured IFQ entry");
            self.ifq_matured -= 1;
            let di = f.di;
            self.stats.dispatched += 1;
            self.stats.rename_ops += 1;
            self.stats.activity.record_full(Unit::Rename);

            // Rename: resolve producers, claim the destination.
            let mut src_seq = [None, None];
            let srcs = [
                (di.inst.op.reads_rs1(), di.inst.rs1, di.rs1_val),
                (di.inst.op.reads_rs2(), di.inst.rs2, di.rs2_val),
            ];
            for (i, (reads, reg, val)) in srcs.into_iter().enumerate() {
                if reads && !reg.is_zero() {
                    src_seq[i] = self.rename[reg.index()];
                    // Register-file read accounting (integer side only):
                    // the width memoization bit on the top die (§3.1)
                    // says how many dies the read touches.
                    if !reg.is_fp() {
                        let memo_width = self.width_memo.width(reg.index());
                        debug_assert_eq!(
                            memo_width,
                            self.classify(val),
                            "memo bit out of sync with architectural value"
                        );
                        match memo_width {
                            Width::Low => {
                                self.stats.rf_reads_low += 1;
                                // The memo bit gates the read ports: only
                                // the top die's bank is driven (§3.1).
                                if herding {
                                    self.stats.activity.record_low(Unit::RegFile, 0);
                                } else {
                                    self.stats.activity.record_full(Unit::RegFile);
                                }
                            }
                            Width::Full => {
                                self.stats.rf_reads_full += 1;
                                self.stats.activity.record_full(Unit::RegFile);
                            }
                        }
                    }
                }
            }
            if let Some(rd) = di.inst.dest() {
                self.rename[rd.index()] = Some(di.seq);
                // Program-order memoization-bit update (§3.1): FP values
                // are always full-width.
                if rd.is_fp() {
                    self.width_memo.set(rd.index(), Width::Full);
                } else {
                    self.width_memo.record_write(rd.index(), di.rd_val);
                }
            }

            // Width prediction (§3).
            let mut pred_width = Width::Full;
            let mut unsafe_in = false;
            let mut unsafe_out = false;
            let in_width = self.operand_width(&di);
            let out_width = self.result_width(&di);
            if herding && Self::width_predicted(op) {
                pred_width = self.width_pred.predict(di.pc);
                let actual =
                    if in_width == Width::Full || out_width == Width::Full { Width::Full } else { Width::Low };
                unsafe_in = pred_width == Width::Low && in_width == Width::Full;
                // Stores learn their data width by commit (§3.6: "stores
                // will not cause unsafe width mispredictions"); loads
                // handle result width at the cache (§3.6).
                unsafe_out = pred_width == Width::Low
                    && out_width == Width::Full
                    && matches!(op.class(), OpClass::IntAlu | OpClass::IntMul);
                self.width_pred.update(di.pc, actual);
                if unsafe_in || unsafe_out {
                    // §3.1: correct the prediction to stop repeat stalls.
                    self.width_pred.force_full(di.pc);
                }
            }

            // Queue allocation.
            let rs_die = if needs_rs {
                let die = self.scheduler.alloc().expect("checked not full");
                self.stats.rs_allocs_per_die[die] += 1;
                // An RS entry write costs half a full scheduler access
                // (the wakeup broadcast is the other half): two
                // die-touches, landed on the allocation die.
                self.stats.activity.add_full_on(Unit::Scheduler, die, 2);
                Some(die)
            } else {
                None
            };
            match op.class() {
                OpClass::Load => self.lsq.alloc_load(),
                OpClass::Store => self.lsq.alloc_store(
                    di.seq,
                    di.ea.expect("stores have addresses"),
                    op.mem_size().expect("stores are sized") as u64,
                ),
                _ => {}
            }

            let state = if needs_rs { SlotState::Waiting } else { SlotState::Done };
            let complete_at = if needs_rs { u64::MAX } else { self.cycle + 1 };
            self.rob.push_back(Slot {
                di,
                state,
                rs_die,
                src_seq,
                complete_at,
                mispredicted: f.mispredicted,
                pred_width,
                in_width,
                out_width,
                unsafe_in,
                unsafe_out,
                wrote_back: !needs_rs,
                deps: 0,
                visible: false,
            });

            if self.cfg.engine == CoreEngine::Event {
                // Wakeup bookkeeping: count unresolved producers and park
                // on their wakeup lists; resolved slots go straight to the
                // ready queue. No-FU slots complete unconditionally one
                // cycle later — their event also marks them visible.
                let mut deps = 0u8;
                for src in src_seq.into_iter().flatten() {
                    debug_assert!(src >= self.rob_head_seq, "renamed to a committed producer");
                    let pidx = (src - self.rob_head_seq) as usize;
                    if !self.rob[pidx].visible {
                        deps += 1;
                        self.ev_waiters.add(src, di.seq);
                    }
                }
                let slot = self.rob.back_mut().expect("just pushed");
                slot.deps = deps;
                if needs_rs {
                    if deps == 0 {
                        self.ev_ready.insert(di.seq);
                    }
                } else {
                    self.ev_heap.push(Reverse((complete_at, di.seq)));
                }
            }
        }
    }

    /// Width of the integer operand set the width prediction covers.
    ///
    /// Memory instructions are special: their base-address operand is
    /// "almost always full-width" and is handled by partial *address*
    /// memoization in the LSQ (§3.5), not by the instruction's width
    /// prediction, which covers the memory **data** (§3.6). Loads
    /// therefore have no width-predicted input operand; a store's
    /// predicted operand is its data register.
    fn operand_width(&self, di: &DynInst) -> Width {
        match di.inst.op.class() {
            OpClass::Load => Width::Low,
            OpClass::Store => {
                if di.inst.rs2.is_fp() {
                    Width::Full
                } else {
                    self.classify(di.rs2_val)
                }
            }
            _ => {
                let mut w = Width::Low;
                if di.inst.op.reads_rs1()
                    && !di.inst.rs1.is_fp()
                    && self.classify(di.rs1_val) == Width::Full
                {
                    w = Width::Full;
                }
                if di.inst.op.reads_rs2()
                    && !di.inst.rs2.is_fp()
                    && self.classify(di.rs2_val) == Width::Full
                {
                    w = Width::Full;
                }
                w
            }
        }
    }

    /// Width of the produced value (loads: the loaded data; stores: the
    /// stored data).
    fn result_width(&self, di: &DynInst) -> Width {
        if di.is_store() {
            return self.classify(di.rs2_val);
        }
        match di.inst.dest() {
            Some(rd) if !rd.is_fp() => self.classify(di.rd_val),
            _ => {
                if di.is_store() || di.inst.dest().is_some() {
                    Width::Full // FP values are always full-width
                } else {
                    Width::Low
                }
            }
        }
    }

    // ---------------------------------------------------------------- issue

    fn src_ready(&self, seq: Option<u64>) -> bool {
        match seq {
            None => true,
            Some(s) => {
                if s < self.rob_head_seq {
                    true // already committed
                } else {
                    match self.rob.get((s - self.rob_head_seq) as usize) {
                        Some(p) => p.state == SlotState::Done && p.complete_at <= self.cycle,
                        None => true,
                    }
                }
            }
        }
    }

    fn issue(&mut self) {
        self.charge_rs_occupancy();

        let mut issued = 0usize;
        let mut free = FuFree::new(&self.cfg.core);
        for idx in 0..self.rob.len() {
            if issued >= self.cfg.core.issue_width {
                break;
            }
            let slot = &self.rob[idx];
            if slot.state != SlotState::Waiting {
                continue;
            }
            if !self.src_ready(slot.src_seq[0]) || !self.src_ready(slot.src_seq[1]) {
                continue;
            }
            if self.try_issue_slot(idx, &mut free) {
                issued += 1;
            }
        }
    }

    /// Event-engine issue: walk only the ready queue, oldest first (the
    /// same priority order as the scan over the ROB).
    fn issue_event(&mut self) {
        self.charge_rs_occupancy();

        let mut issued = 0usize;
        let mut free = FuFree::new(&self.cfg.core);
        let mut candidates = std::mem::take(&mut self.ready_scratch);
        candidates.clear();
        candidates.extend(self.ev_ready.iter().copied());
        for &seq in &candidates {
            if issued >= self.cfg.core.issue_width {
                break;
            }
            let idx = (seq - self.rob_head_seq) as usize;
            debug_assert_eq!(self.rob[idx].state, SlotState::Waiting);
            if self.try_issue_slot(idx, &mut free) {
                issued += 1;
                self.ev_ready.remove(&seq);
                self.ev_heap.push(Reverse((self.rob[idx].complete_at, seq)));
            }
        }
        self.ready_scratch = candidates;
    }

    /// Residency accounting: every occupied RS entry burns on its die for
    /// this cycle.
    fn charge_rs_occupancy(&mut self) {
        for (die, occ) in self.scheduler.occupancy().into_iter().enumerate() {
            self.stats.rs_occupancy_cycles_per_die[die] += occ as u64;
        }
    }

    /// Tries to issue the waiting, operand-ready slot at `idx` against the
    /// remaining per-cycle FU budget. Returns whether it issued; on `true`
    /// the slot is `Issued` with its `complete_at` fixed.
    fn try_issue_slot(&mut self, idx: usize, free: &mut FuFree) -> bool {
        let lat = self.cfg.lat;
        let herding = self.cfg.herding.enabled;
        let cycle = self.cycle;

        {
            let slot = &self.rob[idx];
            let op = slot.di.inst.op;
            let fu = op.fu_class();

            // Functional-unit availability.
            let fu_ok = match fu {
                FuClass::IntAlu => free.alu > 0,
                FuClass::IntShift => free.shift > 0,
                FuClass::IntMul => {
                    free.mul > 0
                        && (!matches!(op, Op::Div | Op::Rem) || self.int_div_busy_until <= cycle)
                }
                FuClass::FpAdd => free.fp_add > 0,
                FuClass::FpMul => free.fp_mul > 0,
                FuClass::FpDiv => free.fp_div > 0 && self.fp_div_busy_until <= cycle,
                FuClass::Mem => {
                    if op.class() == OpClass::Store {
                        free.st_ports > 0
                    } else {
                        free.ld_ports > 0
                    }
                }
                FuClass::None => true,
            };
            if !fu_ok {
                return false;
            }
        }
        let op = self.rob[idx].di.inst.op;
        let fu = op.fu_class();

        // Memory ordering for loads.
        let mut load_plan: Option<(u64, bool)> = None; // (complete_at, forwarded)
        if op.class() == OpClass::Load {
            let ea = self.rob[idx].di.ea.expect("loads have addresses");
            let size = op.mem_size().unwrap() as u64;
            match self.lsq.search_for_load(self.rob[idx].di.seq, ea, size) {
                LoadSearch::Forward(data_ready) => {
                    if data_ready == u64::MAX {
                        return false; // producing store has not executed yet
                    }
                    let done = (cycle + lat.agu).max(data_ready) + 1;
                    load_plan = Some((done, true));
                }
                LoadSearch::PartialOverlap(data_ready) => {
                    if data_ready == u64::MAX {
                        return false;
                    }
                    // Replay after the store's data is available, then
                    // access the cache.
                    let start = (cycle + lat.agu).max(data_ready);
                    let mem = self.hierarchy.data_access(ea, false);
                    self.record_dcache_access(idx, ea, &mem, false);
                    load_plan = Some((start + mem.cycles, false));
                }
                LoadSearch::Cache => {
                    let ea = self.rob[idx].di.ea.unwrap();
                    let mem = self.hierarchy.data_access(ea, false);
                    self.record_dcache_access(idx, ea, &mem, false);
                    load_plan = Some((cycle + lat.agu + mem.cycles, false));
                }
            }
        }

        // Latency.
        let slot = &self.rob[idx];
        let base_latency = match op.fu_class() {
            FuClass::IntAlu => lat.int_alu,
            FuClass::IntShift => lat.int_shift,
            FuClass::IntMul => {
                if matches!(op, Op::Div | Op::Rem) {
                    lat.int_div
                } else {
                    lat.int_mul
                }
            }
            FuClass::FpAdd => lat.fp_add,
            FuClass::FpMul => lat.fp_mul,
            FuClass::FpDiv => {
                if op == Op::Fsqrt {
                    lat.fp_sqrt
                } else {
                    lat.fp_div
                }
            }
            FuClass::Mem => lat.agu,
            FuClass::None => 1,
        };

        let mut complete_at = match load_plan {
            Some((done, _)) => done,
            None => cycle + base_latency,
        };

        // Width-misprediction execution penalties.
        let (slot_di, slot_unsafe_in, slot_unsafe_out, slot_pred_width) =
            (slot.di, slot.unsafe_in, slot.unsafe_out, slot.pred_width);
        // §3.6: a load read is gated to the top die only when it was
        // predicted low *and* the line's upper bits are reconstructible
        // there (partial value encoding / the zero-upper memo bit).
        let mut load_gated = false;
        if herding {
            if slot_unsafe_in
                && matches!(op.class(), OpClass::IntAlu | OpClass::IntMul)
            {
                // §3.2: one cycle to re-enable the upper 48 bits.
                complete_at += 1;
                self.stats.exec_reenable_stalls += 1;
            }
            if slot_unsafe_out {
                // §3.2: output width misprediction forces re-execution.
                complete_at += base_latency;
                self.stats.output_width_replays += 1;
            }
            if op.class() == OpClass::Load && slot_pred_width == Width::Low {
                if self.load_serviced_from_top_die(&slot_di) {
                    load_gated = true;
                } else {
                    // §3.6: stall the cache pipeline one cycle; the tag
                    // match already identified the way holding the upper
                    // bits.
                    complete_at += 1;
                    self.stats.dcache_width_stalls += 1;
                }
            }
        }
        // Ledger entry for loads that actually accessed the cache
        // (forwarded loads are serviced by the store queue instead).
        if op.class() == OpClass::Load && load_plan.is_some_and(|(_, fwd)| !fwd) {
            if load_gated {
                self.stats.activity.record_low(Unit::DCache, 0);
            } else {
                self.stats.activity.record_full(Unit::DCache);
            }
        }

        // FP loads may pay the extra routing cycle (§3.8).
        if op == Op::Fld && self.cfg.pipeline.fp_load_extra_cycle {
            complete_at += 1;
        }

        // Commit FU reservations.
        match fu {
            FuClass::IntAlu => free.alu -= 1,
            FuClass::IntShift => free.shift -= 1,
            FuClass::IntMul => {
                free.mul -= 1;
                if matches!(op, Op::Div | Op::Rem) {
                    self.int_div_busy_until = complete_at;
                }
            }
            FuClass::FpAdd => free.fp_add -= 1,
            FuClass::FpMul => free.fp_mul -= 1,
            FuClass::FpDiv => {
                free.fp_div -= 1;
                self.fp_div_busy_until = complete_at;
            }
            FuClass::Mem => {
                if op.class() == OpClass::Store {
                    free.st_ports -= 1;
                } else {
                    free.ld_ports -= 1;
                }
            }
            FuClass::None => {}
        }

        // Stores: data becomes forwardable once the store executes. Both
        // kinds of memory op broadcast their address into the LSQ; PAM
        // upper-bit matches keep the comparison on the top die (§3.5).
        if op.class() == OpClass::Store {
            let ea = self.rob[idx].di.ea.unwrap();
            let seq = self.rob[idx].di.seq;
            self.lsq.set_store_ready(seq, cycle + lat.agu);
            if self.cfg.herding.pam {
                let out = self.pam.broadcast_store(ea);
                self.record_lsq_broadcast(herding && out.upper_match);
            } else {
                self.record_lsq_broadcast(false);
            }
        } else if op.class() == OpClass::Load {
            if self.cfg.herding.pam {
                let out = self.pam.broadcast_load(self.rob[idx].di.ea.unwrap());
                self.record_lsq_broadcast(herding && out.upper_match);
            } else {
                self.record_lsq_broadcast(false);
            }
            if load_plan.is_some_and(|(_, fwd)| fwd) {
                self.stats.store_forwards += 1;
            }
        }

        // Execution accounting.
        match op.class() {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Control => {
                let w = if self.rob[idx].in_width == Width::Full
                    || self.rob[idx].out_width == Width::Full
                {
                    Width::Full
                } else {
                    Width::Low
                };
                match w {
                    Width::Low => {
                        self.stats.int_ops_low += 1;
                        if herding {
                            self.stats.activity.record_low(Unit::IntExec, 0);
                        } else {
                            self.stats.activity.record_full(Unit::IntExec);
                        }
                    }
                    Width::Full => {
                        self.stats.int_ops_full += 1;
                        self.stats.activity.record_full(Unit::IntExec);
                    }
                }
            }
            OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv => {
                self.stats.fp_ops += 1;
                self.stats.activity.record_full(Unit::FpExec);
            }
            _ => {}
        }

        let slot = &mut self.rob[idx];
        slot.state = SlotState::Issued;
        slot.complete_at = complete_at;
        if let Some(die) = slot.rs_die.take() {
            self.scheduler.free(die);
        }
        self.stats.issued += 1;
        true
    }

    /// Whether a low-width-predicted load was serviced without touching
    /// the lower three dies (§3.6 partial value encoding, or the plain
    /// zero-upper memoization bit when PVE is off).
    fn load_serviced_from_top_die(&mut self, di: &DynInst) -> bool {
        let ea = di.ea.expect("load");
        let enc = UpperEncoding::classify(di.rd_val, ea);
        self.stats.dcache_encodings.record(enc);
        if self.cfg.herding.partial_value_encoding {
            enc.top_die_only()
        } else {
            enc == UpperEncoding::Zeros || enc == UpperEncoding::Ones
        }
    }

    /// Ledger entry for one LSQ address broadcast: a PAM upper-bit match
    /// keeps the comparators on the top die; everything else drives the
    /// whole queue (§3.5). The D-cache access row itself is recorded by
    /// the caller once the width-gating outcome is known.
    fn record_lsq_broadcast(&mut self, gated: bool) {
        if gated {
            self.stats.activity.record_low(Unit::Lsq, 0);
        } else {
            self.stats.activity.record_full(Unit::Lsq);
        }
    }

    fn record_dcache_access(
        &mut self,
        _idx: usize,
        _ea: u64,
        mem: &crate::cache::AccessResult,
        write: bool,
    ) {
        self.stats.dcache_accesses += 1;
        self.stats.dtlb_accesses += 1;
        self.stats.activity.record_full(Unit::Dtlb);
        if mem.tlb_miss {
            self.stats.dtlb_misses += 1;
        }
        self.stats.spill_fill_transfers += mem.spill_fills;
        // L1⇄L2 spills/fills move whole lines: all four dies of both
        // arrays switch (§3.6).
        self.stats.activity.add_full(Unit::DCache, mem.spill_fills);
        self.stats.activity.add_full(Unit::L2, mem.spill_fills);
        if mem.level != CacheKind::L1 {
            self.stats.dcache_misses += 1;
            self.stats.l2_accesses += 1;
            self.stats.activity.record_full(Unit::L2);
            if mem.level == CacheKind::Dram {
                self.stats.l2_misses += 1;
                self.stats.dram_accesses += 1;
            }
        }
        let _ = write;
    }

    // ---------------------------------------------------------- completion

    fn scan_completions(&mut self) {
        for idx in 0..self.rob.len() {
            let slot = &self.rob[idx];
            if slot.state != SlotState::Issued || slot.complete_at > self.cycle {
                continue;
            }
            self.complete_slot(idx);
        }
    }

    /// Event-engine completion stage: pop every event due this cycle, do
    /// the writeback for slots still in flight, and wake dependants.
    fn process_events(&mut self) {
        while let Some(&Reverse((at, seq))) = self.ev_heap.peek() {
            if at > self.cycle {
                break;
            }
            debug_assert_eq!(at, self.cycle, "completion event missed its cycle");
            self.ev_heap.pop();

            // The slot may already have committed (no-FU slots are `Done`
            // at dispatch and can retire before their event fires); the
            // writeback then already happened at dispatch.
            if seq >= self.rob_head_seq {
                let idx = (seq - self.rob_head_seq) as usize;
                if idx < self.rob.len() {
                    if self.rob[idx].state == SlotState::Issued {
                        self.complete_slot(idx);
                    }
                    self.rob[idx].visible = true;
                }
            }

            // Wake consumers parked on this producer.
            let waiters = self.ev_waiters.take(seq);
            for &consumer in &waiters {
                if consumer < self.rob_head_seq {
                    continue;
                }
                let cidx = (consumer - self.rob_head_seq) as usize;
                let Some(slot) = self.rob.get_mut(cidx) else { continue };
                debug_assert!(slot.deps > 0);
                slot.deps -= 1;
                if slot.deps == 0 && slot.state == SlotState::Waiting {
                    self.ev_ready.insert(consumer);
                }
            }
            self.ev_waiters.put_back(seq, waiters);
        }
    }

    /// Writeback for the issued slot at `idx` whose result is due this
    /// cycle: record the register-file/ROB/bypass/tag-broadcast activity
    /// and release a pending fetch redirect if this was the blocking
    /// branch. Shared verbatim between the two engines.
    fn complete_slot(&mut self, idx: usize) {
        let slot = &self.rob[idx];
        let di = slot.di;
        let out_width = slot.out_width;
        let mispredicted = slot.mispredicted;
        {
            let slot = &mut self.rob[idx];
            slot.state = SlotState::Done;
            slot.wrote_back = true;
        }

            // Writeback accounting: register file, ROB result field,
            // bypass network, and the wakeup tag broadcast. The producing
            // FU knows the result's width, so a low result drives only
            // the top die's write ports and bypass wires (§3.1–§3.3).
            let herding = self.cfg.herding.enabled;
            if let Some(rd) = di.inst.dest() {
                if rd.is_fp() {
                    self.stats.rf_writes_full += 1;
                    self.stats.rob_writes_full += 1;
                    self.stats.bypass_full += 1;
                    self.record_writeback(false);
                } else {
                    match out_width {
                        Width::Low => {
                            self.stats.rf_writes_low += 1;
                            self.stats.rob_writes_low += 1;
                            self.stats.bypass_low += 1;
                            self.record_writeback(herding);
                        }
                        Width::Full => {
                            self.stats.rf_writes_full += 1;
                            self.stats.rob_writes_full += 1;
                            self.stats.bypass_full += 1;
                            self.record_writeback(false);
                        }
                    }
                }
                self.stats.tag_broadcasts += 1;
                let dies = self.scheduler.broadcast_dies();
                for (d, driven) in dies.iter().enumerate() {
                    if *driven || !herding {
                        self.stats.tag_broadcast_die_driven[d] += 1;
                        self.stats.activity.add_full_on(Unit::Scheduler, d, 1);
                    }
                }
            }

            // Branch resolution: release the fetch redirect.
            if mispredicted && self.redirect_pending == Some(di.seq) {
                self.redirect_pending = None;
                self.fetch_resume_at =
                    self.fetch_resume_at.max(self.cycle + self.cfg.pipeline.redirect_extra);
                if di.inst.op.is_cond_branch() {
                    self.stats.cond_mispredicts += 1;
                }
            }
    }

    /// Ledger entries for one result writeback: RF write port, ROB result
    /// field, and the bypass network, gated together when the result is
    /// low-width under herding.
    fn record_writeback(&mut self, gated: bool) {
        if gated {
            self.stats.activity.record_low(Unit::RegFile, 0);
            self.stats.activity.record_low(Unit::Rob, 0);
            self.stats.activity.record_low(Unit::Bypass, 0);
        } else {
            self.stats.activity.record_full(Unit::RegFile);
            self.stats.activity.record_full(Unit::Rob);
            self.stats.activity.record_full(Unit::Bypass);
        }
    }

    // ------------------------------------------------------- idle skipping

    /// Event engine: the cycle to execute after the current one. Normally
    /// `cycle + 1`; when provably nothing can commit, complete, issue,
    /// dispatch, or fetch before some later cycle `T`, jumps straight to
    /// `T` after batch-charging the per-cycle stall statistics for the
    /// skipped window. Never jumps past the deadlock watchdog horizon, so
    /// a genuine deadlock still panics on the same cycle as the scan
    /// engine.
    fn next_cycle(&mut self, last_commit_cycle: u64) -> u64 {
        let next = self.cycle + 1;
        let Some(target) = self.idle_until() else { return next };
        let target = target.min(last_commit_cycle + 200_000).max(next);
        if target > next {
            self.account_idle(next, target);
        }
        target
    }

    /// The earliest future cycle at which any pipeline stage might make
    /// progress, or `None` if the very next cycle might (in which case no
    /// cycles are skipped). Conservative: may return `None` spuriously,
    /// never a too-late cycle.
    fn idle_until(&self) -> Option<u64> {
        let next = self.cycle + 1;
        let mut t = u64::MAX;

        // Commit: only the ROB head matters.
        if let Some(head) = self.rob.front() {
            if head.state == SlotState::Done && head.complete_at <= next {
                return None;
            }
        }

        // Completion events (also cover `Done`-at-dispatch visibility and
        // every in-flight `Issued` slot).
        if let Some(&Reverse((at, _))) = self.ev_heap.peek() {
            debug_assert!(at >= next);
            t = t.min(at);
        }

        // Ready-but-unissued slots. Only three shapes are provably stuck
        // until a known cycle: divides blocked on the non-pipelined unit,
        // and loads blocked on an unexecuted older store (whose own issue
        // or wakeup is covered by the cases above). Anything else might
        // issue next cycle.
        for &seq in &self.ev_ready {
            let slot = &self.rob[(seq - self.rob_head_seq) as usize];
            let op = slot.di.inst.op;
            match op.fu_class() {
                FuClass::IntMul if matches!(op, Op::Div | Op::Rem) => {
                    if self.int_div_busy_until <= next {
                        return None;
                    }
                    t = t.min(self.int_div_busy_until);
                }
                FuClass::FpDiv => {
                    if self.fp_div_busy_until <= next {
                        return None;
                    }
                    t = t.min(self.fp_div_busy_until);
                }
                FuClass::Mem if op.class() == OpClass::Load => {
                    let ea = slot.di.ea.expect("loads have addresses");
                    let size = op.mem_size().expect("loads are sized") as u64;
                    match self.lsq.search_for_load(slot.di.seq, ea, size) {
                        LoadSearch::Forward(c) | LoadSearch::PartialOverlap(c)
                            if c == u64::MAX => {}
                        _ => return None,
                    }
                }
                _ => return None,
            }
        }

        // Dispatch: a group member maturing is a wake-up; a matured head
        // only dispatches (or takes the §3.1 group stall) when unblocked.
        if !self.ifq.is_empty() {
            let group_end = self.cfg.core.decode_width.min(self.ifq.len());
            for f in self.ifq.iter().take(group_end) {
                if f.dispatch_ready_at > next {
                    t = t.min(f.dispatch_ready_at);
                    break;
                }
            }
            let front = &self.ifq[0];
            if front.dispatch_ready_at <= next {
                if self.cfg.herding.enabled && self.dispatch_group_would_stall(next) {
                    return None;
                }
                let op = front.di.inst.op;
                let blocked = self.rob.len() >= self.cfg.core.rob_size
                    || (op.fu_class() != FuClass::None && self.scheduler.is_full())
                    || match op.class() {
                        OpClass::Load => !self.lsq.lq_has_space(),
                        OpClass::Store => !self.lsq.sq_has_space(),
                        _ => false,
                    };
                if !blocked {
                    return None;
                }
            }
        }

        // Fetch: blocked by a pending redirect (released by a completion
        // event), a resume cycle, or a full IFQ (monotone while nothing
        // dispatches). An unblocked, non-full fetch makes progress.
        if !self.fetch_done && self.redirect_pending.is_none() {
            if next < self.fetch_resume_at {
                t = t.min(self.fetch_resume_at);
            } else {
                let mut matured = self.ifq_matured;
                while matured < self.ifq.len()
                    && self.ifq[matured].dispatch_ready_at <= next
                {
                    matured += 1;
                }
                if matured + self.cfg.core.fetch_width <= self.cfg.core.ifq_size {
                    return None;
                }
            }
        }

        // Nothing pending at all: jump to the watchdog horizon (the caller
        // clamps) so a drained-but-deadlocked pipeline still panics.
        Some(t)
    }

    /// Batch-charges the per-cycle statistics the scan engine would have
    /// accrued over the idle window `[from, to)`: RS residency, the
    /// blocking dispatch structural hazard, and the fetch stall breakdown.
    /// Every charged condition is constant (or monotone in the charged
    /// direction) across the window — `idle_until` guarantees it.
    fn account_idle(&mut self, from: u64, to: u64) {
        let k = to - from;
        for (die, occ) in self.scheduler.occupancy().into_iter().enumerate() {
            self.stats.rs_occupancy_cycles_per_die[die] += occ as u64 * k;
        }

        if let Some(front) = self.ifq.front() {
            if front.dispatch_ready_at <= from {
                let op = front.di.inst.op;
                if self.rob.len() >= self.cfg.core.rob_size {
                    self.stats.rob_full_stalls += k;
                } else if op.fu_class() != FuClass::None && self.scheduler.is_full() {
                    self.stats.rs_full_stalls += k;
                } else {
                    match op.class() {
                        OpClass::Load if !self.lsq.lq_has_space() => {
                            self.stats.lsq_full_stalls += k;
                        }
                        OpClass::Store if !self.lsq.sq_has_space() => {
                            self.stats.lsq_full_stalls += k;
                        }
                        _ => unreachable!("unblocked dispatch inside an idle window"),
                    }
                }
            }
        }

        if !self.fetch_done {
            if self.redirect_pending.is_some() || from < self.fetch_resume_at {
                self.stats.fetch_stall_cycles += k;
            } else {
                self.stats.ifq_full_stalls += k;
            }
        }
    }

    // --------------------------------------------------------------- commit

    fn commit(&mut self) {
        for _ in 0..self.cfg.core.commit_width {
            let Some(head) = self.rob.front() else { break };
            if head.state != SlotState::Done || head.complete_at > self.cycle {
                break;
            }
            let slot = self.rob.pop_front().expect("front checked");
            self.rob_head_seq = slot.di.seq + 1;
            let di = slot.di;

            // ROB result read at retirement (architected-state copy).
            let herding = self.cfg.herding.enabled;
            match slot.out_width {
                Width::Low => {
                    self.stats.rob_reads_low += 1;
                    if herding {
                        self.stats.activity.record_low(Unit::Rob, 0);
                    } else {
                        self.stats.activity.record_full(Unit::Rob);
                    }
                }
                Width::Full => {
                    self.stats.rob_reads_full += 1;
                    self.stats.activity.record_full(Unit::Rob);
                }
            }

            match di.inst.op.class() {
                OpClass::Load => {
                    self.stats.loads += 1;
                    self.lsq.free_load();
                }
                OpClass::Store => {
                    self.stats.stores += 1;
                    self.lsq.commit_store(di.seq);
                    let ea = di.ea.expect("store");
                    let mem = self.hierarchy.data_access(ea, true);
                    self.record_dcache_access(0, ea, &mem, true);
                    // Stores know their data width at commit (§3.6).
                    match self.classify(di.rs2_val) {
                        Width::Low => {
                            self.stats.dcache_writes_low += 1;
                            if herding {
                                self.stats.activity.record_low(Unit::DCache, 0);
                            } else {
                                self.stats.activity.record_full(Unit::DCache);
                            }
                        }
                        Width::Full => {
                            self.stats.dcache_writes_full += 1;
                            self.stats.activity.record_full(Unit::DCache);
                        }
                    }
                }
                _ => {}
            }

            if self.rename[di.inst.rd.index()] == Some(di.seq) {
                self.rename[di.inst.rd.index()] = None;
            }
            self.stats.committed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use th_isa::parse_asm;

    fn run(src: &str, cfg: SimConfig) -> SimResult {
        let p = parse_asm(src).expect("assembles");
        Simulator::new(cfg).run(&p, 1_000_000).expect("runs")
    }

    const COUNT_LOOP: &str = "
        li   x1, 0
        li   x2, 2000
    loop:
        addi x1, x1, 1
        bne  x1, x2, loop
        halt
    ";

    #[test]
    fn simple_loop_completes_with_sane_ipc() {
        let r = run(COUNT_LOOP, SimConfig::baseline());
        assert!(r.stats.committed >= 4003, "committed {}", r.stats.committed);
        let ipc = r.ipc();
        assert!(ipc > 0.8 && ipc < 4.0, "ipc = {ipc}");
        // The loop branch is almost always taken and easy to predict.
        assert!(r.stats.branch_accuracy() > 0.99, "bacc {}", r.stats.branch_accuracy());
    }

    #[test]
    fn independent_ops_reach_high_ipc() {
        let r = run(
            "
            li   x10, 0
            li   x11, 5000
        loop:
            addi x1, x1, 1
            addi x2, x2, 1
            addi x3, x3, 1
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ",
            SimConfig::baseline(),
        );
        // 5 instructions per iteration, 4-wide machine: IPC should be
        // well above 2.
        assert!(r.ipc() > 2.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn dependent_chain_is_serialized() {
        let r = run(
            "
            li   x10, 0
            li   x11, 3000
        loop:
            add  x1, x1, x10
            add  x1, x1, x10
            add  x1, x1, x10
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ",
            SimConfig::baseline(),
        );
        // The x1 chain limits ILP: 3 dependent adds per iteration.
        assert!(r.ipc() < 2.3, "ipc = {}", r.ipc());
    }

    #[test]
    fn mispredict_penalty_shows_up() {
        // A data-dependent unpredictable branch: bit 17 of an LCG state.
        let r = run(
            "
            li   x10, 0
            li   x11, 4000
            li   x12, 12345
            li   x15, 6364136223846793005
        loop:
            mul  x12, x12, x15
            addi x12, x12, 1442695041
            srli x13, x12, 17
            andi x13, x13, 1
            beq  x13, x0, skip
            addi x14, x14, 1
        skip:
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ",
            SimConfig::baseline(),
        );
        assert!(
            r.stats.branch_accuracy() < 0.95,
            "branch accuracy suspiciously high: {}",
            r.stats.branch_accuracy()
        );
        assert!(r.stats.cond_mispredicts > 100);
    }

    #[test]
    fn memory_bound_loop_hits_dram() {
        // Stride through 8 MB — far beyond the 4 MB L2.
        let r = run(
            "
            .zeros buf 64
            li   x1, 0x100000
            li   x2, 0x900000
        loop:
            ld   x3, 0(x1)
            addi x1, x1, 64
            bne  x1, x2, loop
            halt
        ",
            SimConfig::baseline(),
        );
        assert!(r.stats.dram_accesses > 100_000, "dram {}", r.stats.dram_accesses);
        assert!(r.ipc() < 0.5, "memory-bound ipc = {}", r.ipc());
    }

    #[test]
    fn faster_clock_lowers_ipc_of_memory_bound_code() {
        let src = "
            li   x1, 0x100000
            li   x2, 0x500000
        loop:
            ld   x3, 0(x1)
            add  x4, x4, x3
            addi x1, x1, 64
            bne  x1, x2, loop
            halt
        ";
        let base = run(src, SimConfig::baseline());
        let fast = run(src, SimConfig::fast(3.93));
        assert!(
            fast.ipc() < base.ipc(),
            "fast {} !< base {}",
            fast.ipc(),
            base.ipc()
        );
        // But absolute performance (IPns) must still improve.
        assert!(fast.ipns() > base.ipns());
    }

    #[test]
    fn store_load_forwarding() {
        let r = run(
            "
            .zeros buf 64
            la   x9, buf
            li   x10, 0
            li   x11, 2000
        loop:
            sd   x10, 0(x9)
            ld   x3, 0(x9)
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ",
            SimConfig::baseline(),
        );
        assert!(r.stats.store_forwards > 1500, "forwards {}", r.stats.store_forwards);
    }

    #[test]
    fn herding_counts_width_activity() {
        let r = run(COUNT_LOOP, SimConfig::thermal_herding());
        let s = &r.stats;
        // Counter values 0..2000: mostly low-width.
        assert!(s.int_ops_low > s.int_ops_full, "low {} full {}", s.int_ops_low, s.int_ops_full);
        assert!(s.width_pred.predictions > 1000);
        assert!(s.width_pred.accuracy() > 0.9, "width acc {}", s.width_pred.accuracy());
        // Herded allocation keeps the top die busiest.
        assert!(s.rs_top_die_fraction() > 0.5, "top die {}", s.rs_top_die_fraction());
        assert!(s.broadcast_gating_fraction() > 0.0);
    }

    #[test]
    fn herding_ipc_penalty_is_small() {
        // §3.8: ~97% width prediction accuracy avoids severe IPC loss.
        let base = run(COUNT_LOOP, SimConfig::baseline());
        let th = run(COUNT_LOOP, SimConfig::thermal_herding());
        let degradation = 1.0 - th.ipc() / base.ipc();
        assert!(degradation < 0.05, "TH degraded IPC by {degradation:.3}");
    }

    #[test]
    fn pipe_config_improves_branchy_code() {
        let src = "
            li   x10, 0
            li   x11, 4000
            li   x12, 99991
        loop:
            mul  x12, x12, x12
            addi x12, x12, 13
            andi x13, x12, 4
            beq  x13, x0, skip
            addi x14, x14, 1
        skip:
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ";
        let base = run(src, SimConfig::baseline());
        let pipe = run(src, SimConfig::pipe());
        assert!(
            pipe.ipc() > base.ipc(),
            "pipe {} !> base {}",
            pipe.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn pam_sees_stack_locality() {
        let r = run(
            "
            .zeros stack 4096
            la   x2, stack
            li   x10, 0
            li   x11, 1000
        loop:
            sd   x10, 0(x2)
            sd   x10, 8(x2)
            ld   x3, 0(x2)
            ld   x4, 8(x2)
            addi x10, x10, 1
            bne  x10, x11, loop
            halt
        ",
            SimConfig::thermal_herding(),
        );
        assert!(r.stats.pam.match_rate() > 0.9, "pam {}", r.stats.pam.match_rate());
    }

    #[test]
    fn fp_pipeline_executes() {
        let r = run(
            "
            li   x1, 1
            fcvt.d.l f1, x1
            li   x10, 0
            li   x11, 500
        loop:
            fadd f2, f2, f1
            fmul f3, f2, f1
            addi x10, x10, 1
            bne  x10, x11, loop
            fcvt.l.d x5, f2
            halt
        ",
            SimConfig::baseline(),
        );
        assert!(r.stats.fp_ops > 1000);
        // li + fcvt + li + li + 4 insts × 500 iterations + fcvt + halt.
        assert_eq!(r.stats.committed, 2006);
    }

    #[test]
    fn result_is_deterministic() {
        let a = run(COUNT_LOOP, SimConfig::baseline());
        let b = run(COUNT_LOOP, SimConfig::baseline());
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.committed, b.stats.committed);
    }

    #[test]
    fn inst_budget_stops_early() {
        let p = parse_asm(COUNT_LOOP).unwrap();
        let r = Simulator::new(SimConfig::baseline()).run(&p, 100).unwrap();
        assert!(r.stats.committed >= 100 && r.stats.committed < 110);
    }
}
