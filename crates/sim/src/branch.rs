//! Branch prediction: hybrid direction predictor, BTB with partial-target
//! storage (§3.7), indirect BTB, and return-address stack.

use th_width::SatCounter;

/// Result of a direction prediction, carrying the per-component votes so
/// the update can train the choosers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchUpdate {
    /// Final predicted direction.
    pub taken: bool,
    bimodal: bool,
    local: bool,
    global: bool,
    chose_global: bool,
    chose_local: bool,
}

/// The Table 1 "10KB Bimodal/Local/Global hybrid" direction predictor.
///
/// Structure (sizes chosen to fill the 10 KB budget):
///
/// * bimodal: 8K × 2-bit counters, PC-indexed (2 KB);
/// * local: 1K × 10-bit histories feeding 1K × 2-bit counters (1.5 KB);
/// * global: gshare with 13 bits of history → 8K × 2-bit (2 KB);
/// * per-address chooser (bimodal vs local) 8K × 2-bit (2 KB) and
///   history chooser (address-side vs global) 8K × 2-bit (2 KB).
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    bimodal: Vec<SatCounter>,
    local_hist: Vec<u16>,
    local_ctr: Vec<SatCounter>,
    gshare: Vec<SatCounter>,
    choose_local: Vec<SatCounter>,
    choose_global: Vec<SatCounter>,
    global_hist: u64,
}

const BIMODAL_BITS: usize = 13; // 8K
const LOCAL_HIST_ENTRIES_BITS: usize = 10; // 1K
const LOCAL_HIST_LEN: u32 = 10;
const GSHARE_BITS: usize = 13;

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// Creates the predictor with all counters weakly-not-taken.
    pub fn new() -> BranchPredictor {
        BranchPredictor {
            bimodal: vec![SatCounter::weakly_clear(); 1 << BIMODAL_BITS],
            local_hist: vec![0; 1 << LOCAL_HIST_ENTRIES_BITS],
            local_ctr: vec![SatCounter::weakly_clear(); 1 << LOCAL_HIST_LEN],
            gshare: vec![SatCounter::weakly_clear(); 1 << GSHARE_BITS],
            choose_local: vec![SatCounter::weakly_clear(); 1 << BIMODAL_BITS],
            choose_global: vec![SatCounter::weakly_set(); 1 << BIMODAL_BITS],
            global_hist: 0,
        }
    }

    fn pc_index(pc: u64, bits: usize) -> usize {
        ((pc >> 3) as usize) & ((1 << bits) - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&self, pc: u64) -> BranchUpdate {
        let bi = Self::pc_index(pc, BIMODAL_BITS);
        let bimodal = self.bimodal[bi].is_set();
        let lh = self.local_hist[Self::pc_index(pc, LOCAL_HIST_ENTRIES_BITS)] as usize
            & ((1 << LOCAL_HIST_LEN) - 1);
        let local = self.local_ctr[lh].is_set();
        let gi = (Self::pc_index(pc, GSHARE_BITS)) ^ (self.global_hist as usize & ((1 << GSHARE_BITS) - 1));
        let global = self.gshare[gi].is_set();
        let chose_local = self.choose_local[bi].is_set();
        let address_side = if chose_local { local } else { bimodal };
        let chose_global = self.choose_global[bi].is_set();
        let taken = if chose_global { global } else { address_side };
        BranchUpdate { taken, bimodal, local, global, chose_global, chose_local }
    }

    /// Trains all components with the resolved outcome.
    pub fn update(&mut self, pc: u64, prediction: BranchUpdate, taken: bool) {
        let bi = Self::pc_index(pc, BIMODAL_BITS);
        self.bimodal[bi].train(taken);
        let lh_idx = Self::pc_index(pc, LOCAL_HIST_ENTRIES_BITS);
        let lh = self.local_hist[lh_idx] as usize & ((1 << LOCAL_HIST_LEN) - 1);
        self.local_ctr[lh].train(taken);
        self.local_hist[lh_idx] =
            (((lh << 1) | taken as usize) & ((1 << LOCAL_HIST_LEN) - 1)) as u16;
        let gi = Self::pc_index(pc, GSHARE_BITS) ^ (self.global_hist as usize & ((1 << GSHARE_BITS) - 1));
        self.gshare[gi].train(taken);
        self.global_hist = (self.global_hist << 1) | taken as u64;

        // Choosers train toward the component that was right when they
        // disagreed.
        if prediction.local != prediction.bimodal {
            self.choose_local[bi].train(prediction.local == taken);
        }
        let address_side =
            if prediction.chose_local { prediction.local } else { prediction.bimodal };
        if prediction.global != address_side {
            self.choose_global[bi].train(prediction.global == taken);
        }
    }

    /// Storage budget in bytes (for documentation/tests).
    pub fn storage_bytes(&self) -> usize {
        (self.bimodal.len() * 2
            + self.local_ctr.len() * 2
            + self.gshare.len() * 2
            + self.choose_local.len() * 2
            + self.choose_global.len() * 2)
            / 8
            + self.local_hist.len() * (LOCAL_HIST_LEN as usize) / 8
    }
}

/// A BTB lookup result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BtbOutcome {
    /// Predicted target, if the BTB hit.
    pub target: Option<u64>,
    /// Whether the hit needed the upper 48 target bits from the lower
    /// three dies (target memoization bit set, §3.7) — a one-cycle
    /// front-end stall in the 3D design.
    pub needs_lower_dies: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct BtbEntry {
    valid: bool,
    tag: u64,
    target: u64,
    lru: u64,
}

/// A set-associative branch target buffer storing, per §3.7, the low 16
/// target bits on the top die plus a memoization bit that says whether the
/// upper 48 bits match the branch's own PC.
#[derive(Clone, Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    entries: Vec<BtbEntry>,
    tick: u64,
}

impl Btb {
    /// Creates a BTB with `sets × ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Btb {
        assert!(sets.is_power_of_two(), "BTB sets must be a power of two");
        assert!(ways > 0, "BTB needs at least one way");
        Btb { sets, ways, entries: vec![BtbEntry::default(); sets * ways], tick: 0 }
    }

    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 3) as usize) & (self.sets - 1)
    }

    fn tag_of(pc: u64) -> u64 {
        pc >> 3
    }

    /// Looks up the target for the branch at `pc`.
    pub fn lookup(&mut self, pc: u64) -> BtbOutcome {
        self.tick += 1;
        let set = self.set_of(pc);
        let base = set * self.ways;
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.tag == Self::tag_of(pc) {
                e.lru = self.tick;
                let partial = (e.target >> 16) == (pc >> 16);
                return BtbOutcome { target: Some(e.target), needs_lower_dies: !partial };
            }
        }
        BtbOutcome { target: None, needs_lower_dies: false }
    }

    /// Installs or refreshes the target for `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let set = self.set_of(pc);
        let base = set * self.ways;
        // Hit: refresh.
        for e in &mut self.entries[base..base + self.ways] {
            if e.valid && e.tag == Self::tag_of(pc) {
                e.target = target;
                e.lru = self.tick;
                return;
            }
        }
        // Miss: replace LRU (invalid entries have lru 0 and lose ties).
        let victim = self.entries[base..base + self.ways]
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru } else { 0 })
            .expect("ways > 0");
        *victim = BtbEntry { valid: true, tag: Self::tag_of(pc), target, lru: self.tick };
    }
}

/// A fixed-depth return-address stack. Overflow wraps (oldest entries are
/// overwritten); underflow returns `None`.
#[derive(Clone, Debug)]
pub struct ReturnStack {
    entries: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnStack {
    /// Creates a RAS with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ReturnStack {
        assert!(capacity > 0, "RAS needs capacity");
        ReturnStack { entries: vec![0; capacity], top: 0, depth: 0 }
    }

    /// Pushes a return address.
    pub fn push(&mut self, addr: u64) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = addr;
        self.depth = (self.depth + 1).min(self.entries.len());
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        let addr = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.depth -= 1;
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_always_taken() {
        let mut p = BranchPredictor::new();
        let pc = 0x1000;
        for _ in 0..8 {
            let pr = p.predict(pc);
            p.update(pc, pr, true);
        }
        assert!(p.predict(pc).taken);
    }

    #[test]
    fn predictor_learns_alternating_pattern_via_local_history() {
        let mut p = BranchPredictor::new();
        let pc = 0x2000;
        let mut correct = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let pr = p.predict(pc);
            if pr.taken == taken && i >= 100 {
                correct += 1;
            }
            p.update(pc, pr, taken);
        }
        // After warmup the local history should nail the period-2 pattern.
        assert!(correct >= 290, "correct = {correct}/300");
    }

    #[test]
    fn predictor_learns_global_correlation() {
        // B2 is taken iff B1 was taken: global history captures this.
        let mut p = BranchPredictor::new();
        let mut correct = 0;
        let mut b1;
        for i in 0..600u32 {
            b1 = (i * 7 + i / 3) % 3 == 0; // pseudo-random-ish
            let pr1 = p.predict(0x100);
            p.update(0x100, pr1, b1);
            let pr2 = p.predict(0x200);
            if pr2.taken == b1 && i >= 300 {
                correct += 1;
            }
            p.update(0x200, pr2, b1);
        }
        assert!(correct >= 240, "correct = {correct}/300");
    }

    #[test]
    fn storage_budget_is_about_10kb() {
        let p = BranchPredictor::new();
        let kb = p.storage_bytes() as f64 / 1024.0;
        assert!(kb > 8.0 && kb < 12.0, "predictor storage {kb:.1} KB");
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut btb = Btb::new(512, 4);
        assert_eq!(btb.lookup(0x4000).target, None);
        btb.update(0x4000, 0x4100);
        let out = btb.lookup(0x4000);
        assert_eq!(out.target, Some(0x4100));
        // Target shares the PC's upper 48 bits -> partial storage suffices.
        assert!(!out.needs_lower_dies);
    }

    #[test]
    fn btb_far_target_needs_lower_dies() {
        let mut btb = Btb::new(512, 4);
        btb.update(0x4000, 0xdead_0000_4100);
        let out = btb.lookup(0x4000);
        assert_eq!(out.target, Some(0xdead_0000_4100));
        assert!(out.needs_lower_dies);
    }

    #[test]
    fn btb_lru_replacement() {
        let mut btb = Btb::new(1, 2);
        btb.update(0x0, 0x10); // A
        btb.update(0x8, 0x20); // B
        btb.lookup(0x0); // touch A -> B is LRU
        btb.update(0x10, 0x30); // C evicts B
        assert!(btb.lookup(0x0).target.is_some());
        assert!(btb.lookup(0x8).target.is_none());
        assert!(btb.lookup(0x10).target.is_some());
    }

    #[test]
    fn ras_lifo_and_underflow() {
        let mut ras = ReturnStack::new(4);
        assert_eq!(ras.pop(), None);
        ras.push(1);
        ras.push(2);
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn ras_overflow_wraps() {
        let mut ras = ReturnStack::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3); // overwrites 1
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }
}
