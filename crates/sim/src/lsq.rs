//! Load and store queue ordering model (§3.5).
//!
//! The queues track program order between memory operations. Memory
//! dependence prediction is modelled as *perfect* (the oracle-driven
//! simulator knows every store's address at dispatch, standing in for the
//! aggressive speculation Core 2-class machines performed): a load waits
//! only for truly conflicting older stores, and forwards when an older
//! store wholly covers it — after that store has executed and its data is
//! available. Partial address memoization statistics are recorded on
//! every address broadcast into the queues.

use std::collections::VecDeque;

/// One store tracked by the store queue.
#[derive(Clone, Copy, Debug)]
struct SqEntry {
    seq: u64,
    addr: u64,
    size: u64,
    /// Cycle at which the store executed (address broadcast + data
    /// available); `u64::MAX` until it issues.
    ready_cycle: u64,
}

/// Result of a load's store-queue search.
///
/// Cycle payloads are `u64::MAX` while the matching store has not yet
/// executed — the load cannot issue before then.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSearch {
    /// An older store wholly covers the load: forward from it (the
    /// payload is the cycle the store data became available).
    Forward(u64),
    /// An older store partially overlaps the load: the load must wait for
    /// the store's data and then access memory.
    PartialOverlap(u64),
    /// No conflict: access the cache.
    Cache,
}

/// The load/store queues.
#[derive(Clone, Debug)]
pub struct Lsq {
    sq: VecDeque<SqEntry>,
    sq_cap: usize,
    lq_occupancy: usize,
    lq_cap: usize,
}

impl Lsq {
    /// Creates queues with the Table 1 capacities.
    pub fn new(lq_cap: usize, sq_cap: usize) -> Lsq {
        Lsq { sq: VecDeque::new(), sq_cap, lq_occupancy: 0, lq_cap }
    }

    /// Whether a load can be allocated.
    pub fn lq_has_space(&self) -> bool {
        self.lq_occupancy < self.lq_cap
    }

    /// Whether a store can be allocated.
    pub fn sq_has_space(&self) -> bool {
        self.sq.len() < self.sq_cap
    }

    /// Current load-queue occupancy.
    #[allow(dead_code)]
    pub fn lq_occupancy(&self) -> usize {
        self.lq_occupancy
    }

    /// Current store-queue occupancy.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn sq_occupancy(&self) -> usize {
        self.sq.len()
    }

    /// Allocates a load-queue entry (call after checking
    /// [`Lsq::lq_has_space`]).
    pub fn alloc_load(&mut self) {
        debug_assert!(self.lq_has_space());
        self.lq_occupancy += 1;
    }

    /// Releases a load-queue entry at commit.
    pub fn free_load(&mut self) {
        debug_assert!(self.lq_occupancy > 0);
        self.lq_occupancy -= 1;
    }

    /// Allocates a store-queue entry for `seq` (program order) with its
    /// oracle-known address.
    pub fn alloc_store(&mut self, seq: u64, addr: u64, size: u64) {
        debug_assert!(self.sq_has_space());
        debug_assert!(self.sq.back().is_none_or(|e| e.seq < seq), "stores must arrive in order");
        self.sq.push_back(SqEntry { seq, addr, size, ready_cycle: u64::MAX });
    }

    /// Records that a store has executed (data available for forwarding).
    /// The queue is ordered by `seq` (stores allocate in program order),
    /// so the entry is found by binary search.
    pub fn set_store_ready(&mut self, seq: u64, cycle: u64) {
        let idx = self.sq.partition_point(|e| e.seq < seq);
        if let Some(e) = self.sq.get_mut(idx) {
            if e.seq == seq {
                e.ready_cycle = cycle;
            }
        }
    }

    /// Removes the oldest store (at commit).
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or the head is not `seq` (stores
    /// commit in order).
    pub fn commit_store(&mut self, seq: u64) {
        let head = self.sq.pop_front().expect("store queue underflow");
        assert_eq!(head.seq, seq, "stores must commit in order");
    }

    /// Searches the store queue on behalf of the load `load_seq`
    /// accessing `[addr, addr+size)`.
    pub fn search_for_load(&self, load_seq: u64, addr: u64, size: u64) -> LoadSearch {
        // Only stores older than the load matter; the queue is ordered by
        // `seq`, so they form the prefix below `partition_point`. Walk
        // them youngest-first so the nearest match wins.
        let older = self.sq.partition_point(|e| e.seq < load_seq);
        for e in self.sq.iter().take(older).rev() {
            let covers = e.addr <= addr && addr + size <= e.addr + e.size;
            let overlaps = e.addr < addr + size && addr < e.addr + e.size;
            if covers {
                return LoadSearch::Forward(e.ready_cycle);
            }
            if overlaps {
                return LoadSearch::PartialOverlap(e.ready_cycle);
            }
        }
        LoadSearch::Cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_limits() {
        let mut lsq = Lsq::new(2, 1);
        assert!(lsq.lq_has_space());
        lsq.alloc_load();
        lsq.alloc_load();
        assert!(!lsq.lq_has_space());
        lsq.free_load();
        assert!(lsq.lq_has_space());

        assert!(lsq.sq_has_space());
        lsq.alloc_store(1, 0x100, 8);
        assert!(!lsq.sq_has_space());
    }

    #[test]
    fn disjoint_load_never_waits() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(5, 0x900, 8);
        // Address disjoint from the pending store: the load can go to the
        // cache even though the store has not executed.
        assert_eq!(lsq.search_for_load(10, 0x100, 8), LoadSearch::Cache);
    }

    #[test]
    fn covered_load_waits_until_store_executes() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(5, 0x100, 8);
        assert_eq!(lsq.search_for_load(10, 0x100, 8), LoadSearch::Forward(u64::MAX));
        lsq.set_store_ready(5, 12);
        assert_eq!(lsq.search_for_load(10, 0x100, 8), LoadSearch::Forward(12));
    }

    #[test]
    fn forwarding_requires_full_coverage() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(5, 0x100, 8);
        lsq.set_store_ready(5, 12);
        // Fully covered 4-byte load inside the 8-byte store.
        assert_eq!(lsq.search_for_load(9, 0x104, 4), LoadSearch::Forward(12));
        // Partial overlap: load straddles the store's end.
        assert_eq!(lsq.search_for_load(9, 0x104, 8), LoadSearch::PartialOverlap(12));
    }

    #[test]
    fn younger_stores_are_ignored() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(20, 0x100, 8);
        lsq.set_store_ready(20, 3);
        // The load is older than the store: no conflict.
        assert_eq!(lsq.search_for_load(10, 0x100, 8), LoadSearch::Cache);
    }

    #[test]
    fn nearest_older_store_wins() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(1, 0x100, 8);
        lsq.alloc_store(2, 0x100, 8);
        lsq.set_store_ready(1, 5);
        lsq.set_store_ready(2, 9);
        assert_eq!(lsq.search_for_load(10, 0x100, 8), LoadSearch::Forward(9));
    }

    #[test]
    fn commit_in_order() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(1, 0, 8);
        lsq.alloc_store(2, 8, 8);
        lsq.commit_store(1);
        lsq.commit_store(2);
        assert_eq!(lsq.sq_occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_commit_panics() {
        let mut lsq = Lsq::new(4, 4);
        lsq.alloc_store(1, 0, 8);
        lsq.alloc_store(2, 8, 8);
        lsq.commit_store(2);
    }
}
