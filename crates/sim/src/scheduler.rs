//! Reservation-station occupancy with 3D-aware allocation (§3.4).
//!
//! The RS entries are stacked one quarter per die. The baseline allocator
//! scatters entries round-robin (a planar design has no reason to prefer
//! any entry); the Thermal Herding allocator fills the die closest to the
//! heat sink first, falling to lower dies only when the upper ones are
//! full. Per-die tag broadcasts are gated when a die holds no occupied
//! entries.

/// RS allocation policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocPolicy {
    /// Scatter allocations across dies (planar-equivalent behaviour).
    RoundRobin,
    /// Fill the top die first (§3.4: "herds instructions toward the top
    /// die to keep the active entries close to the heat sink").
    HerdTopFirst,
}

/// Tracks per-die reservation-station occupancy.
#[derive(Clone, Debug)]
pub struct Scheduler {
    per_die: usize,
    occupancy: [usize; 4],
    policy: AllocPolicy,
    rr_next: usize,
}

impl Scheduler {
    /// Creates a scheduler for `rs_size` total entries split over 4 dies.
    ///
    /// # Panics
    ///
    /// Panics if `rs_size` is not divisible by 4.
    pub fn new(rs_size: usize, policy: AllocPolicy) -> Scheduler {
        assert!(rs_size.is_multiple_of(4), "RS entries must split evenly across 4 dies");
        Scheduler { per_die: rs_size / 4, occupancy: [0; 4], policy, rr_next: 0 }
    }

    /// Total occupied entries.
    pub fn occupied(&self) -> usize {
        self.occupancy.iter().sum()
    }

    /// Whether the scheduler is full.
    pub fn is_full(&self) -> bool {
        self.occupied() == self.per_die * 4
    }

    /// Per-die occupancy.
    pub fn occupancy(&self) -> [usize; 4] {
        self.occupancy
    }

    /// Allocates one entry and returns the die it landed on, or `None` if
    /// all entries are busy.
    pub fn alloc(&mut self) -> Option<usize> {
        match self.policy {
            AllocPolicy::HerdTopFirst => {
                let die = (0..4).find(|&d| self.occupancy[d] < self.per_die)?;
                self.occupancy[die] += 1;
                Some(die)
            }
            AllocPolicy::RoundRobin => {
                for i in 0..4 {
                    let die = (self.rr_next + i) % 4;
                    if self.occupancy[die] < self.per_die {
                        self.occupancy[die] += 1;
                        self.rr_next = (die + 1) % 4;
                        return Some(die);
                    }
                }
                None
            }
        }
    }

    /// Releases one entry on `die`.
    ///
    /// # Panics
    ///
    /// Panics if that die has no occupied entries.
    pub fn free(&mut self, die: usize) {
        assert!(self.occupancy[die] > 0, "freeing an empty die {die}");
        self.occupancy[die] -= 1;
    }

    /// Which dies a tag broadcast must drive: dies with at least one
    /// occupied entry. Empty dies are gated (§3.4).
    pub fn broadcast_dies(&self) -> [bool; 4] {
        [
            self.occupancy[0] > 0,
            self.occupancy[1] > 0,
            self.occupancy[2] > 0,
            self.occupancy[3] > 0,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn herding_fills_top_die_first() {
        let mut s = Scheduler::new(32, AllocPolicy::HerdTopFirst);
        for _ in 0..8 {
            assert_eq!(s.alloc(), Some(0));
        }
        assert_eq!(s.alloc(), Some(1), "9th allocation overflows to die 1");
        assert_eq!(s.occupancy(), [8, 1, 0, 0]);
    }

    #[test]
    fn herding_reuses_top_die_after_free() {
        let mut s = Scheduler::new(32, AllocPolicy::HerdTopFirst);
        for _ in 0..9 {
            s.alloc();
        }
        s.free(0);
        assert_eq!(s.alloc(), Some(0), "freed top-die entry is preferred");
    }

    #[test]
    fn round_robin_scatters() {
        let mut s = Scheduler::new(32, AllocPolicy::RoundRobin);
        let dies: Vec<usize> = (0..4).map(|_| s.alloc().unwrap()).collect();
        assert_eq!(dies, vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_scheduler_rejects() {
        let mut s = Scheduler::new(8, AllocPolicy::HerdTopFirst);
        for _ in 0..8 {
            assert!(s.alloc().is_some());
        }
        assert!(s.is_full());
        assert_eq!(s.alloc(), None);
    }

    #[test]
    fn broadcast_gating_follows_occupancy() {
        let mut s = Scheduler::new(32, AllocPolicy::HerdTopFirst);
        assert_eq!(s.broadcast_dies(), [false; 4]);
        for _ in 0..9 {
            s.alloc();
        }
        assert_eq!(s.broadcast_dies(), [true, true, false, false]);
    }

    #[test]
    #[should_panic(expected = "empty die")]
    fn free_empty_die_panics() {
        let mut s = Scheduler::new(32, AllocPolicy::HerdTopFirst);
        s.free(2);
    }

    proptest! {
        #[test]
        fn occupancy_is_conserved(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut s = Scheduler::new(32, AllocPolicy::HerdTopFirst);
            let mut live: Vec<usize> = Vec::new();
            for alloc in ops {
                if alloc {
                    if let Some(d) = s.alloc() {
                        live.push(d);
                    }
                } else if let Some(d) = live.pop() {
                    s.free(d);
                }
                prop_assert_eq!(s.occupied(), live.len());
                prop_assert!(s.occupied() <= 32);
            }
        }

        #[test]
        fn herding_dominates_round_robin_on_top_die(n in 1usize..32) {
            let mut herd = Scheduler::new(32, AllocPolicy::HerdTopFirst);
            let mut rr = Scheduler::new(32, AllocPolicy::RoundRobin);
            for _ in 0..n {
                herd.alloc();
                rr.alloc();
            }
            prop_assert!(herd.occupancy()[0] >= rr.occupancy()[0]);
        }
    }
}
