//! Simulator configuration (Table 1 plus the paper's design points).

use std::sync::atomic::{AtomicU8, Ordering};
use th_width::WidthPolicy;

/// Which core-loop implementation executes the pipeline.
///
/// Both engines model the identical machine and must produce bit-identical
/// [`crate::SimStats`]; `Scan` is the original per-cycle linear-scan loop,
/// kept as the reference oracle for the event-driven rewrite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreEngine {
    /// Walk the full ROB/IFQ every cycle (the seed implementation).
    Scan,
    /// Completion-event heap, dependency wakeup lists, an explicit ready
    /// queue, and idle-cycle skipping.
    Event,
}

/// Process-wide engine default: 0 = unset, 1 = scan, 2 = event.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(0);

/// The engine newly built configurations start with.
///
/// Resolution order: the last [`set_default_engine`] call, then the
/// `TH_CORE_ENGINE` environment variable (`scan` or `event`), then
/// [`CoreEngine::Event`].
pub fn default_engine() -> CoreEngine {
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        1 => CoreEngine::Scan,
        2 => CoreEngine::Event,
        _ => match std::env::var("TH_CORE_ENGINE").as_deref() {
            Ok("scan") => CoreEngine::Scan,
            _ => CoreEngine::Event,
        },
    }
}

/// Overrides (or with `None`, resets to the environment/default) the
/// engine used by subsequently constructed [`SimConfig`]s. Benchmarks use
/// this to A/B the two engines within one process.
pub fn set_default_engine(engine: Option<CoreEngine>) {
    let v = match engine {
        None => 0,
        Some(CoreEngine::Scan) => 1,
        Some(CoreEngine::Event) => 2,
    };
    DEFAULT_ENGINE.store(v, Ordering::Relaxed);
}

/// Structural core parameters (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreParams {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions decoded/dispatched per cycle.
    pub decode_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Maximum instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Reorder buffer entries.
    pub rob_size: usize,
    /// Reservation station entries.
    pub rs_size: usize,
    /// Load queue entries.
    pub lq_size: usize,
    /// Store queue entries.
    pub sq_size: usize,
    /// Instruction fetch queue entries.
    pub ifq_size: usize,
    /// Simple integer ALUs.
    pub int_alu: usize,
    /// Shifter units.
    pub int_shift: usize,
    /// Integer multiply/complex units.
    pub int_mul: usize,
    /// FP adders.
    pub fp_add: usize,
    /// FP multipliers.
    pub fp_mul: usize,
    /// FP divide/sqrt units.
    pub fp_div: usize,
    /// Load/store-capable memory ports.
    pub mem_ports: usize,
    /// Additional load-only ports.
    pub load_only_ports: usize,
}

impl Default for CoreParams {
    fn default() -> CoreParams {
        CoreParams {
            fetch_width: 4,
            decode_width: 4,
            commit_width: 4,
            issue_width: 6,
            rob_size: 96,
            rs_size: 32,
            lq_size: 32,
            sq_size: 20,
            ifq_size: 16,
            int_alu: 3,
            int_shift: 2,
            int_mul: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
            mem_ports: 1,
            load_only_ports: 1,
        }
    }
}

/// Execution latencies per functional-unit class, in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuLatencies {
    /// Simple ALU / branch resolution.
    pub int_alu: u64,
    /// Shift.
    pub int_shift: u64,
    /// Integer multiply.
    pub int_mul: u64,
    /// Integer divide.
    pub int_div: u64,
    /// FP add/sub/convert/compare.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// FP square root.
    pub fp_sqrt: u64,
    /// Address generation for loads/stores.
    pub agu: u64,
}

impl Default for FuLatencies {
    fn default() -> FuLatencies {
        FuLatencies {
            int_alu: 1,
            int_shift: 1,
            int_mul: 3,
            int_div: 20,
            fp_add: 3,
            fp_mul: 5,
            fp_div: 20,
            fp_sqrt: 30,
            agu: 1,
        }
    }
}

/// Pipeline-organisation parameters that the 3D design improves (§3.8):
/// a shorter branch-redirect path and a faster L2 (in cycles), and removal
/// of the extra FP-load routing cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Front-end depth: cycles from fetch to dispatch-ready.
    pub frontend_depth: u64,
    /// Extra cycles for the execute→fetch misprediction redirect.
    pub redirect_extra: u64,
    /// Extra cycle to route loaded values to the FP registers (§3.8:
    /// removed by the compacted 3D bypass network).
    pub fp_load_extra_cycle: bool,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
}

impl PipelineConfig {
    /// The planar baseline: min-14-cycle branch misprediction (Table 1),
    /// 12-cycle L2, extra FP-load cycle present.
    pub fn baseline() -> PipelineConfig {
        // Mispredict penalty ≈ redirect_extra + frontend_depth + dispatch
        // + issue ≈ 2 + 10 + 2 = 14 cycles minimum.
        PipelineConfig {
            frontend_depth: 10,
            redirect_extra: 2,
            fp_load_extra_cycle: true,
            l2_latency: 12,
        }
    }

    /// The 3D pipeline optimisations of §3.8: two stages shed on the
    /// redirect path, a faster L2, and no FP-load routing cycle.
    pub fn three_d() -> PipelineConfig {
        PipelineConfig {
            frontend_depth: 9,
            redirect_extra: 1,
            fp_load_extra_cycle: false,
            l2_latency: 8,
        }
    }
}

/// Memory-hierarchy parameters (Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemConfig {
    /// L1 line size, bytes.
    pub line_bytes: u64,
    /// L1 instruction cache: (sets, ways). 32 KB 8-way with 64 B lines.
    pub l1i: (usize, usize),
    /// L1 data cache: (sets, ways).
    pub l1d: (usize, usize),
    /// L1 hit latency, cycles.
    pub l1_latency: u64,
    /// Unified L2: (sets, ways). 4 MB 16-way.
    pub l2: (usize, usize),
    /// Main-memory latency in **nanoseconds** — fixed in wall-clock time
    /// so faster clocks see proportionally more cycles per miss (§5.1.2).
    pub dram_ns: f64,
    /// ITLB entries / ways.
    pub itlb: (usize, usize),
    /// DTLB entries / ways.
    pub dtlb: (usize, usize),
    /// Page size, bytes.
    pub page_bytes: u64,
    /// TLB miss (page-walk) penalty, cycles.
    pub tlb_miss_penalty: u64,
}

impl Default for MemConfig {
    fn default() -> MemConfig {
        MemConfig {
            line_bytes: 64,
            l1i: (64, 8),
            l1d: (64, 8),
            l1_latency: 3,
            l2: (4096, 16),
            dram_ns: 75.0,
            itlb: (32, 4),
            dtlb: (64, 4),
            page_bytes: 4096,
            tlb_miss_penalty: 30,
        }
    }
}

/// The Thermal Herding mechanisms and their penalty model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HerdingConfig {
    /// Master switch: width prediction plus all §3 mechanisms.
    pub enabled: bool,
    /// Width predictor table entries (power of two).
    pub predictor_entries: usize,
    /// How "low width" is defined.
    pub policy: WidthPolicy,
    /// Herd RS allocation toward the top die (§3.4). When disabled the
    /// allocator scatters entries round-robin as a planar design would.
    pub rs_herding: bool,
    /// Partial address memoization in the LSQ (§3.5).
    pub pam: bool,
    /// Two-bit partial value encoding in the L1-D (§3.6); when disabled a
    /// plain width-memoization bit is modelled instead (zeros-only).
    pub partial_value_encoding: bool,
}

impl HerdingConfig {
    /// Herding disabled (planar baseline and the `Fast`/`Pipe` points).
    pub fn off() -> HerdingConfig {
        HerdingConfig {
            enabled: false,
            predictor_entries: 4096,
            policy: WidthPolicy::SignExtended,
            rs_herding: false,
            pam: false,
            partial_value_encoding: false,
        }
    }

    /// All mechanisms on (the `TH` and `3D` points).
    pub fn on() -> HerdingConfig {
        HerdingConfig {
            enabled: true,
            rs_herding: true,
            pam: true,
            partial_value_encoding: true,
            ..HerdingConfig::off()
        }
    }
}

/// Complete simulator configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimConfig {
    /// Clock frequency, GHz (affects DRAM latency in cycles).
    pub clock_ghz: f64,
    /// Structural parameters.
    pub core: CoreParams,
    /// Execution latencies.
    pub lat: FuLatencies,
    /// Pipeline organisation.
    pub pipeline: PipelineConfig,
    /// Memory hierarchy.
    pub mem: MemConfig,
    /// Thermal Herding mechanisms.
    pub herding: HerdingConfig,
    /// Core-loop implementation (statistically invisible; see
    /// [`CoreEngine`]).
    pub engine: CoreEngine,
}

impl SimConfig {
    /// The planar 2.66 GHz baseline (`Base` in Figure 8).
    pub fn baseline() -> SimConfig {
        SimConfig {
            clock_ghz: 2.66,
            core: CoreParams::default(),
            lat: FuLatencies::default(),
            pipeline: PipelineConfig::baseline(),
            mem: MemConfig::default(),
            herding: HerdingConfig::off(),
            engine: default_engine(),
        }
    }

    /// Baseline plus Thermal Herding at the baseline clock (`TH`).
    pub fn thermal_herding() -> SimConfig {
        SimConfig { herding: HerdingConfig::on(), ..SimConfig::baseline() }
    }

    /// Baseline plus the 3D pipeline optimisations at the baseline clock
    /// (`Pipe`).
    pub fn pipe() -> SimConfig {
        SimConfig { pipeline: PipelineConfig::three_d(), ..SimConfig::baseline() }
    }

    /// Baseline microarchitecture at the 3D clock (`Fast`).
    pub fn fast(clock_ghz: f64) -> SimConfig {
        SimConfig { clock_ghz, ..SimConfig::baseline() }
    }

    /// The full 3D processor: herding + pipeline optimisations + 3D clock
    /// (`3D`).
    pub fn three_d(clock_ghz: f64) -> SimConfig {
        SimConfig {
            clock_ghz,
            herding: HerdingConfig::on(),
            pipeline: PipelineConfig::three_d(),
            ..SimConfig::baseline()
        }
    }

    /// DRAM latency in cycles at this configuration's clock.
    pub fn dram_cycles(&self) -> u64 {
        (self.mem.dram_ns * self.clock_ghz).round() as u64
    }

    /// Minimum branch misprediction penalty in cycles (fetch redirect +
    /// front end + dispatch/issue).
    pub fn mispredict_penalty(&self) -> u64 {
        self.pipeline.redirect_extra + self.pipeline.frontend_depth + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table1() {
        let c = SimConfig::baseline();
        assert_eq!(c.core.fetch_width, 4);
        assert_eq!(c.core.issue_width, 6);
        assert_eq!(c.core.rob_size, 96);
        assert_eq!(c.core.rs_size, 32);
        assert_eq!(c.core.lq_size, 32);
        assert_eq!(c.core.sq_size, 20);
        assert_eq!(c.core.ifq_size, 16);
        assert_eq!(c.core.int_alu, 3);
        assert_eq!(c.core.int_shift, 2);
        assert_eq!(c.core.int_mul, 1);
        assert_eq!(c.mem.l1d.0 * c.mem.l1d.1 * 64, 32 * 1024); // 32 KB
        assert_eq!(c.mem.l2.0 * c.mem.l2.1 * 64, 4 * 1024 * 1024); // 4 MB
        assert_eq!(c.pipeline.l2_latency, 12);
        assert_eq!(c.mem.l1_latency, 3);
        assert_eq!(c.mispredict_penalty(), 14); // "Min. 14 cycles"
        assert!(!c.herding.enabled);
    }

    #[test]
    fn dram_cycles_scale_with_clock() {
        let base = SimConfig::baseline();
        let fast = SimConfig::fast(3.93);
        assert_eq!(base.dram_cycles(), 200); // 75 ns × 2.66 GHz
        assert_eq!(fast.dram_cycles(), 295); // 75 ns × 3.93 GHz
        assert!(fast.dram_cycles() > base.dram_cycles());
    }

    #[test]
    fn design_points_differ_only_where_expected() {
        let base = SimConfig::baseline();
        let th = SimConfig::thermal_herding();
        assert_eq!(th.pipeline, base.pipeline);
        assert_eq!(th.clock_ghz, base.clock_ghz);
        assert!(th.herding.enabled);

        let pipe = SimConfig::pipe();
        assert!(!pipe.herding.enabled);
        assert!(pipe.mispredict_penalty() < base.mispredict_penalty());
        assert!(pipe.pipeline.l2_latency < base.pipeline.l2_latency);

        let three_d = SimConfig::three_d(3.93);
        assert!(three_d.herding.enabled);
        assert_eq!(three_d.pipeline, pipe.pipeline);
        assert!(three_d.clock_ghz > base.clock_ghz);
    }

    #[test]
    fn herding_presets() {
        assert!(HerdingConfig::on().pam);
        assert!(HerdingConfig::on().rs_herding);
        assert!(!HerdingConfig::off().enabled);
        assert!(HerdingConfig::on().predictor_entries.is_power_of_two());
    }
}
