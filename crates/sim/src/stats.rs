//! Simulation statistics: everything the power, thermal, and reporting
//! layers need, as raw counters.

use th_stack3d::ActivityMatrix;
use th_width::{DieActivity, EncodingStats, PamStats, WidthPredictStats};

/// Counters accumulated over one simulation run.
///
/// Width-split counters (`*_low` / `*_full`) record the *architectural*
/// width of the value handled, which is what determines how many dies
/// switch in the significance-partitioned datapath. They are recorded
/// regardless of whether herding is enabled so that the same run can be
/// priced as a planar or a 3D design; whether gating actually *happens*
/// is the power model's decision based on the configuration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct SimStats {
    // ---- global ----
    pub cycles: u64,
    pub committed: u64,
    pub fetched: u64,

    // ---- front end ----
    pub icache_accesses: u64,
    pub icache_misses: u64,
    pub itlb_accesses: u64,
    pub itlb_misses: u64,
    pub fetch_stall_cycles: u64,
    pub ifq_full_stalls: u64,

    // ---- branches ----
    pub cond_branches: u64,
    pub cond_mispredicts: u64,
    pub jumps: u64,
    pub indirect_jumps: u64,
    pub indirect_mispredicts: u64,
    pub btb_lookups: u64,
    pub btb_hits: u64,
    pub btb_updates: u64,
    /// Predicted-taken fetches whose BTB target needed the upper 48 bits
    /// from the lower dies (target memoization miss, §3.7): one-cycle
    /// front-end stall each.
    pub btb_full_target_stalls: u64,
    /// BTB targets serviced from the top die (upper bits reused from the
    /// branch PC).
    pub btb_partial_target_hits: u64,
    pub ras_pushes: u64,
    pub ras_pops: u64,
    pub bpred_lookups: u64,
    pub bpred_updates: u64,

    // ---- dispatch / rename / rob ----
    pub dispatched: u64,
    pub rename_ops: u64,
    pub rob_writes_low: u64,
    pub rob_writes_full: u64,
    pub rob_reads_low: u64,
    pub rob_reads_full: u64,
    pub rob_full_stalls: u64,
    pub rs_full_stalls: u64,
    pub lsq_full_stalls: u64,
    /// Dispatch groups stalled one cycle by an unsafe operand-width
    /// misprediction at register read (§3.1: at most one per group).
    pub rf_unsafe_group_stalls: u64,

    // ---- register file ----
    pub rf_reads_low: u64,
    pub rf_reads_full: u64,
    pub rf_writes_low: u64,
    pub rf_writes_full: u64,

    // ---- scheduler ----
    pub rs_allocs_per_die: [u64; 4],
    /// Entry-cycles of residency per die: each cycle, every occupied RS
    /// entry adds one to its die. This — not the allocation count — is
    /// what determines where scheduler power burns, since an entry keeps
    /// its CAM comparators matching for as long as it waits.
    pub rs_occupancy_cycles_per_die: [u64; 4],
    /// Tag broadcasts issued (each wakeup event counts once).
    pub tag_broadcasts: u64,
    /// Per-die broadcasts actually driven (unoccupied dies are gated,
    /// §3.4).
    pub tag_broadcast_die_driven: [u64; 4],
    pub issued: u64,

    // ---- execution ----
    pub int_ops_low: u64,
    pub int_ops_full: u64,
    pub fp_ops: u64,
    pub bypass_low: u64,
    pub bypass_full: u64,
    /// One-cycle stalls to re-enable the upper 48 bits of an arithmetic
    /// unit after an unsafe input-width misprediction (§3.2).
    pub exec_reenable_stalls: u64,
    /// Re-executions forced by output-width mispredictions (§3.2).
    pub output_width_replays: u64,

    // ---- memory ----
    pub loads: u64,
    pub stores: u64,
    pub store_forwards: u64,
    pub dcache_accesses: u64,
    pub dcache_misses: u64,
    pub dcache_writes_low: u64,
    pub dcache_writes_full: u64,
    /// One-cycle cache-pipeline stalls on unsafe load-width
    /// mispredictions (§3.6).
    pub dcache_width_stalls: u64,
    pub dtlb_accesses: u64,
    pub dtlb_misses: u64,
    pub l2_accesses: u64,
    pub l2_misses: u64,
    pub dram_accesses: u64,
    /// L1⇄L2 spill/fill transfers — always full-width on all dies (§3.6).
    pub spill_fill_transfers: u64,

    // ---- width machinery ----
    pub width_pred: WidthPredictStats,
    pub pam: PamStats,
    pub dcache_encodings: EncodingStats,

    /// Event-sourced per-(unit, die) access ledger, recorded at every
    /// pipeline access site (see `th_stack3d::ActivityMatrix` for the
    /// die-touch semantics). This is the measured counterpart of the
    /// scalar width-split counters above: the power model prices watts
    /// directly from it on the default path.
    pub activity: ActivityMatrix,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Conditional branch direction-prediction accuracy.
    pub fn branch_accuracy(&self) -> f64 {
        if self.cond_branches == 0 {
            1.0
        } else {
            1.0 - self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// L1-D miss rate per access.
    pub fn dcache_miss_rate(&self) -> f64 {
        if self.dcache_accesses == 0 {
            0.0
        } else {
            self.dcache_misses as f64 / self.dcache_accesses as f64
        }
    }

    /// L2 miss rate per access.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// DRAM accesses per thousand committed instructions — the
    /// memory-boundedness metric that separates `mcf`-like from
    /// compute-bound workloads.
    pub fn dram_per_kilo_inst(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.dram_accesses as f64 / self.committed as f64
        }
    }

    /// Register-file read activity split per die, assuming the
    /// significance-partitioned organisation.
    pub fn rf_read_activity(&self) -> DieActivity {
        let mut a = DieActivity::default();
        a.record_n(th_width::Width::Low, self.rf_reads_low);
        a.record_n(th_width::Width::Full, self.rf_reads_full);
        a
    }

    /// Fraction of integer operations whose values were low-width.
    pub fn low_width_fraction(&self) -> f64 {
        let total = self.int_ops_low + self.int_ops_full;
        if total == 0 {
            0.0
        } else {
            self.int_ops_low as f64 / total as f64
        }
    }

    /// Fraction of RS allocations that landed on the top die.
    pub fn rs_top_die_fraction(&self) -> f64 {
        let total: u64 = self.rs_allocs_per_die.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.rs_allocs_per_die[0] as f64 / total as f64
        }
    }

    /// Fraction of RS entry-residency (entry-cycles) spent on the top die
    /// — the herding metric that actually drives scheduler power.
    pub fn rs_top_die_residency(&self) -> f64 {
        let total: u64 = self.rs_occupancy_cycles_per_die.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.rs_occupancy_cycles_per_die[0] as f64 / total as f64
        }
    }

    /// Fraction of per-die tag broadcasts that were gated off.
    pub fn broadcast_gating_fraction(&self) -> f64 {
        let possible = self.tag_broadcasts * 4;
        if possible == 0 {
            return 0.0;
        }
        let driven: u64 = self.tag_broadcast_die_driven.iter().sum();
        1.0 - driven as f64 / possible as f64
    }

    /// A point-in-time copy of the counters, for later use with
    /// [`SimStats::delta`]. (An explicit name for `clone()` at interval
    /// boundaries — co-simulation snapshots the counters every interval
    /// and prices only the work done since the previous snapshot.)
    pub fn snapshot(&self) -> SimStats {
        self.clone()
    }

    /// The counters accumulated since `prev` was snapshotted: the
    /// per-interval activity delta that drives phase-coupled power.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `prev` is componentwise ≤ `self` (i.e. it really
    /// is an earlier snapshot of the same run).
    pub fn delta(&self, prev: &SimStats) -> SimStats {
        let mut d = self.clone();
        d.subtract_prefix(prev);
        d
    }

    /// Subtracts a prefix snapshot from this stats block — used to discard
    /// a warmup period (caches and predictors stay warm; only the
    /// measurement window is reported).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `prefix` is componentwise ≤ `self`.
    pub fn subtract_prefix(&mut self, prefix: &SimStats) {
        macro_rules! sub {
            ($($f:ident),* $(,)?) => { $(
                debug_assert!(self.$f >= prefix.$f, concat!(stringify!($f), " underflow"));
                self.$f -= prefix.$f;
            )* };
        }
        sub!(
            cycles, committed, fetched, icache_accesses, icache_misses, itlb_accesses,
            itlb_misses, fetch_stall_cycles, ifq_full_stalls, cond_branches, cond_mispredicts,
            jumps, indirect_jumps, indirect_mispredicts, btb_lookups, btb_hits, btb_updates,
            btb_full_target_stalls, btb_partial_target_hits, ras_pushes, ras_pops,
            bpred_lookups, bpred_updates, dispatched, rename_ops, rob_writes_low,
            rob_writes_full, rob_reads_low, rob_reads_full, rob_full_stalls, rs_full_stalls,
            lsq_full_stalls, rf_unsafe_group_stalls, rf_reads_low, rf_reads_full,
            rf_writes_low, rf_writes_full, tag_broadcasts, issued, int_ops_low, int_ops_full,
            fp_ops, bypass_low, bypass_full, exec_reenable_stalls, output_width_replays,
            loads, stores, store_forwards, dcache_accesses, dcache_misses, dcache_writes_low,
            dcache_writes_full, dcache_width_stalls, dtlb_accesses, dtlb_misses, l2_accesses,
            l2_misses, dram_accesses, spill_fill_transfers,
        );
        for i in 0..4 {
            self.rs_allocs_per_die[i] -= prefix.rs_allocs_per_die[i];
            self.rs_occupancy_cycles_per_die[i] -= prefix.rs_occupancy_cycles_per_die[i];
            self.tag_broadcast_die_driven[i] -= prefix.tag_broadcast_die_driven[i];
        }
        self.width_pred.predictions -= prefix.width_pred.predictions;
        self.width_pred.correct_low -= prefix.width_pred.correct_low;
        self.width_pred.correct_full -= prefix.width_pred.correct_full;
        self.width_pred.unsafe_mispredictions -= prefix.width_pred.unsafe_mispredictions;
        self.width_pred.safe_mispredictions -= prefix.width_pred.safe_mispredictions;
        self.pam.matches -= prefix.pam.matches;
        self.pam.misses -= prefix.pam.misses;
        for i in 0..4 {
            self.dcache_encodings.counts[i] -= prefix.dcache_encodings.counts[i];
        }
        self.activity.subtract_prefix(&prefix.activity);
    }

    /// Merges another run's counters into this one (used to aggregate the
    /// two cores of the dual-core experiments).
    pub fn merge(&mut self, other: &SimStats) {
        macro_rules! acc {
            ($($f:ident),* $(,)?) => { $( self.$f += other.$f; )* };
        }
        acc!(
            cycles, committed, fetched, icache_accesses, icache_misses, itlb_accesses,
            itlb_misses, fetch_stall_cycles, ifq_full_stalls, cond_branches, cond_mispredicts,
            jumps, indirect_jumps, indirect_mispredicts, btb_lookups, btb_hits, btb_updates,
            btb_full_target_stalls, btb_partial_target_hits, ras_pushes, ras_pops,
            bpred_lookups, bpred_updates, dispatched, rename_ops, rob_writes_low,
            rob_writes_full, rob_reads_low, rob_reads_full, rob_full_stalls, rs_full_stalls,
            lsq_full_stalls, rf_unsafe_group_stalls, rf_reads_low, rf_reads_full,
            rf_writes_low, rf_writes_full, tag_broadcasts, issued, int_ops_low, int_ops_full,
            fp_ops, bypass_low, bypass_full, exec_reenable_stalls, output_width_replays,
            loads, stores, store_forwards, dcache_accesses, dcache_misses, dcache_writes_low,
            dcache_writes_full, dcache_width_stalls, dtlb_accesses, dtlb_misses, l2_accesses,
            l2_misses, dram_accesses, spill_fill_transfers,
        );
        for i in 0..4 {
            self.rs_allocs_per_die[i] += other.rs_allocs_per_die[i];
            self.rs_occupancy_cycles_per_die[i] += other.rs_occupancy_cycles_per_die[i];
            self.tag_broadcast_die_driven[i] += other.tag_broadcast_die_driven[i];
        }
        self.width_pred.merge(&other.width_pred);
        self.pam.matches += other.pam.matches;
        self.pam.misses += other.pam.misses;
        for i in 0..4 {
            self.dcache_encodings.counts[i] += other.dcache_encodings.counts[i];
        }
        self.activity.merge(&other.activity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics_handle_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.dcache_miss_rate(), 0.0);
        assert_eq!(s.dram_per_kilo_inst(), 0.0);
        assert_eq!(s.rs_top_die_fraction(), 0.0);
        assert_eq!(s.broadcast_gating_fraction(), 0.0);
    }

    #[test]
    fn ipc_and_rates() {
        let s = SimStats {
            cycles: 100,
            committed: 150,
            cond_branches: 10,
            cond_mispredicts: 1,
            dcache_accesses: 50,
            dcache_misses: 5,
            dram_accesses: 3,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.dcache_miss_rate() - 0.1).abs() < 1e-12);
        assert!((s.dram_per_kilo_inst() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn gating_fraction() {
        let s = SimStats {
            tag_broadcasts: 10,
            tag_broadcast_die_driven: [10, 5, 3, 2],
            ..Default::default()
        };
        assert!((s.broadcast_gating_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimStats { cycles: 10, committed: 20, ..Default::default() };
        a.rs_allocs_per_die = [4, 3, 2, 1];
        let mut b = SimStats { cycles: 5, committed: 10, ..Default::default() };
        b.rs_allocs_per_die = [1, 1, 1, 1];
        b.dcache_encodings.counts = [1, 2, 3, 4];
        a.merge(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.committed, 30);
        assert_eq!(a.rs_allocs_per_die, [5, 4, 3, 2]);
        assert_eq!(a.dcache_encodings.counts, [1, 2, 3, 4]);
    }

    #[test]
    fn rf_activity_projects_widths() {
        let s = SimStats { rf_reads_low: 3, rf_reads_full: 1, ..Default::default() };
        let a = s.rf_read_activity();
        assert_eq!(a.die(0), 4);
        assert_eq!(a.die(3), 1);
    }
}
