//! The event-driven engine must be *statistically invisible*: for any
//! program and configuration, `CoreEngine::Event` and `CoreEngine::Scan`
//! produce bit-identical [`SimStats`]. The scan engine is the reference
//! oracle; these tests drive both over fixed kernels and proptest-random
//! programs/configurations.

use proptest::prelude::*;
use th_isa::parse_asm;
use th_sim::{CoreEngine, SimConfig, SimStats, Simulator};

/// Runs `src` under one engine, optionally with a warmup window.
fn run_stats(src: &str, mut cfg: SimConfig, engine: CoreEngine, warmup: u64, budget: u64) -> SimStats {
    cfg.engine = engine;
    let program = parse_asm(src).expect("assembles");
    let sim = Simulator::new(cfg);
    let result = if warmup > 0 {
        sim.run_with_warmup(&program, warmup, budget)
    } else {
        sim.run(&program, budget)
    };
    result.expect("runs").stats
}

/// Asserts both engines agree on every counter for `src` × `cfg`.
fn assert_equivalent(src: &str, cfg: SimConfig, warmup: u64, budget: u64) {
    let scan = run_stats(src, cfg, CoreEngine::Scan, warmup, budget);
    let event = run_stats(src, cfg, CoreEngine::Event, warmup, budget);
    assert_eq!(scan, event, "engines diverged (warmup {warmup}, budget {budget})");
}

/// The paper's design-point configurations plus structural stress points
/// (tiny queues force every stall path; narrow machines serialize issue).
fn config_pool() -> Vec<SimConfig> {
    let mut cfgs = vec![
        SimConfig::baseline(),
        SimConfig::thermal_herding(),
        SimConfig::pipe(),
        SimConfig::fast(3.93),
        SimConfig::three_d(3.93),
    ];
    let mut tiny = SimConfig::baseline();
    tiny.core.rob_size = 8;
    tiny.core.rs_size = 4;
    tiny.core.ifq_size = 8;
    tiny.core.lq_size = 2;
    tiny.core.sq_size = 2;
    tiny.core.fetch_width = 2;
    tiny.core.decode_width = 2;
    tiny.core.commit_width = 1;
    tiny.core.issue_width = 2;
    cfgs.push(tiny);
    let mut tiny_th = SimConfig::three_d(3.93);
    tiny_th.core.rob_size = 16;
    tiny_th.core.rs_size = 8;
    tiny_th.core.sq_size = 3;
    tiny_th.pipeline.frontend_depth = 3;
    tiny_th.pipeline.redirect_extra = 0;
    cfgs.push(tiny_th);
    let mut narrow = SimConfig::thermal_herding();
    narrow.core.issue_width = 1;
    narrow.core.int_alu = 1;
    narrow.core.int_shift = 1;
    narrow.core.load_only_ports = 0;
    cfgs.push(narrow);
    cfgs
}

const DEP_CHAIN: &str = "
    li   x10, 0
    li   x11, 3000
loop:
    add  x1, x1, x10
    add  x1, x1, x10
    mul  x2, x1, x10
    addi x10, x10, 1
    bne  x10, x11, loop
    halt
";

const MEM_BOUND: &str = "
    li   x1, 0x100000
    li   x2, 0x500000
loop:
    ld   x3, 0(x1)
    add  x4, x4, x3
    addi x1, x1, 64
    bne  x1, x2, loop
    halt
";

const STORE_FORWARD: &str = "
    .zeros buf 64
    la   x9, buf
    li   x10, 0
    li   x11, 2000
loop:
    sd   x10, 0(x9)
    ld   x3, 0(x9)
    addi x10, x10, 1
    bne  x10, x11, loop
    halt
";

const DIV_AND_FP: &str = "
    li   x1, 7
    li   x2, 123456789
    fcvt.d.l f1, x1
    fcvt.d.l f2, x2
    li   x10, 0
    li   x11, 500
loop:
    div  x3, x2, x1
    rem  x4, x2, x1
    fdiv f3, f2, f1
    fadd f2, f2, f3
    addi x10, x10, 1
    bne  x10, x11, loop
    halt
";

const BRANCHY: &str = "
    li   x10, 0
    li   x11, 3000
    li   x12, 12345
    li   x15, 6364136223846793005
loop:
    mul  x12, x12, x15
    addi x12, x12, 1442695041
    srli x13, x12, 17
    andi x13, x13, 1
    beq  x13, x0, skip
    addi x14, x14, 1
skip:
    addi x10, x10, 1
    bne  x10, x11, loop
    halt
";

#[test]
fn fixed_kernels_match_on_every_config() {
    for cfg in config_pool() {
        for src in [DEP_CHAIN, MEM_BOUND, STORE_FORWARD, DIV_AND_FP, BRANCHY] {
            assert_equivalent(src, cfg, 0, 20_000);
        }
    }
}

#[test]
fn warmup_windows_match() {
    for cfg in [SimConfig::baseline(), SimConfig::three_d(3.93)] {
        for src in [MEM_BOUND, STORE_FORWARD, BRANCHY] {
            assert_equivalent(src, cfg, 1_000, 6_000);
        }
    }
}

#[test]
fn tiny_budgets_match() {
    // Budget-exhaustion exits mid-pipeline; the cycle count at the exit
    // must agree exactly.
    for budget in [1, 2, 3, 7, 50, 333] {
        assert_equivalent(BRANCHY, SimConfig::thermal_herding(), 0, budget);
        assert_equivalent(STORE_FORWARD, SimConfig::baseline(), 0, budget);
    }
}

/// Emits one loop-body instruction for the random program generator.
/// Destinations stay in x1..x8 / f1..f3; x9 is the buffer base, x20/x21
/// the loop counter and bound.
fn push_body_inst(out: &mut String, kind: u8, a: u8, b: u8, imm: i16, tag: usize) {
    let d = 1 + (a % 8); // x1..x8
    let s = 1 + (b % 8);
    let t = 1 + ((a ^ b) % 8);
    let off8 = ((imm as i32 & 0x1ff) * 8).rem_euclid(4088);
    match kind % 14 {
        0 => out.push_str(&format!("    add  x{d}, x{s}, x{t}\n")),
        1 => out.push_str(&format!("    sub  x{d}, x{s}, x{t}\n")),
        2 => out.push_str(&format!("    addi x{d}, x{s}, {}\n", imm as i32 % 2048)),
        3 => out.push_str(&format!("    and  x{d}, x{s}, x{t}\n")),
        4 => out.push_str(&format!("    mul  x{d}, x{s}, x{t}\n")),
        5 => out.push_str(&format!("    div  x{d}, x{s}, x{t}\n")),
        6 => out.push_str(&format!("    slli x{d}, x{s}, {}\n", b % 64)),
        7 => out.push_str(&format!("    srli x{d}, x{s}, {}\n", a % 64)),
        8 => out.push_str(&format!("    ld   x{d}, {off8}(x9)\n")),
        9 => out.push_str(&format!("    sd   x{s}, {off8}(x9)\n")),
        10 => {
            // A data-dependent forward branch over one instruction.
            out.push_str(&format!("    andi x{t}, x{s}, {}\n", 1 + (imm as i32 & 7)));
            out.push_str(&format!("    beq  x{t}, x0, fwd{tag}\n"));
            out.push_str(&format!("    addi x{d}, x{d}, 1\n"));
            out.push_str(&format!("fwd{tag}:\n"));
        }
        11 => out.push_str(&format!("    fadd f{}, f{}, f{}\n", 1 + (a % 3), 1 + (b % 3), 1 + ((a ^ b) % 3))),
        12 => out.push_str(&format!("    fmul f{}, f{}, f{}\n", 1 + (a % 3), 1 + (b % 3), 1 + ((a ^ b) % 3))),
        _ => out.push_str(&format!("    fdiv f{}, f{}, f{}\n", 1 + (a % 3), 1 + (b % 3), 1 + ((a ^ b) % 3))),
    }
}

/// Builds a random halting program: a prologue seeding x1..x8 with mixed
/// widths (and f1..f3), then a counted loop over a random body.
fn build_program(seeds: &[u64], body: &[(u8, u8, u8, i16)], iters: u16) -> String {
    let mut src = String::from("    .zeros buf 4096\n    la   x9, buf\n");
    for (i, &v) in seeds.iter().enumerate().take(8) {
        src.push_str(&format!("    li   x{}, {}\n", i + 1, v as i64));
    }
    src.push_str("    fcvt.d.l f1, x1\n    fcvt.d.l f2, x2\n    fcvt.d.l f3, x3\n");
    src.push_str(&format!("    li   x20, 0\n    li   x21, {}\nloop:\n", 50 + iters % 200));
    for (tag, &(kind, a, b, imm)) in body.iter().enumerate() {
        push_body_inst(&mut src, kind, a, b, imm, tag);
    }
    src.push_str("    addi x20, x20, 1\n    bne  x20, x21, loop\n    halt\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_match(
        seeds in proptest::collection::vec(any::<u64>(), 8),
        body in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>()), 2..12),
        iters in any::<u16>(),
        cfg_pick in any::<u8>(),
        warmup in 0u64..2,
    ) {
        let cfgs = config_pool();
        let cfg = cfgs[cfg_pick as usize % cfgs.len()];
        let src = build_program(&seeds, &body, iters);
        let budget = 4_000;
        let warmup = warmup * 500;
        let scan = run_stats(&src, cfg, CoreEngine::Scan, warmup, budget);
        let event = run_stats(&src, cfg, CoreEngine::Event, warmup, budget);
        prop_assert_eq!(scan, event);
    }
}
