//! Integration tests of the penalty and accounting model: each paper
//! mechanism's stall must show up in the right counter, with the right
//! magnitude, and only under the configurations that include it.

use th_isa::parse_asm;
use th_sim::{SimConfig, SimResult, Simulator};

fn run(src: &str, cfg: SimConfig) -> SimResult {
    let p = parse_asm(src).expect("assembles");
    Simulator::new(cfg).run(&p, 2_000_000).expect("runs")
}

/// §3.1: unsafe operand-width mispredictions stall the dispatch group —
/// at most once per group — and only when herding is on.
#[test]
fn rf_group_stall_accounting() {
    // x9 alternates between a small and a huge value each iteration, so
    // the consumer's operand width flips and the predictor keeps
    // mispredicting in one direction or the other.
    let src = "
        li   x10, 0
        li   x11, 3000
        li   x12, 0x123456789abc
    loop:
        andi x13, x10, 1
        beq  x13, x0, small
        mv   x9, x12
        jmp  use
    small:
        li   x9, 7
    use:
        add  x14, x9, x9
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let base = run(src, SimConfig::baseline());
    assert_eq!(base.stats.rf_unsafe_group_stalls, 0, "baseline must not stall");
    let th = run(src, SimConfig::thermal_herding());
    assert!(
        th.stats.rf_unsafe_group_stalls > 100,
        "herding saw only {} group stalls",
        th.stats.rf_unsafe_group_stalls
    );
    // One stall per offending group at most: far fewer stalls than
    // dispatched instructions.
    assert!(th.stats.rf_unsafe_group_stalls < th.stats.dispatched / 4);
    assert!(th.stats.cycles > base.stats.cycles, "stalls must cost cycles");
}

/// §3.2: output-width mispredictions force re-execution.
#[test]
fn output_width_replay_accounting() {
    // Operands stay low-width but the product overflows 16 bits every
    // other iteration: an output-only misprediction.
    let src = "
        li   x10, 0
        li   x11, 3000
    loop:
        andi x13, x10, 1
        li   x9, 3
        beq  x13, x0, tiny
        li   x9, 30000
    tiny:
        mul  x14, x9, x9
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let th = run(src, SimConfig::thermal_herding());
    assert!(
        th.stats.output_width_replays > 100,
        "only {} replays",
        th.stats.output_width_replays
    );
    let base = run(src, SimConfig::baseline());
    assert_eq!(base.stats.output_width_replays, 0);
}

/// §3.6: a low-width-predicted load whose value needs the lower dies
/// stalls the cache pipeline one cycle.
#[test]
fn dcache_width_stall_accounting() {
    let src = "
        .data mixed 1, 0x1234567890ab, 2, 0x234567890abc, 3, 0x34567890abcd, 4, 0x4567890abcde
        li   x10, 0
        li   x11, 2000
    loop:
        la   x5, mixed
        andi x12, x10, 7
        slli x12, x12, 3
        add  x5, x5, x12
        ld   x6, 0(x5)
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let th = run(src, SimConfig::thermal_herding());
    assert!(
        th.stats.dcache_width_stalls > 100,
        "only {} cache width stalls",
        th.stats.dcache_width_stalls
    );
    let base = run(src, SimConfig::baseline());
    assert_eq!(base.stats.dcache_width_stalls, 0);
}

/// §3.7: return-address-stack predicted returns don't redirect the
/// pipeline; deep call chains work.
#[test]
fn ras_predicts_returns() {
    let src = "
        li   x10, 0
        li   x11, 500
    loop:
        call f1
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    f1:
        addi x20, x20, 1
        ret
    ";
    let r = run(src, SimConfig::baseline());
    assert!(r.stats.ras_pushes >= 500);
    assert!(r.stats.ras_pops >= 500);
    // Returns predicted by the RAS must not be indirect mispredictions.
    assert_eq!(r.stats.indirect_mispredicts, 0, "RAS failed to predict returns");
}

/// Indirect jumps through a changing function table must mispredict;
/// through a stable table they must not (after warmup).
#[test]
fn ibtb_predicts_stable_indirect_targets() {
    let stable = "
        li   x10, 0
        li   x11, 800
    loop:
        la   x5, target
        # compute target address indirectly
        jalr x3, 0(x5)
    back:
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    target:
        addi x20, x20, 1
        jalr x0, 0(x3)
    ";
    let r = run(stable, SimConfig::baseline());
    // The jalr to `target` is stable; the return jalr x0,0(x3) is not a
    // RAS return (x3 link) but also stable.
    let rate = r.stats.indirect_mispredicts as f64 / r.stats.indirect_jumps.max(1) as f64;
    assert!(rate < 0.05, "indirect mispredict rate {rate:.3}");
}

/// Table 1: the minimum branch misprediction penalty is ~14 cycles at
/// baseline and less with the 3D pipeline optimisations.
#[test]
fn mispredict_penalty_magnitude() {
    // An unpredictable branch per iteration (LCG bit), everything else
    // trivial: cycles/iteration ≈ base + mispredict_rate × penalty.
    let src = "
        li   x10, 0
        li   x11, 6000
        li   x12, 88172645463325252
        li   x15, 6364136223846793005
    loop:
        mul  x12, x12, x15
        addi x12, x12, 1442695041
        srli x13, x12, 17
        andi x13, x13, 1
        beq  x13, x0, skip
        addi x14, x14, 1
    skip:
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let base = run(src, SimConfig::baseline());
    let pipe = run(src, SimConfig::pipe());
    // Same work, same branch behaviour: the pipeline-depth difference is
    // the only variable.
    assert_eq!(base.stats.committed, pipe.stats.committed);
    let mispredicts = base.stats.cond_mispredicts;
    assert!(mispredicts > 1000, "branch not unpredictable enough: {mispredicts}");
    let saved = base.stats.cycles.saturating_sub(pipe.stats.cycles) as f64;
    let per_mispredict = saved / mispredicts as f64;
    // Baseline penalty 14, pipe 12: ≈2 cycles saved per mispredict (the
    // front-end also refills slightly faster, so allow a band).
    assert!(
        per_mispredict > 1.0 && per_mispredict < 4.5,
        "saved {per_mispredict:.2} cycles per mispredict"
    );
}

/// §3.8: the extra FP-load routing cycle exists at baseline and is
/// removed by the 3D pipeline optimisations.
#[test]
fn fp_load_extra_cycle() {
    // A dependent chain of FP loads: every cycle of load latency shows
    // up directly in the runtime.
    let src = "
        .zeros buf 16
        la   x5, buf
        li   x10, 0
        li   x11, 4000
    loop:
        fld  f1, 0(x5)
        fsd  f1, 8(x5)
        fld  f2, 8(x5)
        fsd  f2, 0(x5)
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let base = run(src, SimConfig::baseline());
    let mut no_extra = SimConfig::baseline();
    no_extra.pipeline.fp_load_extra_cycle = false;
    let fast_fp = run(src, no_extra);
    assert!(
        base.stats.cycles > fast_fp.stats.cycles + 4000,
        "extra FP-load cycle invisible: {} vs {}",
        base.stats.cycles,
        fast_fp.stats.cycles
    );
}

/// Structural-hazard counters: a long-latency dependence chain fills the
/// ROB; store bursts fill the store queue.
#[test]
fn structural_stall_accounting() {
    // Serial divides: the ROB fills behind them.
    let rob_bound = "
        li   x10, 0
        li   x11, 300
        li   x12, 1000000007
    loop:
        div  x12, x12, x11
        mul  x12, x12, x11
        addi x12, x12, 17
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let r = run(rob_bound, SimConfig::baseline());
    assert!(r.stats.rob_full_stalls + r.stats.rs_full_stalls > 50, "no backpressure observed");

    // A store burst against one line: the 20-entry SQ must fill.
    let sq_bound = "
        .zeros buf 256
        la   x5, buf
        li   x10, 0
        li   x11, 400
        li   x12, 999999937
    loop:
        div  x13, x12, x11
        sd   x13, 0(x5)
        sd   x13, 8(x5)
        sd   x13, 16(x5)
        sd   x13, 24(x5)
        sd   x13, 32(x5)
        sd   x13, 40(x5)
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let r = run(sq_bound, SimConfig::baseline());
    assert!(r.stats.lsq_full_stalls > 50, "store queue never filled");
}

/// TLB misses are charged: touching many pages costs the page-walk
/// penalty.
#[test]
fn tlb_miss_accounting() {
    // Stride 8 KB over 8 MB: 1024 distinct pages, far beyond the
    // 256-entry DTLB... revisited twice so steady-state misses persist.
    let src = "
        li   x5, 0x100000
        li   x9, 0
        li   x20, 2
    pass:
        li   x6, 0x900000
        li   x7, 0x100000
    loop:
        ld   x8, 0(x7)
        ld   x12, 8(x7)
        add  x9, x9, x8
        addi x7, x7, 8192
        bne  x7, x6, loop
        addi x20, x20, -1
        bne  x20, x0, pass
        halt
    ";
    let r = run(src, SimConfig::baseline());
    assert!(r.stats.dtlb_misses > 1500, "only {} DTLB misses", r.stats.dtlb_misses);
    // The second load of each pair hits the page the first one walked.
    assert!(r.stats.dtlb_accesses >= 2 * r.stats.dtlb_misses);
}

/// §3.6: L1⇄L2 spills and fills always move full-width lines; the
/// counter feeding the power model must track miss traffic.
#[test]
fn spill_fill_accounting() {
    let src = "
        li   x7, 0x100000
        li   x6, 0x300000
    loop:
        ld   x8, 0(x7)
        addi x7, x7, 64
        bne  x7, x6, loop
        halt
    ";
    let r = run(src, SimConfig::baseline());
    // Every miss is at least one line transfer.
    assert!(r.stats.spill_fill_transfers >= r.stats.dcache_misses);
    assert!(r.stats.dcache_misses > 10_000);
}

/// The BTB serves most targets from the top die (partial storage), and
/// only herding charges the full-target stall.
#[test]
fn btb_partial_target_accounting() {
    let src = "
        li   x10, 0
        li   x11, 4000
    loop:
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let th = run(src, SimConfig::thermal_herding());
    // The loop target shares the branch's upper 48 PC bits.
    assert!(th.stats.btb_partial_target_hits > 3000);
    assert_eq!(th.stats.btb_full_target_stalls, 0, "near branch needed lower dies");
}

/// Issue respects the Table 1 port counts: at most 6 issued per cycle,
/// and integer-ALU throughput saturates at 3 per cycle.
#[test]
fn issue_width_and_alu_ports() {
    // 6 independent add chains: ALU-throughput-bound.
    let src = "
        li   x10, 0
        li   x11, 4000
    loop:
        addi x1, x1, 1
        addi x2, x2, 1
        addi x3, x3, 1
        addi x4, x4, 1
        addi x5, x5, 1
        addi x6, x6, 1
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    let r = run(src, SimConfig::baseline());
    // 8 instructions/iteration, 8 IntAlu-class ops, 3 ALUs: at least
    // ceil(8/3) ≈ 2.67 cycles per iteration even with perfect fetch.
    let cycles_per_iter = r.stats.cycles as f64 / 4000.0;
    assert!(cycles_per_iter > 2.5, "ALU ports not enforced: {cycles_per_iter:.2} cyc/iter");
    assert!(r.ipc() <= 4.0 + 1e-9, "committed more than commit width");
}
