//! The activity ledger is *event-sourced*: every cell is incremented at
//! the pipeline access site that burned the energy. The legacy scalar
//! width-split counters are incremented at the same sites, so for any
//! program the ledger rows must reproduce them exactly — `rf_reads_low +
//! rf_writes_low == Σ_die RegFile.low`, and every full access touches all
//! four dies (`Σ_die row.full == 4 × full accesses`). These proptests pin
//! that contract on random programs for both engines.

use proptest::prelude::*;
use th_isa::parse_asm;
use th_sim::{CoreEngine, SimConfig, SimStats, Simulator};
use th_stack3d::{Unit, DIES};

fn run_stats(src: &str, mut cfg: SimConfig, engine: CoreEngine, budget: u64) -> SimStats {
    cfg.engine = engine;
    let program = parse_asm(src).expect("assembles");
    Simulator::new(cfg).run(&program, budget).expect("runs").stats
}

/// Sum of a ledger row's gated accesses.
fn low_sum(stats: &SimStats, unit: Unit) -> u64 {
    stats.activity.row(unit).iter().map(|c| c.low).sum()
}

/// Sum of a ledger row's full-access die-touches.
fn full_sum(stats: &SimStats, unit: Unit) -> u64 {
    stats.activity.row(unit).iter().map(|c| c.full).sum()
}

/// The exact ledger-vs-scalar identities. `herding` mirrors the config:
/// with herding off no access is ever gated, so every legacy low counter
/// shows up as full die-touches instead.
fn assert_rows_match_counters(stats: &SimStats, herding: bool, ctx: &str) {
    let dies = DIES as u64;
    // (unit, legacy gated count, legacy full count)
    let expected = [
        (Unit::RegFile, stats.rf_reads_low + stats.rf_writes_low,
         stats.rf_reads_full + stats.rf_writes_full),
        (Unit::Rob, stats.rob_reads_low + stats.rob_writes_low,
         stats.rob_reads_full + stats.rob_writes_full),
        (Unit::IntExec, stats.int_ops_low, stats.int_ops_full),
        (Unit::Bypass, stats.bypass_low, stats.bypass_full),
        (Unit::FpExec, 0, stats.fp_ops),
    ];
    for (unit, gated, full) in expected {
        let (want_low, want_full) =
            if herding { (gated, full) } else { (0, gated + full) };
        assert_eq!(low_sum(stats, unit), want_low, "{ctx}: {unit} low");
        assert_eq!(full_sum(stats, unit), dies * want_full, "{ctx}: {unit} full");
        // Gated accesses land only on the top die (die 0).
        let row = stats.activity.row(unit);
        assert!(row[1..].iter().all(|c| c.low == 0), "{ctx}: {unit} gated off-top");
    }
    // LSQ: a gated search is exactly a PAM match (§3.5); the PAM only
    // broadcasts when enabled, which the herding presets turn on.
    if herding {
        assert_eq!(low_sum(stats, Unit::Lsq), stats.pam.matches, "{ctx}: Lsq low");
    } else {
        assert_eq!(low_sum(stats, Unit::Lsq), 0, "{ctx}: Lsq low");
    }
    // Front-end arrays are never width-gated: pure full-access rows.
    for unit in [Unit::ICache, Unit::Itlb, Unit::Decode, Unit::Rename, Unit::Dtlb] {
        assert_eq!(low_sum(stats, unit), 0, "{ctx}: {unit} low");
        assert_eq!(full_sum(stats, unit) % dies, 0, "{ctx}: {unit} uneven touches");
    }
    assert_eq!(dies * stats.icache_accesses, full_sum(stats, Unit::ICache), "{ctx}: ICache");
    assert_eq!(dies * stats.itlb_accesses, full_sum(stats, Unit::Itlb), "{ctx}: Itlb");
    assert_eq!(dies * stats.dtlb_accesses, full_sum(stats, Unit::Dtlb), "{ctx}: Dtlb");
    assert_eq!(dies * stats.fetched, full_sum(stats, Unit::Decode), "{ctx}: Decode");
}

/// Emits one loop-body instruction for the random program generator
/// (mirrors `engine_equivalence.rs`, trimmed to the width-relevant mix).
fn push_body_inst(out: &mut String, kind: u8, a: u8, b: u8, imm: i16) {
    let d = 1 + (a % 8);
    let s = 1 + (b % 8);
    let t = 1 + ((a ^ b) % 8);
    let off8 = ((imm as i32 & 0x1ff) * 8).rem_euclid(4088);
    match kind % 10 {
        0 => out.push_str(&format!("    add  x{d}, x{s}, x{t}\n")),
        1 => out.push_str(&format!("    sub  x{d}, x{s}, x{t}\n")),
        2 => out.push_str(&format!("    addi x{d}, x{s}, {}\n", imm as i32 % 2048)),
        3 => out.push_str(&format!("    mul  x{d}, x{s}, x{t}\n")),
        4 => out.push_str(&format!("    slli x{d}, x{s}, {}\n", b % 64)),
        5 => out.push_str(&format!("    srli x{d}, x{s}, {}\n", a % 64)),
        6 => out.push_str(&format!("    ld   x{d}, {off8}(x9)\n")),
        7 => out.push_str(&format!("    sd   x{s}, {off8}(x9)\n")),
        8 => out.push_str(&format!(
            "    fadd f{}, f{}, f{}\n",
            1 + (a % 3),
            1 + (b % 3),
            1 + ((a ^ b) % 3)
        )),
        _ => out.push_str(&format!(
            "    fmul f{}, f{}, f{}\n",
            1 + (a % 3),
            1 + (b % 3),
            1 + ((a ^ b) % 3)
        )),
    }
}

fn build_program(seeds: &[u64], body: &[(u8, u8, u8, i16)], iters: u16) -> String {
    let mut src = String::from("    .zeros buf 4096\n    la   x9, buf\n");
    for (i, &v) in seeds.iter().enumerate().take(8) {
        src.push_str(&format!("    li   x{}, {}\n", i + 1, v as i64));
    }
    src.push_str("    fcvt.d.l f1, x1\n    fcvt.d.l f2, x2\n    fcvt.d.l f3, x3\n");
    src.push_str(&format!("    li   x20, 0\n    li   x21, {}\nloop:\n", 50 + iters % 200));
    for &(kind, a, b, imm) in body {
        push_body_inst(&mut src, kind, a, b, imm);
    }
    src.push_str("    addi x20, x20, 1\n    bne  x20, x21, loop\n    halt\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ledger_rows_reproduce_scalar_counters(
        seeds in proptest::collection::vec(any::<u64>(), 8),
        body in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i16>()), 2..12),
        iters in any::<u16>(),
        herding in any::<bool>(),
        event_engine in any::<bool>(),
    ) {
        let cfg = if herding { SimConfig::thermal_herding() } else { SimConfig::baseline() };
        let engine = if event_engine { CoreEngine::Event } else { CoreEngine::Scan };
        let src = build_program(&seeds, &body, iters);
        let stats = run_stats(&src, cfg, engine, 4_000);
        assert_rows_match_counters(&stats, herding, &format!("herding={herding}"));
    }
}

#[test]
fn fixed_kernel_rows_match_on_both_engines() {
    const KERNEL: &str = "
        .zeros buf 64
        la   x9, buf
        li   x10, 0
        li   x11, 2000
    loop:
        sd   x10, 0(x9)
        ld   x3, 0(x9)
        mul  x4, x3, x10
        addi x10, x10, 1
        bne  x10, x11, loop
        halt
    ";
    for cfg in [SimConfig::baseline(), SimConfig::thermal_herding(), SimConfig::three_d(3.93)] {
        let herding = cfg.herding.enabled;
        for engine in [CoreEngine::Scan, CoreEngine::Event] {
            let stats = run_stats(KERNEL, cfg, engine, 20_000);
            assert!(!stats.activity.is_empty(), "ledger recorded nothing");
            assert_rows_match_counters(
                &stats,
                herding,
                &format!("kernel herding={herding} engine={engine:?}"),
            );
        }
    }
}
